# Convenience targets for the SlickDeque reproduction.

PYTHON ?= python

.PHONY: install test bench experiments validate quick-experiments serve metrics event-time clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.cli all --scale default --chart

quick-experiments:
	$(PYTHON) -m repro.experiments.cli all --scale quick

validate:
	$(PYTHON) -m repro.experiments.cli validate

serve:
	PYTHONPATH=src $(PYTHON) examples/net_server.py

metrics:
	PYTHONPATH=src $(PYTHON) examples/net_server.py --metrics-port 0

event-time:
	PYTHONPATH=src $(PYTHON) examples/event_time_service.py

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
