"""Ablation: Panes vs Pairs vs Cutty slicing (paper §2.1).

Pairs halves the partials of Panes when ranges are not divisible by
slides (Figure 2); Cutty halves them again but pays punctuations
(Figure 3).  This bench measures end-to-end tuple throughput per
technique on a single ACQ and records partials-per-cycle and
punctuation counts as extra info.
"""

from __future__ import annotations

import pytest

from repro.datasets.debs12 import debs12_array
from repro.operators.registry import get_operator
from repro.stream.engine import CuttyPipeline, StreamEngine
from repro.windows.plan import build_shared_plan
from repro.windows.query import Query
from repro.windows.slicing import punctuation_count

STREAM = 2_000
#: Range deliberately not divisible by slide so Pairs splits fragments.
QUERY = Query(range_size=45, slide=6)


@pytest.fixture(scope="module")
def sliced_stream():
    return debs12_array(STREAM, reading=0, seed=2012)


@pytest.mark.parametrize("technique", ["panes", "pairs", "cutty"])
def test_ablation_slicing(benchmark, technique, sliced_stream):
    if technique == "cutty":
        def run():
            pipeline = CuttyPipeline(QUERY, get_operator("sum"))
            return len(pipeline.run(sliced_stream))
        partials_per_cycle = QUERY.slide and 1
        punctuations = punctuation_count("cutty", [QUERY])
    else:
        plan = build_shared_plan([QUERY], technique)
        partials_per_cycle = plan.partials_per_cycle
        punctuations = punctuation_count(technique, [QUERY])

        def run():
            engine = StreamEngine(
                [QUERY], get_operator("sum"), technique=technique
            )
            engine.run(sliced_stream)
            return engine.answers_emitted

    answers = benchmark(run)
    benchmark.extra_info["ablation"] = "slicing"
    benchmark.extra_info["technique"] = technique
    benchmark.extra_info["partials_per_cycle"] = partials_per_cycle
    benchmark.extra_info["punctuations_per_cycle"] = punctuations
    assert answers == STREAM // QUERY.slide
