"""Ablation: shared plan vs independent per-query execution (§2.3).

The paper's Example 1: compatible ACQs share partial aggregates, so
"the calculation producing partial aggregates only needs to be
performed once".  This bench runs the same ACQ set through the shared
SlickDeque plan and through one-pipeline-per-query execution; shared
should win, and the gap should widen with more overlapping queries.
"""

from __future__ import annotations

import pytest

from repro.datasets.debs12 import debs12_array
from repro.operators.registry import get_operator
from repro.stream.engine import StreamEngine
from repro.windows.query import Query

STREAM = 2_000

#: The paper's Example 1 pair, then a heavier overlapping set.
QUERY_SETS = {
    "example1": [Query(6, 2), Query(8, 4)],
    "dense": [Query(r, 4) for r in (8, 16, 32, 64, 128)],
}


@pytest.fixture(scope="module")
def shared_stream():
    return debs12_array(STREAM, reading=0, seed=2012)


@pytest.mark.parametrize("mode", ["shared", "independent"])
@pytest.mark.parametrize("query_set", sorted(QUERY_SETS))
def test_ablation_sharing(benchmark, mode, query_set, shared_stream):
    queries = QUERY_SETS[query_set]

    def run():
        engine = StreamEngine(
            queries, get_operator("max"), mode=mode
        )
        engine.run(shared_stream)
        return engine.answers_emitted

    emitted = benchmark(run)
    benchmark.extra_info["ablation"] = "sharing"
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["answers"] = emitted
    assert emitted > 0
