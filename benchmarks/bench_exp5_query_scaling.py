"""Exp 5 (extension): multi-query throughput vs registered query count.

Fixed window, growing query set — the multi-tenant axis.  Expected
shape: SlickDeque's slide cost is nearly query-count-independent
(deque sweep / 2-ops-per-range), while Naive and the tree algorithms
pay per query.
"""

from __future__ import annotations

import pytest

from conftest import run_multi_stream
from repro.datasets.workloads import uniform_ranges
from repro.operators.registry import get_operator
from repro.registry import available_algorithms, get_algorithm

WINDOW = 64
QUERY_COUNTS = (1, 8, 64)


@pytest.mark.parametrize("query_count", QUERY_COUNTS)
@pytest.mark.parametrize(
    "algorithm", available_algorithms(multi_query=True)
)
def test_exp5_query_scaling(benchmark, algorithm, query_count,
                            energy_stream_short):
    ranges = uniform_ranges(query_count, WINDOW, seed=13)
    spec = get_algorithm(algorithm)
    aggregator = spec.multi(get_operator("max"), ranges)
    benchmark.extra_info["experiment"] = "exp5"
    benchmark.extra_info["queries"] = query_count
    answers = benchmark(
        run_multi_stream, aggregator, energy_stream_short
    )
    assert len(answers) == len(set(ranges))
