"""Ablation: chunk size ``k`` of the chunked deque (paper §4.2).

The space formula ``2n + 4k + 4n/k`` is minimised at ``k = √n``; this
bench sweeps chunk sizes on a worst-case (descending) stream that
keeps the deque full and records both the wall-clock and the measured
footprint, validating the √n optimum empirically.
"""

from __future__ import annotations

import pytest

from repro.core.slickdeque_noninv import ChunkedSlickDequeNonInv
from repro.datasets.adversarial import descending_stream
from repro.operators.noninvertible import MaxOperator

WINDOW = 1024
CHUNK_SIZES = (1, 4, 16, 32, 64, 256, 1024)  # 32 = √1024 optimum


@pytest.fixture(scope="module")
def worst_case_stream():
    return list(descending_stream(3 * WINDOW))


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_ablation_chunk_size(benchmark, chunk_size, worst_case_stream):
    def run():
        aggregator = ChunkedSlickDequeNonInv(
            MaxOperator(), WINDOW, chunk_size=chunk_size
        )
        peak = 0
        for value in worst_case_stream:
            aggregator.push(value)
            words = aggregator.memory_words()
            if words > peak:
                peak = words
        return peak

    peak_words = benchmark(run)
    benchmark.extra_info["ablation"] = "chunk-size"
    benchmark.extra_info["chunk_size"] = chunk_size
    benchmark.extra_info["peak_words"] = peak_words
    # Full deque of n two-word nodes is the floor; pointer and slack
    # overhead grows away from the sqrt(n) optimum.
    assert peak_words >= 2 * WINDOW
