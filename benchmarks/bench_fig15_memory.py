"""Fig. 15 (Exp 4): memory requirement vs window size.

The benchmarked operation is one full run with per-slide footprint
tracking; the reported ``logical_words`` extra-info reproduces the
figure's series, including a non-power-of-two window where FlatFAT and
B-Int pay their round-up to ``2^⌈log n⌉``.

Expected grouping (paper): FlatFAT≈B-Int at the top, FlatFIT≈
TwoStacks≈DABA at 2n, Naive≈SlickDeque (Inv) at n, SlickDeque
(Non-Inv) lowest on real data.
"""

from __future__ import annotations

import pytest

from repro.datasets.debs12 import debs12_array
from repro.metrics.memory import peak_memory_words
from repro.operators.registry import get_operator
from repro.registry import available_algorithms, get_algorithm

WINDOWS = (1024, 1536)  # a power of two and a 1.5x non-power
STREAM = 3_000


@pytest.fixture(scope="module")
def memory_stream():
    return debs12_array(STREAM, reading=0, seed=2012)


@pytest.mark.parametrize("operator_name", ["sum", "max"])
@pytest.mark.parametrize("window", WINDOWS)
@pytest.mark.parametrize("algorithm", available_algorithms())
def test_fig15_memory(benchmark, algorithm, window, operator_name,
                      memory_stream):
    spec = get_algorithm(algorithm)

    def measure():
        aggregator = spec.single(get_operator(operator_name), window)
        return peak_memory_words(aggregator, memory_stream)

    words = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["figure"] = "15"
    benchmark.extra_info["window"] = window
    benchmark.extra_info["logical_words"] = words
    assert words > 0
