"""Table 1: aggregate operations per slide, measured.

Benchmarks the instrumented run and attaches the measured amortized /
worst-case per-slide ⊕ counts as extra info — the paper's own
complexity metric, independent of the Python runtime.
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import materialise, uniform
from repro.metrics.opcount import count_ops
from repro.operators.registry import get_operator
from repro.registry import available_algorithms, get_algorithm

WINDOW = 64
SLIDES = 2_000


@pytest.fixture(scope="module")
def op_stream():
    return materialise(uniform(SLIDES, seed=13))


@pytest.mark.parametrize("operator_name", ["sum", "max"])
@pytest.mark.parametrize("algorithm", available_algorithms())
def test_table1_opcounts(benchmark, algorithm, operator_name, op_stream):
    spec = get_algorithm(algorithm)

    def measure():
        return count_ops(
            lambda op: spec.single(op, WINDOW),
            get_operator(operator_name),
            op_stream,
        ).steady_state(2 * WINDOW)

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["table"] = "1"
    benchmark.extra_info["amortized_ops"] = round(result.amortized, 3)
    benchmark.extra_info["worst_case_ops"] = result.worst_case
    assert result.total_ops >= 0
