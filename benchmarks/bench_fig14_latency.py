"""Fig. 14 (Exp 3): per-answer latency at a fixed window of 1024.

pytest-benchmark's min/max/stddev columns are the figure's categories:
algorithms with O(n) worst-case steps (Naive every step; TwoStacks and
FlatFIT periodically) show a max far above their median, while DABA
and SlickDeque stay flat.  The full percentile breakdown with the
paper's outlier trim comes from ``repro-experiments exp3``.
"""

from __future__ import annotations

import itertools

import pytest

from repro.operators.registry import get_operator
from repro.registry import available_algorithms, get_algorithm

WINDOW = 1024


def _step_batch(aggregator, iterator, batch: int = 64):
    """Run a fixed-size batch of slides (one benchmark round)."""
    step = aggregator.step
    answer = None
    for _ in range(batch):
        answer = step(next(iterator))
    return answer


@pytest.mark.parametrize("operator_name", ["sum", "max"])
@pytest.mark.parametrize("algorithm", available_algorithms())
def test_fig14_latency(benchmark, algorithm, operator_name,
                       energy_stream):
    spec = get_algorithm(algorithm)
    aggregator = spec.single(get_operator(operator_name), WINDOW)
    # Warm the window so benchmark rounds measure steady state.
    values = itertools.cycle(energy_stream)
    for _ in range(WINDOW):
        aggregator.step(next(values))
    benchmark.extra_info["figure"] = "14"
    benchmark.extra_info["window"] = WINDOW
    result = benchmark(_step_batch, aggregator, values)
    assert result is not None
