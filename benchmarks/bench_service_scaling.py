#!/usr/bin/env python3
"""Service scaling: sharded throughput, 1 → 8 worker processes.

Sweeps the shard count of :class:`repro.service.AggregationService`
over a fixed keyed integer stream with a heavy algebraic operator
(StdDev) and reports end-to-end ingest throughput, in-worker fold
throughput, and the single-process :class:`StreamEngine` baseline.

On a multi-core host the ingest throughput should rise monotonically
from 1 to ~core-count shards (the per-shard fold work is the dominant
cost and runs in parallel); past the core count it flattens.  On a
single-core host the sweep still exercises the full pipeline but
cannot show parallel speedup — the results file records the host's
core count so the numbers are read in context.

Run:   PYTHONPATH=src python benchmarks/bench_service_scaling.py
Also collectable as a quick pytest smoke test (not part of tier-1,
which only collects tests/).
"""

from __future__ import annotations

import os
import time

from repro.operators.registry import get_operator
from repro.service import AggregationService
from repro.stream.engine import StreamEngine
from repro.stream.sink import CountingSink
from repro.windows.query import Query

QUERIES = (Query(512, 64), Query(256, 32))
OPERATOR = "stddev"
RECORDS = 60_000
SHARD_COUNTS = (1, 2, 4, 8)
KEYS = 64


def keyed_stream(count: int = RECORDS):
    """Deterministic keyed integer readings."""
    return [
        (f"k{i % KEYS}", (i * 131 + 17) % 997 - 498)
        for i in range(count)
    ]


def run_baseline(records):
    """Single-process engine throughput over the same stream."""
    sink = CountingSink()
    engine = StreamEngine(QUERIES, get_operator(OPERATOR), sinks=[sink])
    started = time.perf_counter()
    engine.run(value for _, value in records)
    elapsed = time.perf_counter() - started
    return len(records) / elapsed, sink.count


def run_sharded(records, num_shards):
    """One sweep point: returns (ingest/s, fold/s, answers, restores)."""
    service = AggregationService(
        QUERIES,
        get_operator(OPERATOR),
        num_shards=num_shards,
        batch_size=512,
        queue_capacity=16,
        checkpoint_interval=0,
    )
    service.submit_many(records)
    result = service.close()
    stats = result.stats
    busy = sum(shard.busy_seconds for shard in stats.shards)
    fold_rate = stats.records_processed / busy if busy else 0.0
    return (
        stats.ingest_throughput.per_second,
        fold_rate,
        stats.answers_emitted,
        sum(shard.restores for shard in stats.shards),
    )


def main() -> str:
    """Run the sweep and return the rendered report."""
    records = keyed_stream()
    lines = [
        "Service scaling: sharded StdDev over "
        f"{RECORDS:,} keyed integer records, queries "
        f"{[(q.range_size, q.slide) for q in QUERIES]}, batch=512, "
        "checkpoints off",
        f"host cores: {os.cpu_count()} "
        "(parallel speedup requires shards <= cores)",
        "",
    ]
    baseline_rate, baseline_answers = run_baseline(records)
    lines.append(
        f"single-process StreamEngine baseline: "
        f"{baseline_rate:>9,.0f} records/s, "
        f"{baseline_answers} answers"
    )
    lines.append("")
    header = (f"{'shards':>6}  {'ingest rec/s':>12}  "
              f"{'fold rec/s':>12}  {'vs 1 shard':>10}  {'answers':>7}")
    lines.append(header)
    lines.append("-" * len(header))
    one_shard_rate = None
    for num_shards in SHARD_COUNTS:
        ingest, fold, answers, restores = run_sharded(
            records, num_shards
        )
        assert answers == baseline_answers, (answers, baseline_answers)
        assert restores == 0
        if one_shard_rate is None:
            one_shard_rate = ingest
        lines.append(
            f"{num_shards:>6}  {ingest:>12,.0f}  {fold:>12,.0f}  "
            f"{ingest / one_shard_rate:>9.2f}x  {answers:>7}"
        )
    report = "\n".join(lines)
    print(report)
    return report


def test_service_scaling_smoke():
    """Tiny sweep: every shard count yields the baseline answer count."""
    records = keyed_stream(4_000)
    sink = CountingSink()
    StreamEngine(QUERIES, get_operator(OPERATOR), sinks=[sink]).run(
        value for _, value in records
    )
    for num_shards in (1, 2):
        _, _, answers, restores = run_sharded(records, num_shards)
        assert answers == sink.count
        assert restores == 0


if __name__ == "__main__":
    main()
