"""Shared-memory ring vs pickled-queue data-plane throughput.

The perf-trajectory harness for the zero-copy transport: the *same*
router-framed batches are shipped through the sharded supervisor twice
— once on the ``pickle`` plane (batches pickled onto bounded
``multiprocessing.Queue``s, the original wiring) and once on the
``shm`` plane (columnar frames on per-shard shared-memory rings) — and
each pass is timed from first ship to the last acknowledgement, so the
only difference between the two numbers is the data plane itself.

Batches are produced by the real :class:`~repro.service.partition.
Router` from typed ``array('q')``/``array('d')`` columns (what the
wire's packed ``SUBMIT_COLUMN`` bodies become), so the shm pass
exercises the full zero-copy path: typed buffers → columnar frame via
buffer copy → ``memoryview`` columns into the batch kernels.  The
aggregation windows are deliberately wide (large slices): both planes
pay the same aggregation cost either way, and keeping that cost small
makes the measured contrast the *transport*, not the consumer.
``benchmarks/bench_service_scaling.py`` covers the aggregation-bound
regime.

Ratios (shm/pickle tuples/s) are what the CI smoke gate compares:
absolute throughput is machine-relative, ratios travel.  Timing rounds
interleave the planes (pickle, shm, pickle, shm, ...) so frequency
drift and runner contention hit both equally.

Usage::

    python benchmarks/bench_ipc_transport.py           # full scale,
        # writes BENCH_ipc_transport.json at the repo root
    python benchmarks/bench_ipc_transport.py --smoke   # reduced scale
    python benchmarks/bench_ipc_transport.py --check   # reduced scale,
        # fail on >25% ratio regression vs the committed JSON and on
        # the acceptance floor (shm >= 3x pickle for i64 batches >= 256)

On platforms without ``multiprocessing.shared_memory`` + ``fork`` the
benchmark exits 0 with a skip notice (there is no shm plane to
measure), so the CI gate stays green on such runners.

Not collected by pytest (``testpaths = ["tests"]``): run it directly.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from array import array
from pathlib import Path
from typing import Any, Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.kernels import active_backends  # noqa: E402
from repro.operators.registry import get_operator  # noqa: E402
from repro.service import AggregationService  # noqa: E402
from repro.service.partition import Batch, Router  # noqa: E402
from repro.service.slices import SliceClock  # noqa: E402
from repro.service.transport import shm_supported  # noqa: E402
from repro.windows.plan import build_shared_plan  # noqa: E402
from repro.windows.query import Query  # noqa: E402

OUTPUT_JSON = REPO_ROOT / "BENCH_ipc_transport.json"

#: Wide windows keep per-record aggregation cost low so the measured
#: contrast is the transport (see module docstring).
QUERIES = (Query(8192, 1024), Query(4096, 512))
NUM_SHARDS = 4
QUEUE_CAPACITY = 16
KEYS = tuple(f"sensor-{index}" for index in range(8))
REPEATS = 3

FULL_SIZES = ((64, 40_000), (256, 100_000), (1024, 200_000),
              (4096, 400_000))
SMOKE_SIZES = ((256, 40_000), (1024, 80_000))
#: The issue's acceptance criterion: shm moves i64 batches of >= 256
#: records at least 3x faster than the pickled-queue plane.
FLOOR_RATIO = 3.0
FLOOR_BATCHES = (256, 1024)
#: Allowed relative ratio regression vs the committed baseline.
TOLERANCE = 0.25


def build_batches(
    batch_size: int, records: int, float_values: bool
) -> Tuple[List[Batch], int]:
    """Frame ``records`` records through a real router, typed end to end.

    Columns rotate across :data:`KEYS` one batch-size chunk at a time,
    so batches carry realistic key runs (and the flush rounds emit the
    same watermark-carrier frames the live service produces).  Returns
    the batches plus the exact record count framed into them.
    """
    clock = SliceClock(build_shared_plan(QUERIES))
    router = Router(NUM_SHARDS, batch_size, clock)
    batches: List[Batch] = []
    produced = 0
    chunk_index = 0
    while produced < records:
        take = min(batch_size, records - produced)
        if float_values:
            column: Any = array("d", (
                ((i * 131 + 17) % 997 - 498) * 0.5
                for i in range(produced, produced + take)
            ))
        else:
            column = array("q", (
                (i * 131 + 17) % 997 - 498
                for i in range(produced, produced + take)
            ))
        batches.extend(
            router.put_column(KEYS[chunk_index % len(KEYS)], column)
        )
        produced += take
        chunk_index += 1
    batches.extend(router.flush())
    return batches, router.position


def _time_plane(
    plane: str, batch_size: int, records: int, float_values: bool
) -> Tuple[float, Dict[str, Any]]:
    """One timed pass: ship router-framed batches, wait for every ack.

    Returns ``(tuples_per_second, transport_stats)``.  The clock stops
    at the last acknowledgement — outputs have crossed back over the
    result path — so both planes are charged for their full round trip.
    """
    batches, framed = build_batches(batch_size, records, float_values)
    service = AggregationService(
        QUERIES,
        get_operator("sum"),
        num_shards=NUM_SHARDS,
        batch_size=batch_size,
        queue_capacity=QUEUE_CAPACITY,
        checkpoint_interval=0,
        transport="process",
        data_plane=plane,
    )
    supervisor = service._transport
    time.sleep(0.2)  # let forked workers reach their receive loops
    started = time.perf_counter()
    for batch in batches:
        supervisor.ship(batch)
    while any(
        handle.acked_seq < handle.shipped_seq
        for handle in supervisor.handles
    ):
        supervisor.poll()
    elapsed = time.perf_counter() - started
    stats = supervisor.transport_stats()
    service.close()
    if plane == "shm" and stats["frames_columnar"] == 0:
        raise RuntimeError(
            "shm pass never took the columnar path; the benchmark "
            f"would be measuring the fallback (stats: {stats})"
        )
    return framed / elapsed, stats


def measure_case(
    batch_size: int, records: int, float_values: bool
) -> Dict[str, Any]:
    """Median-of-rounds for one batch size, planes interleaved."""
    pickle_rates, shm_rates, ratios = [], [], []
    for _ in range(REPEATS):
        pickle_rate, _ = _time_plane(
            "pickle", batch_size, records, float_values
        )
        shm_rate, _ = _time_plane(
            "shm", batch_size, records, float_values
        )
        pickle_rates.append(pickle_rate)
        shm_rates.append(shm_rate)
        ratios.append(shm_rate / pickle_rate)
    return {
        "values": "f64" if float_values else "i64",
        "batch": batch_size,
        "records": records,
        "pickle_tuples_per_s": round(statistics.median(pickle_rates), 1),
        "shm_tuples_per_s": round(statistics.median(shm_rates), 1),
        "ratio": round(statistics.median(ratios), 3),
    }


def run_matrix(sizes) -> List[Dict[str, Any]]:
    """Measure i64 and f64 columns at every batch size."""
    rows = []
    for float_values in (False, True):
        kind = "f64" if float_values else "i64"
        for batch_size, records in sizes:
            row = measure_case(batch_size, records, float_values)
            rows.append(row)
            print(f"  {kind} batch={batch_size:<5d} "
                  f"pickle={row['pickle_tuples_per_s']:>12,.0f}/s "
                  f"shm={row['shm_tuples_per_s']:>12,.0f}/s "
                  f"ratio={row['ratio']:.2f}x")
    return rows


def check(rows: List[Dict[str, Any]], baseline_path: Path) -> int:
    """Gate on the committed smoke baseline plus the acceptance floor.

    Like the bulk-ingest gate, the comparison is ratio-vs-ratio at the
    same (smoke) scale; only i64 rows gate on the 3x floor — float
    columns fold through the bit-exact pure path on both planes, so
    their ratio is reported as informational.
    """
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; nothing to check")
        return 1
    baseline = json.loads(baseline_path.read_text())
    by_key = {
        (row["values"], row["batch"]): row["ratio"]
        for row in baseline["smoke"]["results"]
    }
    failures = []
    for row in rows:
        expected = by_key.get((row["values"], row["batch"]))
        if expected is not None:
            floor = expected * (1.0 - TOLERANCE)
            if row["ratio"] < floor:
                failures.append(
                    f"{row['values']} batch {row['batch']}: ratio "
                    f"{row['ratio']:.2f}x fell below {floor:.2f}x "
                    f"(baseline {expected:.2f}x - {TOLERANCE:.0%})"
                )
        if (
            row["values"] == "i64"
            and row["batch"] in FLOOR_BATCHES
            and row["ratio"] < FLOOR_RATIO
        ):
            failures.append(
                f"i64 batch {row['batch']}: shm/pickle ratio "
                f"{row['ratio']:.2f}x below the {FLOOR_RATIO:.1f}x "
                "acceptance floor"
            )
    if failures:
        print("PERF REGRESSION (ipc transport gate):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("ipc transport gate passed: shm ratios within tolerance")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced scale; do not overwrite the baseline")
    parser.add_argument("--check", action="store_true",
                        help="reduced scale; fail on regression vs "
                             "the committed BENCH_ipc_transport.json")
    parser.add_argument("--output", type=Path, default=OUTPUT_JSON,
                        help="where to write the report JSON")
    args = parser.parse_args()
    if not shm_supported():
        print("SKIP: multiprocessing.shared_memory or the fork start "
              "method is unavailable; no shm plane to measure")
        return 0
    if args.smoke or args.check:
        print(f"ipc transport smoke: sizes={SMOKE_SIZES}")
        rows = run_matrix(SMOKE_SIZES)
        if args.check:
            return check(rows, OUTPUT_JSON)
        print("smoke run only; baseline not overwritten")
        return 0
    print(f"ipc transport bench: sizes={FULL_SIZES}")
    full_rows = run_matrix(FULL_SIZES)
    # The smoke baseline keeps the minimum ratio across independent
    # passes so the gate's band sits below run-to-run variance.
    smoke_rows: List[Dict[str, Any]] = []
    for attempt in range(3):
        print(f"smoke-scale baseline pass {attempt + 1}/3")
        for row in run_matrix(SMOKE_SIZES):
            key = (row["values"], row["batch"])
            existing = next(
                (r for r in smoke_rows
                 if (r["values"], r["batch"]) == key),
                None,
            )
            if existing is None:
                smoke_rows.append(row)
            elif row["ratio"] < existing["ratio"]:
                existing.update(row)
    args.output.write_text(json.dumps({
        "meta": {
            "num_shards": NUM_SHARDS,
            "queue_capacity": QUEUE_CAPACITY,
            "queries": [[q.range_size, q.slide] for q in QUERIES],
            "operator": "sum",
            "repeats": REPEATS,
            "backends": active_backends(),
        },
        "results": full_rows,
        "smoke": {
            "sizes": [list(pair) for pair in SMOKE_SIZES],
            "results": smoke_rows,
        },
    }, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
