"""Ablation: SlickDeque (Non-Inv) under adversarial inputs (§4.1).

The paper's worst case — descending input filling the deque, then a
dominating value deleting every node — has probability 1/n! on random
data but is constructed deterministically here.  The bench compares
throughput and worst-slide operation counts across input shapes:

* ``ascending``  — best case, deque holds one node;
* ``random``     — the paper's expected regime, amortized < 2 ops;
* ``descending`` — worst *space*, deque permanently full;
* ``filler``     — worst *time*, periodic n-operation slides.
"""

from __future__ import annotations

import pytest

from repro.core.slickdeque_noninv import SlickDequeNonInv
from repro.datasets.adversarial import deque_filler
from repro.datasets.synthetic import materialise, uniform
from repro.metrics.opcount import count_ops
from repro.operators.noninvertible import MaxOperator

WINDOW = 256
SLIDES = 4 * WINDOW

_STREAMS = {
    "ascending": list(range(SLIDES)),
    "random": materialise(uniform(SLIDES, seed=99)),
    "descending": list(range(SLIDES, 0, -1)),
    "filler": list(deque_filler(WINDOW, cycles=4)),
}


@pytest.mark.parametrize("shape", sorted(_STREAMS))
def test_ablation_adversarial(benchmark, shape):
    stream = _STREAMS[shape]

    def run():
        aggregator = SlickDequeNonInv(MaxOperator(), WINDOW)
        step = aggregator.step
        for value in stream:
            step(value)
        return aggregator.occupancy

    occupancy = benchmark(run)
    profile = count_ops(
        lambda op: SlickDequeNonInv(op, WINDOW), MaxOperator(), stream
    )
    benchmark.extra_info["ablation"] = "adversarial"
    benchmark.extra_info["input_shape"] = shape
    benchmark.extra_info["final_occupancy"] = occupancy
    benchmark.extra_info["amortized_ops"] = round(profile.amortized, 3)
    benchmark.extra_info["worst_slide_ops"] = profile.worst_case
    if shape == "ascending":
        assert occupancy == 1
    if shape == "filler":
        assert profile.worst_case >= WINDOW - 1
    if shape == "random":
        assert profile.amortized < 2.0
