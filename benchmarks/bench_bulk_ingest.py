"""Per-tuple vs bulk-ingestion throughput across batch sizes.

The perf-trajectory harness for the bulk API (``push_many`` /
``step_many`` / ``feed_many``).  Each case drives the same stream
through the same aggregator twice — once per tuple, once in batches —
querying at every batch boundary in both runs, so the only difference
is the ingestion path.  Times are median-of-3; throughput is reported
in tuples/second and as the bulk/per-tuple *speedup ratio*, which is
what the CI smoke gate compares (ratios are machine-relative, so the
committed baseline stays meaningful across runners).

Usage::

    python benchmarks/bench_bulk_ingest.py            # full scale,
        # writes BENCH_bulk_ingest.json at the repo root
    python benchmarks/bench_bulk_ingest.py --smoke    # reduced scale
    python benchmarks/bench_bulk_ingest.py --check    # reduced scale,
        # fail on >25% speedup regression vs the committed JSON and on
        # the acceptance floors (Inv/Sum >= 2x, Non-Inv/Max >= 1.5x at
        # batch 1024)
    python benchmarks/bench_bulk_ingest.py --figs     # refresh the
        # committed fig10/fig11 single-query baselines

Not collected by pytest (``testpaths = ["tests"]``): run it directly.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.baselines.naive import NaiveAggregator  # noqa: E402
from repro.baselines.twostacks import TwoStacksAggregator  # noqa: E402
from repro.core.slickdeque_inv import SlickDequeInv  # noqa: E402
from repro.core.slickdeque_noninv import SlickDequeNonInv  # noqa: E402
from repro.kernels import active_backends, numpy_enabled  # noqa: E402
from repro.operators.registry import get_operator  # noqa: E402
from repro.registry import available_algorithms, get_algorithm  # noqa: E402
from repro.stream.engine import StreamEngine  # noqa: E402
from repro.windows.query import Query  # noqa: E402

BULK_JSON = REPO_ROOT / "BENCH_bulk_ingest.json"
FIG10_JSON = REPO_ROOT / "BENCH_fig10_single_sum.json"
FIG11_JSON = REPO_ROOT / "BENCH_fig11_single_max.json"

WINDOW = 1024
REPEATS = 3
FULL_STREAM = 120_000
FULL_BATCHES = (64, 256, 1024, 4096)
SMOKE_STREAM = 60_000
SMOKE_BATCHES = (256, 1024)
#: (case key, operator, aggregator factory); the acceptance floors of
#: the perf-trajectory issue apply to the two slickdeque rows.
CASES = (
    ("slickdeque_inv/sum", "sum", SlickDequeInv),
    ("slickdeque_noninv/max", "max", SlickDequeNonInv),
    ("naive/sum", "sum", NaiveAggregator),
    ("twostacks/sum", "sum", TwoStacksAggregator),
)
#: Minimum speedups at batch 1024 (the issue's acceptance criteria).
FLOORS = {"slickdeque_inv/sum": 2.0, "slickdeque_noninv/max": 1.5}
#: Allowed relative speedup regression vs the committed baseline.
TOLERANCE = 0.25


def make_stream(size: int, float_values: bool = False) -> List[Any]:
    rng = random.Random(2012)
    if float_values:
        return [rng.uniform(-100.0, 100.0) for _ in range(size)]
    return [rng.randint(-100, 100) for _ in range(size)]


def _median_time(run: Callable[[], None]) -> float:
    times = []
    for _ in range(REPEATS):
        started = time.perf_counter()
        run()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


def _measure_pair(per_tuple_run, bulk_run):
    """Median per-round speedup over interleaved timing rounds.

    Interleaving (per-tuple, bulk, per-tuple, bulk, ...) keeps CPU
    frequency drift and runner contention affecting both paths equally,
    which stabilises the *ratio* far better than timing each path in
    its own block.
    """
    per_tuple_times, bulk_times, speedups = [], [], []
    for _ in range(REPEATS):
        started = time.perf_counter()
        per_tuple_run()
        per_tuple_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        bulk_run()
        bulk_times.append(time.perf_counter() - started)
        speedups.append(per_tuple_times[-1] / bulk_times[-1])
    return (
        statistics.median(per_tuple_times),
        statistics.median(bulk_times),
        statistics.median(speedups),
    )


def _aggregator_run(factory, operator_name, stream, batch, bulk):
    def run():
        aggregator = factory(get_operator(operator_name), WINDOW)
        index = 0
        total = len(stream)
        if bulk:
            push_many = aggregator.push_many
            while index < total:
                push_many(stream[index:index + batch])
                index += batch
                aggregator.query()
        else:
            push = aggregator.push
            while index < total:
                stop = min(index + batch, total)
                for position in range(index, stop):
                    push(stream[position])
                index = stop
                aggregator.query()

    return run


def _engine_run(stream, batch, bulk):
    queries = (Query(WINDOW, 32),)

    def run():
        engine = StreamEngine(queries, get_operator("sum"))
        index = 0
        total = len(stream)
        if bulk:
            while index < total:
                engine.feed_many(stream[index:index + batch])
                index += batch
        else:
            feed = engine.feed
            for value in stream:
                feed(value)

    return run


def run_matrix(stream_size: int, batches) -> List[Dict[str, Any]]:
    """Measure every case × batch size; return the result rows."""
    stream = make_stream(stream_size)
    results = []
    for case, operator_name, factory in CASES:
        for batch in batches:
            pair = _measure_pair(
                _aggregator_run(factory, operator_name, stream, batch,
                                bulk=False),
                _aggregator_run(factory, operator_name, stream, batch,
                                bulk=True),
            )
            results.append(_row(case, "list", batch, stream_size, pair))
            print(f"  {case:24s} batch={batch:<5d} "
                  f"speedup={results[-1]['speedup']:.2f}x")
    if numpy_enabled():
        import numpy

        array = numpy.array(make_stream(stream_size, float_values=True))
        for case, operator_name, factory in CASES[:2]:
            for batch in batches:
                pair = _measure_pair(
                    _aggregator_run(factory, operator_name,
                                    array.tolist(), batch, bulk=False),
                    _aggregator_run(factory, operator_name, array,
                                    batch, bulk=True),
                )
                results.append(_row(case, "ndarray", batch, stream_size,
                                    pair))
                print(f"  {case:24s} batch={batch:<5d} (ndarray) "
                      f"speedup={results[-1]['speedup']:.2f}x")
    for batch in batches:
        pair = _measure_pair(
            _engine_run(stream, batch, bulk=False),
            _engine_run(stream, batch, bulk=True),
        )
        results.append(_row("engine_shared/sum", "list", batch,
                            stream_size, pair))
        print(f"  {'engine_shared/sum':24s} batch={batch:<5d} "
              f"speedup={results[-1]['speedup']:.2f}x")
    return results


def _row(case, input_kind, batch, stream_size, pair):
    per_tuple, bulk, speedup = pair
    return {
        "case": case,
        "input": input_kind,
        "batch": batch,
        "per_tuple_tuples_per_s": round(stream_size / per_tuple, 1),
        "bulk_tuples_per_s": round(stream_size / bulk, 1),
        "speedup": round(speedup, 3),
    }


def check(rows: List[Dict[str, Any]], baseline_path: Path) -> int:
    """Compare speedup ratios against the committed smoke baseline.

    The gate compares the just-measured smoke-scale ratios against the
    baseline's *smoke section*, which was measured at the same scale —
    speedup ratios shift with stream length, so cross-scale comparison
    would flag noise, not regressions.  Only list-input rows gate:
    ndarray ratios fold numpy allocation jitter into a 7x-25x range
    that a 25% band cannot separate from real regressions, so those
    rows are recorded as informational only.
    """
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; nothing to check")
        return 1
    baseline = json.loads(baseline_path.read_text())
    by_key = {
        (row["case"], row["input"], row["batch"]): row["speedup"]
        for row in baseline["smoke"]["results"]
    }
    failures = []
    for row in rows:
        if row["input"] != "list":
            continue  # informational only; see docstring
        key = (row["case"], row["input"], row["batch"])
        expected = by_key.get(key)
        if expected is None:
            continue
        floor = expected * (1.0 - TOLERANCE)
        if row["speedup"] < floor:
            failures.append(
                f"{key}: speedup {row['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {expected:.2f}x - {TOLERANCE:.0%})"
            )
    for case, floor in FLOORS.items():
        measured = max(
            (row["speedup"] for row in rows
             if row["case"] == case and row["input"] == "list"
             and row["batch"] == 1024),
            default=0.0,
        )
        if measured < floor:
            failures.append(
                f"{case} at batch 1024: {measured:.2f}x below the "
                f"{floor:.1f}x acceptance floor"
            )
    if failures:
        print("PERF REGRESSION (smoke gate):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("perf smoke gate passed: all speedup ratios within tolerance")
    return 0


def run_fig_baselines(stream_size: int) -> None:
    """Refresh the committed fig10/fig11 single-query baselines.

    Absolute tuples/second is machine-specific, so the baseline also
    records each algorithm's throughput *normalised to Naive* on the
    same machine — the shape that reproduces the figures' ordering and
    stays comparable across runners.
    """
    stream = make_stream(stream_size)
    for figure, operator_name, path in (
        ("10", "sum", FIG10_JSON),
        ("11", "max", FIG11_JSON),
    ):
        rows = []
        for window in (64, 1024):
            throughput = {}
            for algorithm in available_algorithms():
                spec = get_algorithm(algorithm)

                def run():
                    aggregator = spec.single(
                        get_operator(operator_name), window
                    )
                    step = aggregator.step
                    for value in stream:
                        step(value)

                throughput[algorithm] = stream_size / _median_time(run)
            naive = throughput.get("naive") or 1.0
            for algorithm, tuples_per_s in throughput.items():
                rows.append({
                    "figure": figure,
                    "window": window,
                    "algorithm": algorithm,
                    "tuples_per_s": round(tuples_per_s, 1),
                    "vs_naive": round(tuples_per_s / naive, 3),
                })
                print(f"  fig{figure} window={window:<5d} "
                      f"{algorithm:12s} {tuples_per_s:12.0f} t/s "
                      f"({rows[-1]['vs_naive']:.2f}x naive)")
        path.write_text(json.dumps(
            {"meta": {"stream": stream_size, "operator": operator_name,
                      "repeats": REPEATS}, "results": rows},
            indent=2) + "\n")
        print(f"wrote {path}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced scale; do not overwrite the baseline")
    parser.add_argument("--check", action="store_true",
                        help="reduced scale; fail on regression vs "
                             "the committed BENCH_bulk_ingest.json")
    parser.add_argument("--figs", action="store_true",
                        help="refresh the fig10/fig11 baselines")
    parser.add_argument("--output", type=Path, default=BULK_JSON,
                        help="where to write the report JSON")
    args = parser.parse_args()
    if args.figs:
        run_fig_baselines(stream_size=20_000)
        return 0
    if args.smoke or args.check:
        print(f"bulk-ingestion smoke: stream={SMOKE_STREAM} "
              f"batches={SMOKE_BATCHES}")
        rows = run_matrix(SMOKE_STREAM, SMOKE_BATCHES)
        if args.check:
            return check(rows, BULK_JSON)
        print("smoke run only; baseline not overwritten")
        return 0
    print(f"bulk-ingestion bench: stream={FULL_STREAM} "
          f"batches={FULL_BATCHES}")
    full_rows = run_matrix(FULL_STREAM, FULL_BATCHES)
    # The smoke baseline keeps the *minimum* speedup seen across
    # several independent passes: the gate's 25% band then sits below
    # normal run-to-run ratio variance instead of inside it.
    smoke_rows = []
    for attempt in range(3):
        print(f"smoke-scale baseline pass {attempt + 1}/3: "
              f"stream={SMOKE_STREAM} batches={SMOKE_BATCHES}")
        for row in run_matrix(SMOKE_STREAM, SMOKE_BATCHES):
            key = (row["case"], row["input"], row["batch"])
            existing = next(
                (r for r in smoke_rows
                 if (r["case"], r["input"], r["batch"]) == key),
                None,
            )
            if existing is None:
                smoke_rows.append(row)
            elif row["speedup"] < existing["speedup"]:
                existing.update(row)
    args.output.write_text(json.dumps({
        "meta": {
            "stream": FULL_STREAM,
            "window": WINDOW,
            "repeats": REPEATS,
            "backends": active_backends(),
        },
        "results": full_rows,
        "smoke": {
            "stream": SMOKE_STREAM,
            "batches": list(SMOKE_BATCHES),
            "results": smoke_rows,
        },
    }, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
