"""Telemetry overhead on the hot ingest path.

The observability issue's regression gate: instrumenting
``StreamEngine.feed_many`` (a process-global hub installed via
:func:`repro.telemetry.install`) must stay cheap relative to the
uninstrumented path, whose entire cost is one module-attribute load
and a ``None`` check.  Each round drives the Fig. 10 single-``sum``
workload through the engine twice — hub uninstalled, hub installed —
interleaved so CPU drift hits both paths equally, and reports the
median *overhead ratio* (instrumented time / uninstrumented time),
which is what the CI smoke gate compares (ratios are
machine-relative, so the committed baseline stays meaningful across
runners).

Usage::

    python benchmarks/bench_telemetry_overhead.py          # full
        # scale, writes BENCH_telemetry_overhead.json at the repo root
    python benchmarks/bench_telemetry_overhead.py --smoke  # reduced
    python benchmarks/bench_telemetry_overhead.py --check  # reduced
        # scale, fail when a ratio exceeds the absolute ceiling
        # (1.5x) or regresses >0.25 above the committed baseline

Not collected by pytest (``testpaths = ["tests"]``): run it directly.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.operators.registry import get_operator  # noqa: E402
from repro.stream.engine import StreamEngine  # noqa: E402
from repro.telemetry import Telemetry, install, uninstall  # noqa: E402
from repro.windows.query import Query  # noqa: E402

OVERHEAD_JSON = REPO_ROOT / "BENCH_telemetry_overhead.json"

#: Fig. 10 shape: one sum ACQ, window 1024, slide 1.
WINDOW = 1024
REPEATS = 3
FULL_STREAM = 120_000
SMOKE_STREAM = 40_000
BATCHES = (64, 1024)

#: Instrumentation may never cost more than this, on any runner.
ABSOLUTE_CEILING = 1.5
#: Allowed absolute increase of the ratio over the committed baseline
#: (additive, not relative: the ratio is already normalised and sits
#: near 1.0, where relative bands are needlessly tight).
TOLERANCE = 0.25


def make_stream(size: int) -> List[int]:
    rng = random.Random(2012)
    return [rng.randint(-100, 100) for _ in range(size)]


def _engine_run(stream: List[int], batch: int) -> None:
    engine = StreamEngine([Query(WINDOW, 1)], get_operator("sum"))
    for start in range(0, len(stream), batch):
        engine.feed_many(stream[start : start + batch])


def _measure(stream: List[int], batch: int) -> dict:
    """Median interleaved (uninstrumented, instrumented) round times."""
    plain_times, instrumented_times, ratios = [], [], []
    for _ in range(REPEATS):
        uninstall()
        started = time.perf_counter()
        _engine_run(stream, batch)
        plain_times.append(time.perf_counter() - started)

        install(Telemetry())
        try:
            started = time.perf_counter()
            _engine_run(stream, batch)
            instrumented_times.append(time.perf_counter() - started)
        finally:
            uninstall()
        ratios.append(instrumented_times[-1] / plain_times[-1])
    plain = statistics.median(plain_times)
    instrumented = statistics.median(instrumented_times)
    return {
        "case": "engine_shared/sum",
        "batch": batch,
        "uninstrumented_tuples_per_s": round(len(stream) / plain, 1),
        "instrumented_tuples_per_s": round(
            len(stream) / instrumented, 1
        ),
        "overhead_ratio": round(statistics.median(ratios), 4),
    }


def run_suite(stream_size: int) -> List[dict]:
    stream = make_stream(stream_size)
    results = []
    for batch in BATCHES:
        row = _measure(stream, batch)
        print(
            f"  batch {batch:>5}: "
            f"plain {row['uninstrumented_tuples_per_s']:>13,.0f} t/s, "
            f"instrumented {row['instrumented_tuples_per_s']:>13,.0f} "
            f"t/s, overhead {row['overhead_ratio']:.3f}x"
        )
        results.append(row)
    return results


def check(results: List[dict]) -> int:
    """Gate the measured ratios; return a process exit code."""
    failures = []
    try:
        committed = json.loads(OVERHEAD_JSON.read_text())
    except FileNotFoundError:
        committed = None
        print(f"no committed baseline at {OVERHEAD_JSON}; "
              "checking the absolute ceiling only")
    baseline = {
        (row["case"], row["batch"]): row["overhead_ratio"]
        for row in (committed or {}).get("smoke", {}).get("results", [])
    }
    for row in results:
        ratio = row["overhead_ratio"]
        label = f"{row['case']} @ batch {row['batch']}"
        if ratio > ABSOLUTE_CEILING:
            failures.append(
                f"{label}: overhead {ratio:.3f}x exceeds the "
                f"{ABSOLUTE_CEILING}x ceiling"
            )
        expected = baseline.get((row["case"], row["batch"]))
        if expected is not None and ratio > expected + TOLERANCE:
            failures.append(
                f"{label}: overhead {ratio:.3f}x regressed beyond "
                f"baseline {expected:.3f}x + {TOLERANCE}"
            )
    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nOK: telemetry overhead within bounds")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Instrumented vs uninstrumented feed_many."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="reduced scale, no JSON write")
    parser.add_argument("--check", action="store_true",
                        help="reduced scale, gate vs the committed "
                        "baseline and the absolute ceiling")
    args = parser.parse_args()

    if args.check or args.smoke:
        print(f"telemetry overhead (smoke, {SMOKE_STREAM:,} tuples)")
        results = run_suite(SMOKE_STREAM)
        if args.check:
            return check(results)
        return 0

    print(f"telemetry overhead (full, {FULL_STREAM:,} tuples)")
    results = run_suite(FULL_STREAM)
    print(f"\nsmoke baseline ({SMOKE_STREAM:,} tuples)")
    smoke_results = run_suite(SMOKE_STREAM)
    OVERHEAD_JSON.write_text(
        json.dumps(
            {
                "meta": {
                    "window": WINDOW,
                    "repeats": REPEATS,
                    "stream": FULL_STREAM,
                    "batches": list(BATCHES),
                },
                "results": results,
                "smoke": {
                    "stream": SMOKE_STREAM,
                    "results": smoke_results,
                },
            },
            indent=2,
        )
        + "\n"
    )
    print(f"\nwrote {OVERHEAD_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
