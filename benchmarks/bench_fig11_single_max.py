"""Fig. 11 (Exp 1b): single-query throughput, non-invertible Max.

Expected shape: SlickDeque (Non-Inv) leads from small windows on; the
tree-based algorithms degrade with window size; TwoStacks is the
closest flat competitor.
"""

from __future__ import annotations

import pytest

from conftest import run_stream
from repro.operators.registry import get_operator
from repro.registry import available_algorithms, get_algorithm

WINDOWS = (64, 1024)


@pytest.mark.parametrize("window", WINDOWS)
@pytest.mark.parametrize("algorithm", available_algorithms())
def test_fig11_single_query_max(benchmark, algorithm, window,
                                energy_stream):
    spec = get_algorithm(algorithm)
    aggregator = spec.single(get_operator("max"), window)
    benchmark.extra_info["figure"] = "11"
    benchmark.extra_info["window"] = window
    result = benchmark(run_stream, aggregator, energy_stream)
    assert result is not None
