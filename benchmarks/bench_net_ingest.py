"""Over-socket batch ingest vs the in-process bulk fast path.

The serving-layer companion to ``bench_bulk_ingest.py``: the same
keyed stream is ingested three ways at each batch size —

* ``engine``   — in-process :meth:`StreamEngine.feed_many` (the bulk
  fast path with no service or socket in front);
* ``service``  — in-process :meth:`AggregationService.submit_many`
  over the inline transport (sharding + merging, no socket);
* ``socket``   — pipelined SUBMIT_BATCH frames through the asyncio
  server to the same inline-transport service.

Reported per batch size: tuples/second for each path and the
*retention ratios* ``socket/engine`` and ``socket/service`` — the
fraction of in-process throughput that survives the wire.  Ratios are
machine-relative, so the committed baseline transfers across runners;
the CI gate fails only when a smoke-scale ratio drops more than
``TOLERANCE`` below the committed ``BENCH_net_ingest.json`` smoke
baseline (median of interleaved rounds, same pattern as the bulk
gate).

Usage::

    python benchmarks/bench_net_ingest.py            # full scale,
        # writes BENCH_net_ingest.json at the repo root
    python benchmarks/bench_net_ingest.py --smoke    # reduced scale
    python benchmarks/bench_net_ingest.py --check    # reduced scale,
        # fail on ratio regression vs the committed JSON

Not collected by pytest (``testpaths = ["tests"]``): run it directly.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.net.client import AggregationClient  # noqa: E402
from repro.net.server import (  # noqa: E402
    AggregationServer,
    ServerThread,
)
from repro.operators.registry import get_operator  # noqa: E402
from repro.service.service import AggregationService  # noqa: E402
from repro.stream.engine import StreamEngine  # noqa: E402
from repro.windows.query import Query  # noqa: E402

NET_JSON = REPO_ROOT / "BENCH_net_ingest.json"

QUERIES = (Query(1024, 32), Query(512, 64))
NUM_SHARDS = 2
REPEATS = 3
FULL_STREAM = 60_000
FULL_BATCHES = (256, 1024, 4096)
SMOKE_STREAM = 24_000
SMOKE_BATCHES = (256, 1024)
#: Allowed relative ratio regression vs the committed smoke baseline.
#: Wider than the bulk gate's band: socket paths fold kernel
#: scheduling and loopback jitter into every round.
TOLERANCE = 0.5

KEYS = tuple(f"k{i}" for i in range(16))


def make_records(size: int) -> List[Any]:
    """Deterministic keyed integer records."""
    return [
        (KEYS[i % len(KEYS)], (i * 37 + 5) % 211 - 105)
        for i in range(size)
    ]


def _chunks(records, batch):
    return [
        records[start : start + batch]
        for start in range(0, len(records), batch)
    ]


def _time(run) -> float:
    started = time.perf_counter()
    run()
    return time.perf_counter() - started


def _engine_run(records, batch):
    values = [value for _, value in records]

    def run():
        engine = StreamEngine(QUERIES, get_operator("sum"))
        for start in range(0, len(values), batch):
            engine.feed_many(values[start : start + batch])

    return run


def _service_run(records, batch):
    chunks = _chunks(records, batch)

    def run():
        service = AggregationService(
            QUERIES,
            get_operator("sum"),
            num_shards=NUM_SHARDS,
            transport="inline",
            batch_size=batch,
        )
        for chunk in chunks:
            service.submit_many(chunk)
        service.close()

    return run


def _socket_run(records, batch):
    chunks = _chunks(records, batch)

    def run():
        service = AggregationService(
            QUERIES,
            get_operator("sum"),
            num_shards=NUM_SHARDS,
            transport="inline",
            batch_size=batch,
        )
        server = AggregationServer(
            service,
            max_inflight_records=None,
            max_inflight_bytes=None,
        )
        with ServerThread(server) as thread:
            with AggregationClient(
                "127.0.0.1", thread.port
            ) as client:
                client.submit_batches(chunks)
                client.drain()

    return run


def measure(stream_size: int, batches) -> List[Dict[str, Any]]:
    """Interleaved rounds per batch size; median ratios reported."""
    records = make_records(stream_size)
    rows = []
    for batch in batches:
        engine_times, service_times, socket_times = [], [], []
        vs_engine, vs_service = [], []
        for _ in range(REPEATS):
            engine_times.append(_time(_engine_run(records, batch)))
            service_times.append(_time(_service_run(records, batch)))
            socket_times.append(_time(_socket_run(records, batch)))
            vs_engine.append(engine_times[-1] / socket_times[-1])
            vs_service.append(service_times[-1] / socket_times[-1])
        row = {
            "batch": batch,
            "engine_tuples_per_s": round(
                stream_size / statistics.median(engine_times), 1
            ),
            "service_tuples_per_s": round(
                stream_size / statistics.median(service_times), 1
            ),
            "socket_tuples_per_s": round(
                stream_size / statistics.median(socket_times), 1
            ),
            "socket_vs_engine": round(
                statistics.median(vs_engine), 4
            ),
            "socket_vs_service": round(
                statistics.median(vs_service), 4
            ),
        }
        rows.append(row)
        print(
            f"  batch={batch:<5d} socket "
            f"{row['socket_tuples_per_s']:>12,.0f} t/s  "
            f"({row['socket_vs_engine']:.2%} of engine, "
            f"{row['socket_vs_service']:.2%} of service)"
        )
    return rows


def check(rows: List[Dict[str, Any]], baseline_path: Path) -> int:
    """Fail when a retention ratio regresses past the tolerance band."""
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; nothing to check")
        return 1
    baseline = json.loads(baseline_path.read_text())
    by_batch = {
        row["batch"]: row for row in baseline["smoke"]["results"]
    }
    failures = []
    for row in rows:
        expected = by_batch.get(row["batch"])
        if expected is None:
            continue
        for metric in ("socket_vs_engine", "socket_vs_service"):
            floor = expected[metric] * (1.0 - TOLERANCE)
            if row[metric] < floor:
                failures.append(
                    f"batch {row['batch']} {metric}: "
                    f"{row[metric]:.3f} fell below {floor:.3f} "
                    f"(baseline {expected[metric]:.3f} - "
                    f"{TOLERANCE:.0%})"
                )
    if failures:
        print("PERF REGRESSION (net smoke gate):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("net smoke gate passed: socket retention within tolerance")
    return 0


def main() -> int:
    """CLI entry point; see the module docstring for modes."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced scale; do not overwrite the baseline",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="reduced scale; fail on regression vs the committed "
             "BENCH_net_ingest.json",
    )
    parser.add_argument(
        "--output", type=Path, default=NET_JSON,
        help="where to write the report JSON",
    )
    args = parser.parse_args()
    if args.smoke or args.check:
        print(f"net-ingest smoke: stream={SMOKE_STREAM} "
              f"batches={SMOKE_BATCHES}")
        rows = measure(SMOKE_STREAM, SMOKE_BATCHES)
        if args.check:
            return check(rows, NET_JSON)
        print("smoke run only; baseline not overwritten")
        return 0
    print(f"net-ingest bench: stream={FULL_STREAM} "
          f"batches={FULL_BATCHES}")
    full_rows = measure(FULL_STREAM, FULL_BATCHES)
    # Baseline keeps the *minimum* ratio over several smoke passes so
    # the gate's band sits below run-to-run variance (bulk pattern).
    smoke_rows: List[Dict[str, Any]] = []
    for attempt in range(3):
        print(f"smoke-scale baseline pass {attempt + 1}/3: "
              f"stream={SMOKE_STREAM} batches={SMOKE_BATCHES}")
        for row in measure(SMOKE_STREAM, SMOKE_BATCHES):
            existing = next(
                (r for r in smoke_rows if r["batch"] == row["batch"]),
                None,
            )
            if existing is None:
                smoke_rows.append(row)
            else:
                for metric in (
                    "socket_vs_engine", "socket_vs_service",
                ):
                    if row[metric] < existing[metric]:
                        existing[metric] = row[metric]
    args.output.write_text(json.dumps({
        "meta": {
            "stream": FULL_STREAM,
            "queries": [[q.range_size, q.slide] for q in QUERIES],
            "num_shards": NUM_SHARDS,
            "repeats": REPEATS,
        },
        "full": {"stream": FULL_STREAM, "results": full_rows},
        "smoke": {"stream": SMOKE_STREAM, "results": smoke_rows},
    }, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
