"""Fig. 12 (Exp 2a): max-multi-query throughput, Sum.

Ranges ``1..window`` all answered each slide.  TwoStacks and DABA are
absent — the paper notes they do not support multi-query execution.
Expected shape: SlickDeque (Inv) ahead from window 4 up; Naive
collapses quadratically.
"""

from __future__ import annotations

import pytest

from conftest import run_multi_stream
from repro.operators.registry import get_operator
from repro.registry import available_algorithms, get_algorithm

WINDOWS = (16, 64)


@pytest.mark.parametrize("window", WINDOWS)
@pytest.mark.parametrize(
    "algorithm", available_algorithms(multi_query=True)
)
def test_fig12_multi_query_sum(benchmark, algorithm, window,
                               energy_stream_short):
    spec = get_algorithm(algorithm)
    ranges = list(range(1, window + 1))
    aggregator = spec.multi(get_operator("sum"), ranges)
    benchmark.extra_info["figure"] = "12"
    benchmark.extra_info["window"] = window
    answers = benchmark(
        run_multi_stream, aggregator, energy_stream_short
    )
    assert len(answers) == window
