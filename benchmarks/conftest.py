"""Shared fixtures for the benchmark suite.

Streams are materialised once per session so data generation never
pollutes timings.  Every bench file maps to one paper table or figure
(see DESIGN.md, per-experiment index).
"""

from __future__ import annotations

import pytest

from repro.datasets.debs12 import debs12_array

#: Stream sizes kept bench-friendly; the experiment CLI runs the
#: full-scale sweeps (``repro-experiments all``).
SINGLE_STREAM = 4_000
MULTI_STREAM = 800


@pytest.fixture(scope="session")
def energy_stream():
    """One DEBS12-style energy reading for single-query benches."""
    return debs12_array(SINGLE_STREAM, reading=0, seed=2012)


@pytest.fixture(scope="session")
def energy_stream_short():
    """Shorter stream for the quadratic multi-query benches."""
    return debs12_array(MULTI_STREAM, reading=0, seed=2012)


def run_stream(aggregator, values):
    """Drive a single-query aggregator; returns the last answer."""
    step = aggregator.step
    answer = None
    for value in values:
        answer = step(value)
    return answer


def run_multi_stream(aggregator, values):
    """Drive a multi-query aggregator; returns the last answer map."""
    step = aggregator.step
    answers = None
    for value in values:
        answers = step(value)
    return answers
