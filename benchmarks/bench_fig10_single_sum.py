"""Fig. 10 (Exp 1a): single-query throughput, invertible Sum.

One benchmark per (algorithm, window); pytest-benchmark's ops/second
column is directly comparable to the figure's y-axis.  Expected shape:
SlickDeque fastest and window-independent; FlatFIT/TwoStacks/DABA flat;
FlatFAT/B-Int degrade logarithmically; Naive degrades linearly.
"""

from __future__ import annotations

import pytest

from conftest import run_stream
from repro.operators.registry import get_operator
from repro.registry import available_algorithms, get_algorithm

WINDOWS = (64, 1024)


@pytest.mark.parametrize("window", WINDOWS)
@pytest.mark.parametrize("algorithm", available_algorithms())
def test_fig10_single_query_sum(benchmark, algorithm, window,
                                energy_stream):
    spec = get_algorithm(algorithm)
    aggregator = spec.single(get_operator("sum"), window)
    benchmark.extra_info["figure"] = "10"
    benchmark.extra_info["window"] = window
    result = benchmark(run_stream, aggregator, energy_stream)
    assert result is not None
