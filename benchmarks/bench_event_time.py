"""Event-time ingest retention: in-order vs bounded-disorder streams.

The event-time layer's cost question: what fraction of the plain
arrival-ordered time-window ingest rate survives once records carry
timestamps and flow through the bounded-lateness reorder buffer?  The
same timestamped stream is ingested two ways at each disorder level —

* ``sorted``  — per-record :meth:`TimeWindowEngine.feed` over the
  timestamp-sorted stream (the pre-event-time ingest surface, no
  reorder buffer, no watermark);
* ``event``   — batched :meth:`EventTimeEngine.feed_many` over the
  disordered stream (the shape the sharded service ingests in:
  reorder buffer + batch-granularity watermark in front of the same
  inner engine).

Disorder levels: 0% (fully in-order), 1%, and 10% of records
displaced by a deterministic jitter strictly inside the lateness
bound, so both paths produce identical answers and nothing is late.
Reported per level: tuples/second for each path, an informational
per-record event rate, and the *retention ratio* ``event/sorted``.
Ratios are machine-relative, so the committed baseline transfers
across runners; the CI gate fails when a smoke-scale ratio drops more
than ``TOLERANCE`` below the committed ``BENCH_event_time.json``
smoke baseline, or when the fully in-order retention falls below the
hard :data:`MIN_INORDER_RETENTION` floor (event-time enabled may cost
at most 25% on sorted streams).

Usage::

    python benchmarks/bench_event_time.py            # full scale,
        # writes BENCH_event_time.json at the repo root
    python benchmarks/bench_event_time.py --smoke    # reduced scale
    python benchmarks/bench_event_time.py --check    # reduced scale,
        # fail on ratio regression vs the committed JSON

Not collected by pytest (``testpaths = ["tests"]``): run it directly.
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.operators.registry import get_operator  # noqa: E402
from repro.stream.engine import EventTimeEngine  # noqa: E402
from repro.windows.timebased import (  # noqa: E402
    TimeQuery,
    TimeWindowEngine,
)

EVENT_JSON = REPO_ROOT / "BENCH_event_time.json"

QUERIES = (TimeQuery(2.0, 1.0), TimeQuery(5.0, 2.0))
LATENESS = 0.25
BATCH = 512
REPEATS = 5
FULL_STREAM = 200_000
SMOKE_STREAM = 60_000
DISORDER_LEVELS = (0, 1, 10)
#: Allowed relative ratio regression vs the committed smoke baseline.
TOLERANCE = 0.4
#: Hard floor for the fully in-order retention ratio: enabling
#: event-time on a sorted stream may cost at most 25% of ingest.
MIN_INORDER_RETENTION = 0.75

#: Record spacing in seconds (100 records per one-second slice).
TICK = 0.01


def make_stream(size: int, disorder_pct: int) -> List[Tuple[float, int]]:
    """A timestamped integer stream with bounded arrival disorder.

    Every ``100 / disorder_pct``-ish record (chosen by a multiplicative
    hash, so displaced records spread evenly) is jittered forward in
    *arrival* order by up to 90% of the lateness bound; event
    timestamps themselves stay unique and sorted, so the event path
    must re-sequence but never sees a late record.
    """
    records = [
        (index * TICK, (index * 37 + 5) % 211 - 105)
        for index in range(size)
    ]
    if disorder_pct == 0:
        return records
    jittered = []
    for index, record in enumerate(records):
        mixed = (index * 2654435761) & 0xFFFFFFFF
        if mixed % 100 < disorder_pct:
            jitter = (mixed >> 7) % 90 / 100 * LATENESS
        else:
            jitter = 0.0
        jittered.append((record[0] + jitter, record))
    return [record for _, record in sorted(jittered)]


def _time(run) -> float:
    # GC pauses land on whichever path happens to allocate the
    # collection-triggering object; disabling it keeps the retention
    # ratio about the algorithms, not allocator timing.
    enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        run()
        return time.perf_counter() - started
    finally:
        if enabled:
            gc.enable()


def _sorted_run(records):
    ordered = sorted(records)

    def run():
        engine = TimeWindowEngine(list(QUERIES), get_operator("sum"))
        feed = engine.feed
        for timestamp, value in ordered:
            feed(timestamp, value)
        engine.finish()

    return run


def _event_batch_run(records):
    def run():
        engine = EventTimeEngine(
            list(QUERIES), get_operator("sum"), lateness=LATENESS
        )
        for start in range(0, len(records), BATCH):
            engine.feed_many(records[start : start + BATCH])
        engine.finish()

    return run


def _event_record_run(records):
    def run():
        engine = EventTimeEngine(
            list(QUERIES), get_operator("sum"), lateness=LATENESS
        )
        feed = engine.feed
        for timestamp, value in records:
            feed(timestamp, value)
        engine.finish()

    return run


def measure(stream_size: int) -> List[Dict[str, Any]]:
    """Interleaved rounds per disorder level; median ratios reported."""
    rows = []
    for disorder_pct in DISORDER_LEVELS:
        records = make_stream(stream_size, disorder_pct)
        sorted_times, batch_times, record_times = [], [], []
        retention = []
        for _ in range(REPEATS):
            sorted_times.append(_time(_sorted_run(records)))
            batch_times.append(_time(_event_batch_run(records)))
            record_times.append(_time(_event_record_run(records)))
            retention.append(sorted_times[-1] / batch_times[-1])
        row = {
            "disorder_pct": disorder_pct,
            "sorted_tuples_per_s": round(
                stream_size / statistics.median(sorted_times), 1
            ),
            "event_tuples_per_s": round(
                stream_size / statistics.median(batch_times), 1
            ),
            "event_per_record_tuples_per_s": round(
                stream_size / statistics.median(record_times), 1
            ),
            "event_vs_sorted": round(statistics.median(retention), 4),
        }
        rows.append(row)
        print(
            f"  disorder={disorder_pct:>2d}% event "
            f"{row['event_tuples_per_s']:>12,.0f} t/s  "
            f"({row['event_vs_sorted']:.2%} of sorted in-order)"
        )
    return rows


def check(rows: List[Dict[str, Any]], baseline_path: Path) -> int:
    """Fail when retention regresses past the tolerance band or floor."""
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; nothing to check")
        return 1
    baseline = json.loads(baseline_path.read_text())
    by_level = {
        row["disorder_pct"]: row
        for row in baseline["smoke"]["results"]
    }
    failures = []
    for row in rows:
        expected = by_level.get(row["disorder_pct"])
        if expected is None:
            continue
        floor = expected["event_vs_sorted"] * (1.0 - TOLERANCE)
        if row["disorder_pct"] == 0:
            floor = max(floor, MIN_INORDER_RETENTION)
        if row["event_vs_sorted"] < floor:
            failures.append(
                f"disorder {row['disorder_pct']}% event_vs_sorted: "
                f"{row['event_vs_sorted']:.3f} fell below "
                f"{floor:.3f} (baseline "
                f"{expected['event_vs_sorted']:.3f})"
            )
    if failures:
        print("PERF REGRESSION (event-time smoke gate):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "event-time smoke gate passed: ingest retention within "
        "tolerance"
    )
    return 0


def main() -> int:
    """CLI entry point; see the module docstring for modes."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced scale; do not overwrite the baseline",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="reduced scale; fail on regression vs the committed "
             "BENCH_event_time.json",
    )
    parser.add_argument(
        "--output", type=Path, default=EVENT_JSON,
        help="where to write the report JSON",
    )
    args = parser.parse_args()
    if args.smoke or args.check:
        print(f"event-time smoke: stream={SMOKE_STREAM} "
              f"disorder={DISORDER_LEVELS}")
        rows = measure(SMOKE_STREAM)
        if args.check:
            return check(rows, EVENT_JSON)
        print("smoke run only; baseline not overwritten")
        return 0
    print(f"event-time bench: stream={FULL_STREAM} "
          f"disorder={DISORDER_LEVELS}")
    full_rows = measure(FULL_STREAM)
    # Baseline keeps the *minimum* ratio over several smoke passes so
    # the gate's band sits below run-to-run variance (bulk pattern).
    smoke_rows: List[Dict[str, Any]] = []
    for attempt in range(3):
        print(f"smoke-scale baseline pass {attempt + 1}/3: "
              f"stream={SMOKE_STREAM}")
        for row in measure(SMOKE_STREAM):
            existing = next(
                (
                    r for r in smoke_rows
                    if r["disorder_pct"] == row["disorder_pct"]
                ),
                None,
            )
            if existing is None:
                smoke_rows.append(row)
            elif row["event_vs_sorted"] < existing["event_vs_sorted"]:
                existing["event_vs_sorted"] = row["event_vs_sorted"]
    args.output.write_text(json.dumps({
        "meta": {
            "stream": FULL_STREAM,
            "queries": [
                [q.range_seconds, q.slide_seconds] for q in QUERIES
            ],
            "lateness": LATENESS,
            "batch": BATCH,
            "repeats": REPEATS,
        },
        "full": {"stream": FULL_STREAM, "results": full_rows},
        "smoke": {"stream": SMOKE_STREAM, "results": smoke_rows},
    }, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
