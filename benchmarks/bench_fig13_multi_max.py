"""Fig. 13 (Exp 2b): max-multi-query throughput, Max.

The paper's headline multi-query result: SlickDeque (Non-Inv) answers
every range from one deque sweep, yielding up to 345 % higher
throughput than the second-best technique.
"""

from __future__ import annotations

import pytest

from conftest import run_multi_stream
from repro.operators.registry import get_operator
from repro.registry import available_algorithms, get_algorithm

WINDOWS = (16, 64)


@pytest.mark.parametrize("window", WINDOWS)
@pytest.mark.parametrize(
    "algorithm", available_algorithms(multi_query=True)
)
def test_fig13_multi_query_max(benchmark, algorithm, window,
                               energy_stream_short):
    spec = get_algorithm(algorithm)
    ranges = list(range(1, window + 1))
    aggregator = spec.multi(get_operator("max"), ranges)
    benchmark.extra_info["figure"] = "13"
    benchmark.extra_info["window"] = window
    answers = benchmark(
        run_multi_stream, aggregator, energy_stream_short
    )
    assert len(answers) == window
