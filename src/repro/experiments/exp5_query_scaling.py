"""Exp 5 (extension): throughput vs number of registered queries.

The paper's Exp 2 fixes the query count to the window size (the
max-multi-query upper bound).  This extension study sweeps the *query
count* at a fixed window instead — the multi-tenant axis of Section 1
— and shows where each algorithm's multi-query cost model bends:

* Naive degrades linearly in Σ(ranges) (every answer is a fold);
* FlatFAT/B-Int degrade as q·log n (one look-up per range);
* FlatFIT flattens out: its path compression makes each *additional*
  range nearly free once the longest range is answered;
* SlickDeque (Inv) costs exactly 2 ops per distinct range;
* SlickDeque (Non-Inv) answers every extra range from the same deque
  sweep — per-slide ⊕ cost independent of q.

Not a paper figure; included as the ablation DESIGN.md calls out for
the multi-query design choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.datasets.debs12 import debs12_array
from repro.datasets.workloads import uniform_ranges
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import Table, series_table
from repro.metrics.throughput import measure_multi_query
from repro.operators.registry import get_operator
from repro.registry import available_algorithms, get_algorithm

#: Query-count sweep at the fixed window.
DEFAULT_QUERY_COUNTS = (1, 2, 4, 8, 16, 32, 64)
DEFAULT_WINDOW = 64


@dataclass(frozen=True)
class Exp5Result:
    """Throughput per (algorithm, query count)."""

    operator_name: str
    window: int
    query_counts: Sequence[int]
    series: Dict[str, Dict[int, Optional[float]]]

    def table(self) -> Table:
        """The sweep as a query-count × algorithm rate table."""
        return series_table(
            f"Exp 5 (extension): multi-query throughput vs query "
            f"count, {self.operator_name}, window={self.window} — "
            "plan slides/second",
            "queries",
            list(self.query_counts),
            self.series,
            list(self.series.keys()),
        )

    def scaling_factor(self, algorithm: str) -> float:
        """Throughput at q=1 over throughput at the largest q.

        Close to 1 means query-count-insensitive; large means the
        algorithm pays per query.
        """
        by_count = self.series[algorithm]
        counts = [c for c, v in by_count.items() if v]
        first, last = min(counts), max(counts)
        return by_count[first] / by_count[last]


def run(
    operator_name: str = "max",
    window: int = DEFAULT_WINDOW,
    query_counts: Sequence[int] = DEFAULT_QUERY_COUNTS,
    stream_length: int = 4_000,
    seed: int = 2012,
    algorithms: Optional[Sequence[str]] = None,
) -> Exp5Result:
    """Execute the query-count sweep."""
    algorithms = list(
        algorithms or available_algorithms(multi_query=True)
    )
    stream = debs12_array(stream_length, seed=seed)
    series: Dict[str, Dict[int, Optional[float]]] = {
        name: {} for name in algorithms
    }
    for count in query_counts:
        ranges = uniform_ranges(count, window, seed=seed + count)
        for name in algorithms:
            spec = get_algorithm(name)
            result = measure_multi_query(
                lambda: spec.multi(get_operator(operator_name), ranges),
                stream,
            )
            series[name][count] = result.per_second
    return Exp5Result(operator_name, window, query_counts, series)


def main(config: Optional[ExperimentConfig] = None) -> str:
    """Run Exp 5 for Sum and Max; return the rendered report."""
    del config  # sweep is self-contained; kept for CLI uniformity
    sections = []
    for operator_name in ("sum", "max"):
        result = run(operator_name)
        sections.append(result.table().render())
        slick = result.scaling_factor("slickdeque")
        naive = result.scaling_factor("naive")
        sections.append(
            f"throughput q=1 / q={max(result.query_counts)}: "
            f"slickdeque {slick:.1f}x, naive {naive:.1f}x"
        )
        sections.append("")
    return "\n".join(sections)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(main())
