"""Exp 4: memory requirement (paper Fig. 15).

"We again varied the window size from 1 tuple to 134 million tuples
(but also included window sizes that are not powers of two).  We
executed a query calculating the invertible Sum aggregation in the
first experiment, and the non-invertible Max aggregation in the
second.  We measured the maximum residential set size (RSS)."

This reproduction reports peak *logical words* (the Section 4.2
formulas; see DESIGN.md for the RSS substitution).  Shape claims:

* FlatFAT groups with B-Int (``2^⌈log n⌉·2``, sawtoothing up to 3n at
  non-powers of two);
* FlatFIT groups with TwoStacks and DABA (≈ 2n);
* Naive groups with SlickDeque (Inv) (n);
* SlickDeque (Non-Inv) sits below everything on real data — "2 times
  [less than Naive] on average with a maximum of 5 times".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.datasets.debs12 import debs12_array
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import Table, series_table
from repro.metrics.memory import peak_memory_words
from repro.operators.registry import get_operator
from repro.registry import available_algorithms, get_algorithm


@dataclass(frozen=True)
class Exp4Result:
    """Peak logical words per (operator, algorithm, window)."""

    sizes: Sequence[int]
    words: Dict[str, Dict[str, Dict[int, Optional[float]]]]

    def table(self, operator_name: str) -> Table:
        """Fig. 15's window × algorithm words table for one operator."""
        series = self.words[operator_name]
        return series_table(
            f"Fig. 15 (Exp 4): peak memory, {operator_name} — logical "
            "words (lower is better)",
            "window",
            list(self.sizes),
            series,
            list(series.keys()),
        )

    def noninv_gain_over_naive(self) -> Dict[int, float]:
        """Naive words / SlickDeque (Non-Inv) words per window (Max)."""
        naive = self.words["max"]["naive"]
        slick = self.words["max"]["slickdeque"]
        gains = {}
        for window in self.sizes:
            n, s = naive.get(window), slick.get(window)
            if n and s:
                gains[window] = n / s
        return gains


def run(
    config: Optional[ExperimentConfig] = None,
    algorithms: Optional[Sequence[str]] = None,
) -> Exp4Result:
    """Execute Exp 4 for Sum and Max."""
    config = config or ExperimentConfig()
    algorithms = list(algorithms or available_algorithms())
    words: Dict[str, Dict[str, Dict[int, Optional[float]]]] = {}
    for operator_name in ("sum", "max"):
        per_algorithm: Dict[str, Dict[int, Optional[float]]] = {
            name: {} for name in algorithms
        }
        for window in config.memory_sizes:
            stream = debs12_array(
                min(config.memory_tuples, 4 * window + 1000),
                seed=config.seed,
            )
            for name in algorithms:
                spec = get_algorithm(name)
                aggregator = spec.single(
                    get_operator(operator_name), window
                )
                per_algorithm[name][window] = float(
                    peak_memory_words(aggregator, stream)
                )
        words[operator_name] = per_algorithm
    return Exp4Result(config.memory_sizes, words)


def main(
    config: Optional[ExperimentConfig] = None, chart: bool = False
) -> str:
    """Run Exp 4; return the rendered report."""
    result = run(config)
    sections = []
    for operator_name in ("sum", "max"):
        sections.append(result.table(operator_name).render())
        if chart:
            from repro.experiments.figures import chart_series

            sections.append("")
            sections.append(
                chart_series(
                    list(result.sizes),
                    result.words[operator_name],
                    f"Fig. 15 (shape): peak memory, {operator_name} "
                    "(log-log; lower is better)",
                )
            )
        sections.append("")
    gains = result.noninv_gain_over_naive()
    if gains:
        average = sum(gains.values()) / len(gains)
        sections.append(
            "SlickDeque (Non-Inv) words vs Naive on Max: "
            f"{average:.1f}x less on average, "
            f"{max(gains.values()):.1f}x at most"
        )
    return "\n".join(sections)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(main())
