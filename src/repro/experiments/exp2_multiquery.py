"""Exp 2: max-multi-query throughput (paper Figs. 12 and 13).

"We ran a maximum number of queries calculating Sum [Fig. 12] / Max
[Fig. 13] value over the ranges from 1 to the window size after each
new tuple arrives."  Throughput is plan slides per second.

The paper's shape claims this module checks:

* SlickDeque best from window 4 upward, only marginally behind on
  windows 1-2;
* Sum: average ~45 % above the second best (max 60 %);
* Max: average ~266 % above the second best (max 345 %) — the paper's
  headline multi-query number;
* TwoStacks and DABA absent (no multi-query support, Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import (
    Table,
    improvement_summary,
    series_table,
)
from repro.experiments.runner import Series, sweep_multi_throughput
from repro.registry import available_algorithms

FIGURE = {"sum": "Fig. 12 (Exp 2a)", "max": "Fig. 13 (Exp 2b)"}


@dataclass(frozen=True)
class Exp2Result:
    """The measured multi-query sweep."""

    operator_name: str
    series: Series
    windows: Sequence[int]

    def table(self) -> Table:
        """The figure as a window × algorithm rate table."""
        title = (
            f"{FIGURE.get(self.operator_name, 'Exp 2')}: max-multi-query "
            f"throughput, {self.operator_name} — plan slides/second "
            "(higher is better; '-' = unsupported or capped)"
        )
        return series_table(
            title,
            "window",
            list(self.windows),
            self.series,
            list(self.series.keys()),
        )

    def headline(self) -> str:
        """The paper-style 'vs second best' summary sentence."""
        return improvement_summary(self.series, "slickdeque")


def run(
    operator_name: str = "sum",
    config: Optional[ExperimentConfig] = None,
    algorithms: Optional[Sequence[str]] = None,
) -> Exp2Result:
    """Execute the Exp 2 sweep for one operator."""
    config = config or ExperimentConfig()
    algorithms = list(
        algorithms or available_algorithms(multi_query=True)
    )
    series = sweep_multi_throughput(operator_name, algorithms, config)
    return Exp2Result(operator_name, series, config.multi_windows)


def main(
    config: Optional[ExperimentConfig] = None, chart: bool = False
) -> str:
    """Run both figures; return the rendered report."""
    sections = []
    for operator_name in ("sum", "max"):
        result = run(operator_name, config)
        sections.append(result.table().render())
        sections.append(result.headline())
        if chart:
            from repro.experiments.figures import chart_for_exp2

            sections.append("")
            sections.append(chart_for_exp2(result))
        sections.append("")
    return "\n".join(sections)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(main())
