"""Exp 1: single-query throughput (paper Figs. 10 and 11).

"We varied the window size from 1 to 134 million tuples where each
window is a power of two, and ran a query calculating the invertible
aggregation Sum [Fig. 10] / the non-invertible aggregation Max
[Fig. 11] over the entire window after each new tuple arrival."

The paper's shape claims this module checks:

* two behaviour groups — constant throughput (SlickDeque, FlatFIT,
  TwoStacks, DABA) vs steadily degrading (FlatFAT, B-Int, Naive);
* Sum: SlickDeque ~15 % above the second best on average (max 19 %),
  ahead from windows as small as 4 tuples;
* Max: SlickDeque ~7 % above the second best (max 10 %), ahead from
  ~16 tuples, with FlatFAT competitive only below 8 tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import (
    Table,
    improvement_summary,
    series_table,
)
from repro.experiments.runner import Series, sweep_single_throughput
from repro.registry import available_algorithms

#: Figure number per operator, for report titles.
FIGURE = {"sum": "Fig. 10 (Exp 1a)", "max": "Fig. 11 (Exp 1b)"}


@dataclass(frozen=True)
class Exp1Result:
    """The measured sweep plus derived headline statements."""

    operator_name: str
    series: Series
    windows: Sequence[int]

    def table(self) -> Table:
        """The figure as a window × algorithm rate table."""
        title = (
            f"{FIGURE.get(self.operator_name, 'Exp 1')}: single-query "
            f"throughput, {self.operator_name} — results/second "
            "(higher is better)"
        )
        return series_table(
            title,
            "window",
            list(self.windows),
            self.series,
            list(self.series.keys()),
        )

    def headline(self) -> str:
        """The paper-style 'vs second best' summary sentence."""
        return improvement_summary(self.series, "slickdeque")

    def constant_group(self, tolerance: float = 4.0) -> Sequence[str]:
        """Algorithms whose throughput is window-size independent.

        An algorithm is "constant" when its smallest-window rate is
        within ``tolerance``× of its largest-window rate — the paper's
        group (1) of Fig. 10.  Only windows ≥ 16 are compared, since
        tiny windows are dominated by fixed overheads.
        """
        constant = []
        for name, by_window in self.series.items():
            points = [
                rate
                for window, rate in sorted(by_window.items())
                if rate is not None and window >= 16
            ]
            if len(points) >= 2 and max(points) <= tolerance * min(points):
                constant.append(name)
        return constant


def run(
    operator_name: str = "sum",
    config: Optional[ExperimentConfig] = None,
    algorithms: Optional[Sequence[str]] = None,
) -> Exp1Result:
    """Execute the Exp 1 sweep for one operator."""
    config = config or ExperimentConfig()
    algorithms = list(algorithms or available_algorithms())
    series = sweep_single_throughput(operator_name, algorithms, config)
    return Exp1Result(operator_name, series, config.windows)


def main(
    config: Optional[ExperimentConfig] = None, chart: bool = False
) -> str:
    """Run both figures; return the rendered report."""
    sections = []
    for operator_name in ("sum", "max"):
        result = run(operator_name, config)
        sections.append(result.table().render())
        sections.append(result.headline())
        sections.append(
            "constant-throughput group: "
            + ", ".join(result.constant_group())
        )
        if chart:
            from repro.experiments.figures import chart_for_exp1

            sections.append("")
            sections.append(chart_for_exp1(result))
        sections.append("")
    return "\n".join(sections)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(main())
