"""Experiment harness: one module per paper table/figure.

* :mod:`repro.experiments.table1_complexity` — Table 1.
* :mod:`repro.experiments.exp1_throughput` — Figs. 10-11.
* :mod:`repro.experiments.exp2_multiquery` — Figs. 12-13.
* :mod:`repro.experiments.exp3_latency` — Fig. 14.
* :mod:`repro.experiments.exp4_memory` — Fig. 15.
* :mod:`repro.experiments.cli` — the ``repro-experiments`` entry point.
"""

from repro.experiments.config import (
    ExperimentConfig,
    memory_windows,
    power_of_two_windows,
)

__all__ = ["ExperimentConfig", "power_of_two_windows", "memory_windows"]
