"""Grid execution shared by the experiment modules.

Runs algorithm × window sweeps against the synthetic DEBS12 workload
and collects throughput, operation-count, latency, or memory results,
averaging over the paper's three energy readings ("all the results
were averaged over three independent runs ... aggregating three
different energy readings", Section 5.2).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.datasets.debs12 import debs12_array
from repro.experiments.config import ExperimentConfig
from repro.metrics.stats import geometric_mean
from repro.metrics.throughput import (
    measure_multi_query,
    measure_single_query,
)
from repro.operators.registry import get_operator
from repro.registry import get_algorithm

#: {algorithm: {window: value-or-None}} — the shape report.series_table eats.
Series = Dict[str, Dict[int, Optional[float]]]


def workload(
    config: ExperimentConfig, length: Optional[int] = None
) -> List[List[float]]:
    """The three energy-reading streams used by every experiment."""
    size = length if length is not None else config.stream_length
    return [
        debs12_array(size, reading=r, seed=config.seed) for r in range(3)
    ]


def sweep_single_throughput(
    operator_name: str,
    algorithms: Sequence[str],
    config: ExperimentConfig,
    progress: Optional[Callable[[str], None]] = None,
) -> Series:
    """Figs. 10-11 grid: single-query results/second."""
    streams = workload(config)
    series: Series = {name: {} for name in algorithms}
    for window in config.windows:
        for name in algorithms:
            spec = get_algorithm(name)
            rates = []
            for stream in streams:
                result = measure_single_query(
                    lambda: spec.single(
                        get_operator(operator_name), window
                    ),
                    stream,
                    repeats=config.repeats,
                )
                rates.append(result.per_second)
            series[name][window] = geometric_mean(rates)
            if progress is not None:
                progress(f"single {operator_name} w={window} {name}")
    return series


def sweep_multi_throughput(
    operator_name: str,
    algorithms: Sequence[str],
    config: ExperimentConfig,
    progress: Optional[Callable[[str], None]] = None,
) -> Series:
    """Figs. 12-13 grid: max-multi-query plan slides/second.

    Every window ``w`` registers ranges ``1..w`` ("queries calculating
    [the aggregate] over the ranges from 1 to the window size after
    each new tuple", Section 5.2).
    """
    streams = workload(config, config.multi_stream_length)
    series: Series = {name: {} for name in algorithms}
    for window in config.multi_windows:
        ranges = list(range(1, window + 1))
        for name in algorithms:
            spec = get_algorithm(name)
            if spec.multi is None:
                series[name][window] = None
                continue
            if (
                name == "naive"
                and config.naive_multi_cap is not None
                and window > config.naive_multi_cap
            ):
                series[name][window] = None
                continue
            rates = []
            for stream in streams:
                result = measure_multi_query(
                    lambda: spec.multi(
                        get_operator(operator_name), ranges
                    ),
                    stream,
                    repeats=config.repeats,
                )
                rates.append(result.per_second)
            series[name][window] = geometric_mean(rates)
            if progress is not None:
                progress(f"multi {operator_name} w={window} {name}")
    return series
