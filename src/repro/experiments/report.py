"""Fixed-width report rendering for the experiment harness.

The paper's figures are log-log line charts; a terminal reproduction
renders the same series as tables (one row per window size, one column
per algorithm) plus the derived headline ratios ("on average X% higher
than the second best ...").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.metrics.stats import geometric_mean


class Table:
    """A fixed-width text table."""

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, cells: Sequence[object]) -> None:
        """Append a row; cells are stringified."""
        self.rows.append([_format_cell(cell) for cell in cells])

    def to_csv(self) -> str:
        """The table as CSV (header row first, no title)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def to_json(self) -> str:
        """The table as a JSON object with title, headers, and rows."""
        import json

        return json.dumps(
            {
                "title": self.title,
                "headers": self.headers,
                "rows": self.rows,
            },
            indent=2,
        )

    def render(self) -> str:
        """The table as aligned text."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, ""]
        lines.append(
            "  ".join(
                h.rjust(w) for h, w in zip(self.headers, widths)
            )
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )
        return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def series_table(
    title: str,
    row_label: str,
    rows: Sequence[object],
    series: Dict[str, Dict[object, Optional[float]]],
    columns: Sequence[str],
) -> Table:
    """Build a table with one row per sweep point, one column per series.

    Args:
        title: Table heading.
        row_label: Header for the sweep column (e.g. ``"window"``).
        rows: Sweep points in display order.
        series: ``{column: {row: value or None}}``.
        columns: Column order.
    """
    table = Table(title, [row_label] + list(columns))
    for row in rows:
        table.add_row(
            [row] + [series.get(col, {}).get(row) for col in columns]
        )
    return table


def improvement_summary(
    series: Dict[str, Dict[object, Optional[float]]],
    subject: str,
    higher_is_better: bool = True,
) -> str:
    """Headline ratios in the paper's phrasing.

    Computes, per sweep point, how the ``subject`` algorithm compares
    to the best competitor, then reports the geometric-mean and maximum
    advantage — the paper's "on average N% ... with a maximum of M%".
    """
    gains: List[float] = []
    for row, value in series.get(subject, {}).items():
        if value is None:
            continue
        rivals = [
            other[row]
            for name, other in series.items()
            if name != subject and other.get(row) is not None
        ]
        if not rivals:
            continue
        best_rival = max(rivals) if higher_is_better else min(rivals)
        if best_rival <= 0 or value <= 0:
            continue
        gains.append(
            value / best_rival if higher_is_better else best_rival / value
        )
    if not gains:
        return f"{subject}: no comparable points"
    mean_gain = geometric_mean(gains)
    max_gain = max(gains)
    losing = sum(1 for g in gains if g < 1.0)
    return (
        f"{subject} vs best competitor: average {100 * (mean_gain - 1):+.0f}%"
        f", max {100 * (max_gain - 1):+.0f}%"
        f" ({losing}/{len(gains)} sweep points behind)"
    )
