"""Command-line entry point: ``repro-experiments`` / ``python -m``.

Regenerates any table or figure of the paper's evaluation::

    repro-experiments table1
    repro-experiments exp1 --scale default
    repro-experiments exp2 --scale quick
    repro-experiments exp3
    repro-experiments exp4
    repro-experiments all --scale quick
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    ablations,
    exp1_throughput,
    exp2_multiquery,
    exp3_latency,
    exp4_memory,
    exp5_query_scaling,
    table1_complexity,
    validate,
)
from repro.experiments.config import ExperimentConfig

_SCALES: Dict[str, Callable[[], ExperimentConfig]] = {
    "quick": ExperimentConfig.quick,
    "default": ExperimentConfig,
    "paper": ExperimentConfig.paper_scale,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of SlickDeque "
            "(EDBT 2018)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1", "exp1", "exp2", "exp3", "exp4", "exp5",
            "ablations", "validate", "all",
        ],
        help="which evaluation artifact to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="default",
        help="workload scale (quick ≈ seconds, paper ≈ hours)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=64,
        help="window size for the table1 validation",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="append ASCII log-log shape charts to exp1/exp2 reports",
    )
    parser.add_argument(
        "--out",
        type=str,
        default=None,
        help="also write the report to this file",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, run the experiment(s), print the report."""
    args = _build_parser().parse_args(argv)
    config = _SCALES[args.scale]()
    sections: List[str] = []
    if args.experiment in ("table1", "all"):
        sections.append(table1_complexity.main(window=args.window))
    if args.experiment in ("exp1", "all"):
        sections.append(exp1_throughput.main(config, chart=args.chart))
    if args.experiment in ("exp2", "all"):
        sections.append(exp2_multiquery.main(config, chart=args.chart))
    if args.experiment in ("exp3", "all"):
        sections.append(exp3_latency.main(config))
    if args.experiment in ("exp4", "all"):
        sections.append(exp4_memory.main(config, chart=args.chart))
    if args.experiment in ("exp5", "all"):
        sections.append(exp5_query_scaling.main(config))
    if args.experiment in ("ablations", "all"):
        sections.append(ablations.main())
    if args.experiment in ("validate", "all"):
        sections.append(validate.main(quick=args.scale == "quick"))
    report = "\n\n".join(sections)
    print(report)
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
