"""Ablation studies for the design choices DESIGN.md calls out.

Four studies, each isolating one mechanism:

* **chunk-size** — the §4.2 space formula ``2n + 4k + 4n/k`` over the
  chunk-size parameter, on a worst-case (deque-filling) input;
* **sharing** — shared-plan vs independent execution over overlapping
  ACQ sets (§2.3, Example 1), plus operator-level component sharing;
* **slicing** — Panes vs Pairs vs Cutty partial counts and Cutty's
  punctuation bandwidth overhead (§2.1);
* **adversarial** — SlickDeque (Non-Inv) occupancy and per-slide op
  profiles across input shapes (§4.1).

Each study returns a rendered :class:`~repro.experiments.report.Table`
and is also exercised as a pytest-benchmark in ``benchmarks/``.
"""

from __future__ import annotations

import math
import time
from typing import List

from repro.core.slickdeque_noninv import (
    ChunkedSlickDequeNonInv,
    SlickDequeNonInv,
)
from repro.datasets.adversarial import deque_filler, descending_stream
from repro.datasets.debs12 import debs12_array
from repro.datasets.synthetic import materialise, uniform
from repro.experiments.report import Table
from repro.metrics.opcount import count_ops
from repro.operators.noninvertible import MaxOperator
from repro.operators.registry import get_operator
from repro.stream.engine import StreamEngine
from repro.stream.punctuation import bandwidth_overhead, punctuate
from repro.windows.compatibility import AcqSpec, CompatibleSharedEngine
from repro.windows.plan import build_shared_plan
from repro.windows.query import Query
from repro.windows.slicing import edges_for


def chunk_size_study(window: int = 1024) -> Table:
    """Peak words vs chunk size on a permanently-full deque."""
    stream = list(descending_stream(3 * window))
    optimum = max(1, math.isqrt(window))
    table = Table(
        f"Ablation: chunk size k on a full deque (n={window}; "
        f"§4.2 optimum k=√n={optimum})",
        ["chunk size", "peak words", "vs 2n", "chunks at peak"],
    )
    for chunk_size in (1, 4, optimum // 2 or 1, optimum,
                       4 * optimum, window):
        aggregator = ChunkedSlickDequeNonInv(
            MaxOperator(), window, chunk_size=chunk_size
        )
        peak_words = 0
        peak_chunks = 0
        for value in stream:
            aggregator.push(value)
            words = aggregator.memory_words()
            if words > peak_words:
                peak_words = words
                peak_chunks = aggregator._chunked.chunk_count
        table.add_row(
            [chunk_size, peak_words, peak_words / (2 * window),
             peak_chunks]
        )
    return table


def sharing_study(tuples: int = 4000) -> Table:
    """Shared vs independent execution, and component sharing."""
    stream = debs12_array(tuples, seed=2012)
    table = Table(
        "Ablation: plan sharing (§2.3) — wall-clock per configuration",
        ["configuration", "seconds", "answers", "speedup vs unshared"],
    )
    queries = [Query(r, 4) for r in (8, 16, 32, 64, 128)]
    timings = {}
    for mode in ("independent", "shared"):
        engine = StreamEngine(queries, get_operator("max"), mode=mode)
        started = time.perf_counter()
        engine.run(stream)
        timings[mode] = time.perf_counter() - started
        table.add_row(
            [
                f"max x5 ACQs, {mode}",
                timings[mode],
                engine.answers_emitted,
                timings["independent"] / timings[mode],
            ]
        )
    # Operator-level sharing: Sum/Count/Mean/Variance from 3 engines.
    specs = [
        AcqSpec(Query(64, 4), "sum"),
        AcqSpec(Query(64, 4), "count"),
        AcqSpec(Query(64, 4), "mean"),
        AcqSpec(Query(64, 4), "variance"),
    ]
    shared_engine = CompatibleSharedEngine(specs)
    started = time.perf_counter()
    answers = sum(1 for _ in shared_engine.run(stream))
    shared_seconds = time.perf_counter() - started
    started = time.perf_counter()
    unshared_answers = 0
    for spec in specs:
        engine = StreamEngine(
            [spec.query], get_operator(spec.operator_name)
        )
        engine.run(stream)
        unshared_answers += engine.answers_emitted
    unshared_seconds = time.perf_counter() - started
    table.add_row(
        [
            f"sum/count/mean/var, "
            f"{shared_engine.plan.shared_component_count} components",
            shared_seconds,
            answers,
            unshared_seconds / shared_seconds,
        ]
    )
    return table


def slicing_study() -> Table:
    """Partials per cycle and punctuation overhead per technique."""
    queries = [Query(45, 6), Query(30, 10)]
    table = Table(
        "Ablation: slicing technique (§2.1) for ACQs "
        + ", ".join(q.name for q in queries),
        ["technique", "cycle", "partials/cycle", "punctuations/cycle",
         "bandwidth overhead"],
    )
    for technique in ("panes", "pairs"):
        plan = build_shared_plan(queries, technique)
        table.add_row(
            [technique, plan.cycle_length, plan.partials_per_cycle, 0,
             0.0]
        )
    cycle, edges = edges_for("cutty", queries)
    probe = list(punctuate([0] * cycle, queries))
    _, markers, overhead = bandwidth_overhead(probe)
    table.add_row(["cutty", cycle, len(edges), markers, overhead])
    return table


def adversarial_study(window: int = 256) -> Table:
    """SlickDeque (Non-Inv) profiles across input shapes (§4.1)."""
    slides = 4 * window
    shapes = {
        "ascending": list(range(slides)),
        "random": materialise(uniform(slides, seed=99)),
        "descending": list(range(slides, 0, -1)),
        "deque-filler": list(deque_filler(window, cycles=4)),
    }
    table = Table(
        f"Ablation: input shape for SlickDeque (Non-Inv), n={window}",
        ["input", "amortized ops", "worst slide ops",
         "final occupancy"],
    )
    for name, stream in shapes.items():
        profile = count_ops(
            lambda op: SlickDequeNonInv(op, window),
            MaxOperator(),
            stream,
        )
        aggregator = SlickDequeNonInv(MaxOperator(), window)
        for value in stream:
            aggregator.push(value)
        table.add_row(
            [name, profile.amortized, profile.worst_case,
             aggregator.occupancy]
        )
    return table


def main() -> str:
    """Run all four studies; return the rendered report."""
    return "\n\n".join(
        [
            chunk_size_study().render(),
            sharing_study().render(),
            slicing_study().render(),
            adversarial_study().render(),
        ]
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(main())
