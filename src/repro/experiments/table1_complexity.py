"""Table 1: empirical validation of the complexity analysis (§4.1-4.2).

The paper's Table 1 gives, per algorithm, the amortized and worst-case
aggregate operations per slide (single-query and max-multi-query) and
the space complexity.  This module *measures* all of those on a random
stream and prints them next to the theoretical expressions, using the
:class:`~repro.operators.instrumented.CountingOperator` metric the
paper itself defines ("the number of aggregate operations it performs
per slide").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.datasets.synthetic import materialise, uniform
from repro.experiments.report import Table
from repro.metrics.opcount import OpCountResult, count_ops
from repro.operators.instrumented import CountingOperator
from repro.operators.registry import get_operator
from repro.registry import available_algorithms, get_algorithm

#: Theoretical entries, single-query: (amortized, worst) as text.
THEORY_SINGLE = {
    "naive": ("n-1", "n-1"),
    "flatfat": ("log n", "log n"),
    "bint": ("~2 log n", "~2 log n"),
    "flatfit": ("3", "n"),
    "twostacks": ("3", "n"),
    "daba": ("5", "8"),
    "slickdeque": ("2 (inv) / <2 (non-inv)", "2 (inv) / n (non-inv)"),
}

#: Theoretical space, in words, as text (Section 4.2).
THEORY_SPACE = {
    "naive": "n",
    "flatfat": "2^ceil(log n) * 2",
    "bint": "2^ceil(log n) * 2",
    "flatfit": "2n",
    "twostacks": "2n",
    "daba": "2n + 4 sqrt(n)",
    "slickdeque": "n+1 (inv) / <=2n+4 sqrt(n) (non-inv)",
}


@dataclass(frozen=True)
class Table1Result:
    """Measured per-slide op profiles for one window size."""

    window: int
    single: Dict[str, Dict[str, OpCountResult]]  # op -> algorithm -> res.
    multi: Dict[str, Dict[str, OpCountResult]]
    space_words: Dict[str, Dict[str, int]]

    def table(self) -> Table:
        """Table 1 with measured and theoretical columns side by side."""
        table = Table(
            f"Table 1 (measured, window n={self.window}, random input): "
            "aggregate operations per slide and space words",
            [
                "algorithm",
                "sum amort",
                "sum worst",
                "max amort",
                "max worst",
                "multi-sum amort",
                "multi-max amort",
                "space(sum)",
                "theory amort/worst",
            ],
        )
        for name in self.single["sum"]:
            single_sum = self.single["sum"][name]
            single_max = self.single["max"][name]
            multi_sum = self.multi["sum"].get(name)
            multi_max = self.multi["max"].get(name)
            theory = THEORY_SINGLE.get(name, ("?", "?"))
            table.add_row(
                [
                    name,
                    single_sum.amortized,
                    single_sum.worst_case,
                    single_max.amortized,
                    single_max.worst_case,
                    multi_sum.amortized if multi_sum else None,
                    multi_max.amortized if multi_max else None,
                    self.space_words["sum"][name],
                    f"{theory[0]} / {theory[1]}",
                ]
            )
        return table


def run(
    window: int = 64,
    slides: int = 4096,
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 7,
) -> Table1Result:
    """Measure every algorithm's op and space profile at one window."""
    algorithms = list(algorithms or available_algorithms())
    stream = materialise(uniform(slides + 2 * window, seed=seed))
    warmup = 2 * window
    single: Dict[str, Dict[str, OpCountResult]] = {"sum": {}, "max": {}}
    multi: Dict[str, Dict[str, OpCountResult]] = {"sum": {}, "max": {}}
    space: Dict[str, Dict[str, int]] = {"sum": {}, "max": {}}
    ranges = list(range(1, window + 1))
    for operator_name in ("sum", "max"):
        for name in algorithms:
            spec = get_algorithm(name)
            result = count_ops(
                lambda op: spec.single(op, window),
                get_operator(operator_name),
                stream,
            )
            single[operator_name][name] = result.steady_state(warmup)
            aggregator = spec.single(get_operator(operator_name), window)
            for value in stream:
                aggregator.push(value)
            space[operator_name][name] = aggregator.memory_words()
            if spec.multi is not None:
                multi_result = count_ops(
                    lambda op: spec.multi(op, ranges),
                    get_operator(operator_name),
                    stream,
                )
                multi[operator_name][name] = multi_result.steady_state(
                    warmup
                )
    return Table1Result(window, single, multi, space)


def expected_amortized(name: str, operator_name: str, window: int) -> float:
    """Upper bound on steady-state amortized ops (tests assert these)."""
    log_n = max(1.0, math.log2(window))
    bounds = {
        "naive": window,
        "flatfat": log_n + 1,
        "bint": 2 * log_n + 2,
        "flatfit": 3.5,
        "twostacks": 3.5,
        "daba": 5.5,
        "slickdeque": 2.01,
    }
    return bounds[name]


def main(window: int = 64) -> str:
    """Run the Table 1 validation; return the rendered report."""
    return run(window).table().render()


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(main())
