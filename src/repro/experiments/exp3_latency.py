"""Exp 3: query-processing latency (paper Fig. 14).

"We fixed our window size at 1024 tuples and ran all algorithms on the
first million tuples of the DEBS data set while recording how long it
took to return an answer to each query.  We executed a single query
processing Sum (invertible) in the first test, and Max (non-invertible)
in the second ...  We dropped the highest 0.005% latencies from all
algorithms as outliers."

Reported categories (Fig. 14): Min, 25th percentile, Median, Average,
75th percentile, Max.  The paper's shape claims: both SlickDeque
versions lowest in every category; TwoStacks and FlatFIT show the big
max-latency spikes (their O(n) steps); DABA's max is low but above
SlickDeque's (the 283 % headline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.datasets.debs12 import debs12_array
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import Table
from repro.metrics.latency import measure_step_latencies
from repro.metrics.stats import Summary
from repro.operators.registry import get_operator
from repro.registry import available_algorithms, get_algorithm

CATEGORIES = ("min", "p25", "median", "mean", "p75", "max")


@dataclass(frozen=True)
class Exp3Result:
    """Latency summaries per (operator, algorithm), in nanoseconds."""

    window: int
    tuples: int
    summaries: Dict[str, Dict[str, Summary]]  # operator -> algorithm -> s.

    def table(self, operator_name: str) -> Table:
        """Fig. 14's category table for one operator."""
        table = Table(
            f"Fig. 14 (Exp 3): per-answer latency, {operator_name}, "
            f"window={self.window}, {self.tuples} tuples — nanoseconds "
            "(lower is better)",
            ["algorithm"] + [c for c in CATEGORIES],
        )
        for name, summary in self.summaries[operator_name].items():
            table.add_row(
                [
                    name,
                    summary.minimum,
                    summary.p25,
                    summary.median,
                    summary.mean,
                    summary.p75,
                    summary.maximum,
                ]
            )
        return table

    def max_latency_ratio(
        self, operator_name: str, baseline: str = "daba"
    ) -> float:
        """``baseline``'s max-latency spike over SlickDeque's.

        The paper: "SlickDeque outperformed the second best DABA
        algorithm by 283% on average in terms of the lowest max latency
        spike."
        """
        ours = self.summaries[operator_name]["slickdeque"].maximum
        theirs = self.summaries[operator_name][baseline].maximum
        return theirs / ours if ours else float("inf")


def run(
    config: Optional[ExperimentConfig] = None,
    algorithms: Optional[Sequence[str]] = None,
) -> Exp3Result:
    """Execute Exp 3 for Sum and Max."""
    config = config or ExperimentConfig()
    algorithms = list(algorithms or available_algorithms())
    stream = debs12_array(config.latency_tuples, seed=config.seed)
    summaries: Dict[str, Dict[str, Summary]] = {}
    for operator_name in ("sum", "max"):
        per_algorithm: Dict[str, Summary] = {}
        for name in algorithms:
            spec = get_algorithm(name)
            aggregator = spec.single(
                get_operator(operator_name), config.latency_window
            )
            recorder = measure_step_latencies(aggregator, stream)
            per_algorithm[name] = recorder.summary()
        summaries[operator_name] = per_algorithm
    return Exp3Result(
        config.latency_window, config.latency_tuples, summaries
    )


def spike_structure_table(
    window: int = 128, slides: int = 4096
) -> Table:
    """Why the max-latency spikes happen: per-slide ⊕ structure.

    Complements the wall-clock percentiles with the §4.1 explanation:
    each algorithm's per-slide operation series, its spike period, and
    its worst slide, measured on the same workload shape.
    """
    from repro.datasets.synthetic import materialise, uniform
    from repro.metrics.opcount import count_ops
    from repro.metrics.spikes import SpikeProfile

    stream = materialise(uniform(slides + 2 * window, seed=11))
    table = Table(
        f"Exp 3 companion: per-slide ⊕ structure at window {window} "
        "(the source of each algorithm's latency spikes)",
        ["algorithm", "amortized ops", "worst slide", "spike period",
         "periodic"],
    )
    for name in available_algorithms():
        spec = get_algorithm(name)
        profile = count_ops(
            lambda op: spec.single(op, window),
            get_operator("sum"),
            stream,
        ).steady_state(2 * window)
        spikes = SpikeProfile.of(list(profile.per_slide))
        table.add_row(
            [
                name,
                profile.amortized,
                profile.worst_case,
                spikes.period,
                "yes" if spikes.periodic else "no",
            ]
        )
    return table


def main(config: Optional[ExperimentConfig] = None) -> str:
    """Run Exp 3; return the rendered report."""
    result = run(config)
    sections = []
    for operator_name in ("sum", "max"):
        sections.append(result.table(operator_name).render())
        ratio = result.max_latency_ratio(operator_name)
        sections.append(
            f"max-latency spike, DABA / SlickDeque ({operator_name}): "
            f"{ratio:.2f}x"
        )
        sections.append("")
    sections.append(spike_structure_table().render())
    return "\n".join(sections)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(main())
