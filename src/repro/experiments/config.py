"""Experiment configuration (paper Section 5.1 workload parameters).

The paper sweeps windows from 1 tuple to 134 million tuples over a
134 M-tuple stream on a C++ platform.  The defaults here are scaled to
CPython so the full suite finishes in minutes while covering every
regime the paper's figures show (the crossovers it highlights happen at
windows of 4-16 tuples; the constant-vs-log/linear separation is
obvious well before 2^12).  Every knob scales up for longer runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


def power_of_two_windows(max_exponent: int) -> Tuple[int, ...]:
    """Window sizes ``1, 2, 4, ..., 2^max_exponent`` (paper Exps 1-2)."""
    return tuple(1 << e for e in range(max_exponent + 1))


def memory_windows(max_exponent: int) -> Tuple[int, ...]:
    """Powers of two *and* in-between sizes (paper Exp 4 "also included
    window sizes that are not powers of two")."""
    sizes = []
    for e in range(max_exponent + 1):
        sizes.append(1 << e)
        if e >= 2:
            sizes.append((1 << e) + (1 << (e - 1)))  # 1.5 × 2^e
    return tuple(sorted(set(sizes)))


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for the figure/table reproductions.

    Attributes:
        windows: Window sizes for the single-query sweeps (Figs. 10-11).
        multi_windows: Window sizes for the max-multi-query sweeps
            (Figs. 12-13); Naive is quadratic per slide, so this sweep
            is shorter by default.
        stream_length: Tuples per throughput measurement.
        multi_stream_length: Tuples per multi-query measurement.
        latency_window: Fixed window of Exp 3 (paper: 1024).
        latency_tuples: Stream length of Exp 3 (paper: first 1 M tuples;
            scaled down by default).
        memory_sizes: Window sizes of Exp 4, including non-powers of 2.
        memory_tuples: Tuples streamed per memory measurement (enough
            to pass the largest window and reach steady state).
        seed: Dataset seed (three readings ↔ three seeds offsets in the
            paper's averaging; :func:`readings` drives that).
        repeats: Timing repetitions (best-of).
        naive_multi_cap: Largest window Naive runs in the multi sweep
            (``None`` = no cap); its O(n²) slides dominate runtime.
    """

    windows: Tuple[int, ...] = field(
        default_factory=lambda: power_of_two_windows(12)
    )
    multi_windows: Tuple[int, ...] = field(
        default_factory=lambda: power_of_two_windows(8)
    )
    stream_length: int = 20_000
    multi_stream_length: int = 4_000
    latency_window: int = 1024
    latency_tuples: int = 100_000
    memory_sizes: Tuple[int, ...] = field(
        default_factory=lambda: memory_windows(12)
    )
    memory_tuples: int = 20_000
    seed: int = 2012
    repeats: int = 1
    naive_multi_cap: Optional[int] = 256

    @staticmethod
    def quick() -> "ExperimentConfig":
        """A seconds-scale configuration for tests and CI."""
        return ExperimentConfig(
            windows=power_of_two_windows(6),
            multi_windows=power_of_two_windows(5),
            stream_length=2_000,
            multi_stream_length=600,
            latency_window=128,
            latency_tuples=5_000,
            memory_sizes=memory_windows(6),
            memory_tuples=2_000,
            naive_multi_cap=64,
        )

    @staticmethod
    def paper_scale() -> "ExperimentConfig":
        """As close to the paper's sweep as Python wall-clock allows."""
        return ExperimentConfig(
            windows=power_of_two_windows(20),
            multi_windows=power_of_two_windows(10),
            stream_length=200_000,
            multi_stream_length=20_000,
            latency_window=1024,
            latency_tuples=1_000_000,
            memory_sizes=memory_windows(20),
            memory_tuples=100_000,
            repeats=3,
            naive_multi_cap=512,
        )
