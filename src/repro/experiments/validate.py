"""Claims validator: programmatic PASS/FAIL for the paper's claims.

``repro-experiments validate`` re-measures every checkable headline
claim of the paper on this machine and reports each as PASS or FAIL
with the measured evidence — the reproduction's self-test.  Where a
claim is about wall-clock ratios the check is directional (who wins),
not numeric (the paper's 15 % was measured on a C++ testbed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.datasets.adversarial import deque_filler
from repro.datasets.debs12 import debs12_array
from repro.datasets.synthetic import materialise, uniform
from repro.metrics.latency import measure_step_latencies
from repro.metrics.memory import peak_memory_words
from repro.metrics.opcount import count_ops
from repro.metrics.spikes import SpikeProfile
from repro.operators.registry import get_operator
from repro.registry import available_algorithms, get_algorithm

WINDOW = 64
LATENCY_WINDOW = 256


@dataclass(frozen=True)
class Claim:
    """One verified paper claim."""

    identifier: str
    statement: str
    passed: bool
    evidence: str


def _ops(algorithm: str, operator_name: str, stream, window=WINDOW):
    spec = get_algorithm(algorithm)
    return count_ops(
        lambda op: spec.single(op, window),
        get_operator(operator_name),
        stream,
    ).steady_state(2 * window)


def _throughput(algorithm: str, operator_name: str, stream, window):
    import gc

    spec = get_algorithm(algorithm)
    best = 0.0
    gc_was_enabled = gc.isenabled()
    gc.disable()  # GC pauses are noise for a relative-rate comparison
    try:
        for _ in range(3):  # best-of-3: shrug off scheduler contention
            aggregator = spec.single(
                get_operator(operator_name), window
            )
            step = aggregator.step
            started = time.perf_counter()
            for value in stream:
                step(value)
            rate = len(stream) / (time.perf_counter() - started)
            best = max(best, rate)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def check_all(quick: bool = False) -> List[Claim]:
    """Run every claim check; return the verdicts."""
    claims: List[Claim] = []
    slides = 2_000 if quick else 10_000
    random_stream = materialise(uniform(slides + 2 * WINDOW, seed=3))
    energy = debs12_array(slides, seed=2012)

    def add(identifier: str, statement: str,
            check: Callable[[], Tuple[bool, str]]) -> None:
        passed, evidence = check()
        claims.append(Claim(identifier, statement, passed, evidence))

    # --- Table 1 / §4.1 complexity claims -------------------------------
    def c1():
        profile = _ops("slickdeque", "sum", random_stream)
        return (
            profile.amortized == 2.0 and profile.worst_case == 2,
            f"amortized={profile.amortized}, worst={profile.worst_case}",
        )
    add("C1", "SlickDeque (Inv) costs exactly 2 ops per slide", c1)

    def c2():
        profile = _ops("slickdeque", "max", random_stream)
        return (
            profile.amortized < 2.0,
            f"amortized={profile.amortized:.3f}",
        )
    add("C2", "SlickDeque (Non-Inv) amortized ops < 2 on random input",
        c2)

    def c3():
        profile = _ops("daba", "sum", random_stream)
        return (
            profile.worst_case <= 8,
            f"worst={profile.worst_case}, "
            f"amortized={profile.amortized:.2f}",
        )
    add("C3", "DABA's worst-case slide costs at most 8 ops", c3)

    def c4():
        profile = _ops("twostacks", "sum", random_stream)
        spikes = SpikeProfile.of(list(profile.per_slide))
        return (
            profile.amortized < 3.5
            and profile.worst_case >= WINDOW
            and spikes.periodic
            and spikes.period == WINDOW,
            f"amortized={profile.amortized:.2f}, "
            f"worst={profile.worst_case}, period={spikes.period}",
        )
    add("C4", "TwoStacks: amortized 3 with an n-op flip every n slides",
        c4)

    def c5():
        profile = _ops("flatfit", "sum", random_stream)
        return (
            profile.amortized < 3.5
            and profile.worst_case == WINDOW - 1,
            f"amortized={profile.amortized:.2f}, "
            f"worst={profile.worst_case}",
        )
    add("C5", "FlatFIT: amortized 3 with an (n-1)-op window reset", c5)

    def c6():
        filler = list(deque_filler(WINDOW, cycles=3))
        profile = count_ops(
            lambda op: get_algorithm("slickdeque").single(op, WINDOW),
            get_operator("max"),
            filler,
        )
        return (
            profile.worst_case >= WINDOW - 1
            and profile.amortized <= 2.0,
            f"worst={profile.worst_case} on the 1-in-n! input, "
            f"amortized={profile.amortized:.2f}",
        )
    add("C6", "SlickDeque (Non-Inv) worst case n exists but stays "
        "amortized ≤ 2 (§4.1)", c6)

    # --- §4.2 / Fig. 15 space claims ------------------------------------
    def c7():
        naive = peak_memory_words(
            get_algorithm("naive").single(get_operator("sum"), WINDOW),
            energy,
        )
        slick = peak_memory_words(
            get_algorithm("slickdeque").single(
                get_operator("sum"), WINDOW
            ),
            energy,
        )
        two = peak_memory_words(
            get_algorithm("twostacks").single(
                get_operator("sum"), WINDOW
            ),
            energy,
        )
        return (
            naive == WINDOW and slick == WINDOW + 1
            and two == 2 * WINDOW,
            f"naive={naive}, slickdeque(inv)={slick}, "
            f"twostacks={two}",
        )
    add("C7", "Space: Naive n, SlickDeque (Inv) n+1, TwoStacks 2n",
        c7)

    def c8():
        window = 1024
        slick = peak_memory_words(
            get_algorithm("slickdeque").single(
                get_operator("max"), window
            ),
            debs12_array(4 * window, seed=7),
        )
        return (
            slick * 2 < window,
            f"non-inv peak {slick} words vs naive {window} "
            f"({window / slick:.1f}x less)",
        )
    add("C8", "SlickDeque (Non-Inv) uses ≥2x less memory than Naive "
        "on real-shaped data", c8)

    # --- Figs. 10-14 performance-shape claims ----------------------------
    def c9():
        window = 1024
        rates = {
            name: _throughput(name, "sum", energy, window)
            for name in available_algorithms()
        }
        best = max(rates, key=rates.get)
        return (best == "slickdeque",
                ", ".join(f"{n}={r:,.0f}/s" for n, r in
                          sorted(rates.items(), key=lambda kv: -kv[1])))
    add("C9", "Single-query Sum throughput leader at large windows is "
        "SlickDeque (Fig. 10)", c9)

    def c10():
        window = 1024
        rates = {
            name: _throughput(name, "max", energy, window)
            for name in available_algorithms()
        }
        best = max(rates, key=rates.get)
        return (best == "slickdeque",
                ", ".join(f"{n}={r:,.0f}/s" for n, r in
                          sorted(rates.items(), key=lambda kv: -kv[1])))
    add("C10", "Single-query Max throughput leader at large windows is "
        "SlickDeque (Fig. 11)", c10)

    def c11():
        import gc

        maxima = {}
        for name in ("twostacks", "daba", "slickdeque"):
            spec = get_algorithm(name)
            # Best-of-3 maxima with the cyclic GC paused: an
            # algorithm's *structural* spike (flip, sweep) recurs
            # every run, while one-off scheduler/GC pauses do not —
            # the min over repeats isolates the former.
            observed = []
            for _ in range(3):
                aggregator = spec.single(
                    get_operator("sum"), LATENCY_WINDOW
                )
                gc_was_enabled = gc.isenabled()
                gc.disable()
                try:
                    recorder = measure_step_latencies(
                        aggregator, energy
                    )
                finally:
                    if gc_was_enabled:
                        gc.enable()
                observed.append(recorder.summary().maximum)
            maxima[name] = min(observed)
        # The headline is SlickDeque's flatness; the DABA < TwoStacks
        # sub-ordering is reported as evidence but can jitter on a
        # noisy host, so it does not gate the verdict.
        return (
            maxima["slickdeque"] < maxima["daba"]
            and maxima["slickdeque"] < maxima["twostacks"],
            ", ".join(f"{n} max={v:,.0f}ns" for n, v in maxima.items()),
        )
    add("C11", "Max-latency spike: SlickDeque below DABA and "
        "TwoStacks (Fig. 14)", c11)

    def c12():
        ranges = list(range(1, WINDOW + 1))
        multi_profiles = {}
        for name in available_algorithms(multi_query=True):
            spec = get_algorithm(name)
            multi_profiles[name] = count_ops(
                lambda op: spec.multi(op, ranges),
                get_operator("max"),
                random_stream[: 6 * WINDOW],
            ).steady_state(2 * WINDOW).amortized
        slick = multi_profiles.pop("slickdeque")
        return (
            all(slick < other for other in multi_profiles.values()),
            f"slickdeque={slick:.2f} vs "
            + ", ".join(f"{n}={v:.1f}" for n, v in
                        multi_profiles.items()),
        )
    add("C12", "Max-multi-query op cost: SlickDeque below every "
        "competitor (Figs. 12-13)", c12)

    def c13():
        supported = set(available_algorithms(multi_query=True))
        return (
            "twostacks" not in supported and "daba" not in supported,
            f"multi-query capable: {sorted(supported)}",
        )
    add("C13", "TwoStacks and DABA do not support multi-query "
        "execution (§2.2)", c13)

    def c14():
        from repro.metrics.complexity_fit import (
            classify_algorithm_time,
        )

        windows = (32, 64, 128, 256) if quick else (32, 64, 128, 256,
                                                    512)
        expected = {
            "naive": "n",
            "flatfat": "log n",
            "slickdeque": "1",
            "daba": "1",
        }
        fits = {
            name: classify_algorithm_time(
                name, "sum", windows=windows
            ).model
            for name in expected
        }
        return (
            fits == expected,
            ", ".join(f"{n}: O({m})" for n, m in fits.items()),
        )
    add("C14", "Fitted growth classes match Table 1's asymptotic "
        "columns", c14)

    return claims


def render(claims: List[Claim]) -> str:
    """Human-readable verdict listing."""
    lines = ["Paper-claims validation", ""]
    width = max(len(c.statement) for c in claims)
    for claim in claims:
        verdict = "PASS" if claim.passed else "FAIL"
        lines.append(
            f"[{verdict}] {claim.identifier:>4}  "
            f"{claim.statement:<{width}}  ({claim.evidence})"
        )
    passed = sum(c.passed for c in claims)
    lines.append("")
    lines.append(f"{passed}/{len(claims)} claims reproduced")
    return "\n".join(lines)


def main(quick: bool = False) -> str:
    """Run the validator; return the rendered report."""
    return render(check_all(quick=quick))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(main())
