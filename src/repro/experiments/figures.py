"""ASCII figure rendering: the paper's log-log charts, in a terminal.

The evaluation figures are log-log line charts (throughput or memory
vs window size).  :func:`ascii_chart` renders the same series as a
character plot — one letter per algorithm, logarithmic axes — so
``repro-experiments`` output can show the *shape* (flat vs degrading
curves, crossovers) at a glance, next to the exact tables.

Pure text, no plotting dependencies, deterministic output.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

#: Fallback plot glyphs for names whose letters are all taken.
GLYPHS = "0123456789#@%&+="


def _assign_glyphs(names: Sequence[str]) -> Dict[str, str]:
    """One distinctive character per series, preferring its initials.

    ``slickdeque`` → ``S``, ``naive`` → ``N``, and when two names
    share every candidate letter the second falls back to lowercase
    and then to a numeral pool — always unique, always deterministic.
    """
    assigned: Dict[str, str] = {}
    taken = set()
    for name in names:
        candidates = [c.upper() for c in name if c.isalnum()]
        candidates += [c.lower() for c in name if c.isalnum()]
        candidates += list(GLYPHS)
        for candidate in candidates:
            if candidate not in taken:
                assigned[name] = candidate
                taken.add(candidate)
                break
    return assigned


def _log(value: float) -> float:
    return math.log10(value) if value > 0 else 0.0


def ascii_chart(
    series: Dict[str, Dict[int, Optional[float]]],
    title: str,
    width: int = 64,
    height: int = 16,
    x_label: str = "window (log)",
    y_label: str = "rate (log)",
) -> str:
    """Render a log-log character chart of ``{name: {x: y}}`` series.

    Points from different series that collide on the same cell show
    ``*``.  Series order determines glyph assignment; the legend maps
    glyphs back to names.
    """
    glyphs = _assign_glyphs(list(series))
    points: List = []
    for name, by_x in series.items():
        glyph = glyphs[name]
        for x, y in by_x.items():
            if y is not None and y > 0 and x > 0:
                points.append((glyph, _log(x), _log(y)))
    if not points:
        return f"{title}\n(no data)"

    x_low = min(p[1] for p in points)
    x_high = max(p[1] for p in points)
    y_low = min(p[2] for p in points)
    y_high = max(p[2] for p in points)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, x, y in points:
        column = round((x - x_low) / x_span * (width - 1))
        row = height - 1 - round((y - y_low) / y_span * (height - 1))
        cell = grid[row][column]
        grid[row][column] = glyph if cell in (" ", glyph) else "*"

    lines = [title, ""]
    top = f"10^{y_high:.1f}"
    bottom = f"10^{y_low:.1f}"
    margin = max(len(top), len(bottom)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top
        elif row_index == height - 1:
            label = bottom
        else:
            label = ""
        lines.append(f"{label:>{margin}} |" + "".join(row))
    lines.append(" " * margin + "-" * (width + 2))
    axis = f"10^{x_low:.1f}"
    axis_end = f"10^{x_high:.1f}"
    lines.append(
        " " * margin
        + f" {axis}{' ' * max(1, width - len(axis) - len(axis_end))}"
        f"{axis_end}  {x_label}"
    )
    legend = "  ".join(
        f"{glyphs[name]}={name}" for name in series
    )
    lines.append(f"{'':>{margin}} {legend}   [y: {y_label}]")
    return "\n".join(lines)


def chart_for_exp1(result) -> str:
    """Chart an :class:`~repro.experiments.exp1_throughput.Exp1Result`."""
    return ascii_chart(
        result.series,
        f"Fig. {'10' if result.operator_name == 'sum' else '11'} "
        f"(shape): single-query throughput, {result.operator_name}",
    )


def chart_for_exp2(result) -> str:
    """Chart an :class:`~repro.experiments.exp2_multiquery.Exp2Result`."""
    return ascii_chart(
        result.series,
        f"Fig. {'12' if result.operator_name == 'sum' else '13'} "
        f"(shape): max-multi-query throughput, {result.operator_name}",
    )


def chart_series(
    rows: Sequence[int],
    series: Dict[str, Dict[int, Optional[float]]],
    title: str,
) -> str:
    """Chart any row-indexed series dict (e.g. Exp 4 memory curves)."""
    del rows  # the chart derives its own axes from the data
    return ascii_chart(series, title)
