"""Name → operator registry used by examples, experiments, and the CLI.

Factories (not singletons) are registered so every lookup returns a
fresh operator instance; stateful wrappers such as
:class:`~repro.operators.instrumented.CountingOperator` then never leak
counts between runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import UnknownOperatorError
from repro.kernels import attach as _attach_kernel
from repro.operators.algebraic import (
    geometric_mean_operator,
    mean_operator,
    range_operator,
    stddev_operator,
    variance_operator,
)
from repro.operators.base import AggregateOperator
from repro.operators.positional import FirstOperator, LastOperator
from repro.operators.boolean import (
    BitAndOperator,
    BitOrOperator,
    BoolAllOperator,
    BoolAnyOperator,
)
from repro.operators.invertible import (
    CountOperator,
    IntProductOperator,
    ProductOperator,
    SumOfSquaresOperator,
    SumOperator,
)
from repro.operators.noninvertible import (
    AlphabeticalMaxOperator,
    MaxOperator,
    MinOperator,
    argmax_of_cosine,
    argmin_of_square,
)

_FACTORIES: Dict[str, Callable[[], AggregateOperator]] = {}


def register_operator(
    name: str, factory: Callable[[], AggregateOperator]
) -> None:
    """Register ``factory`` under ``name`` (overwrites silently).

    Exposed publicly so downstream users can plug their own aggregate
    operations into the experiment CLI and examples.
    """
    _FACTORIES[name] = factory


def get_operator(name: str) -> AggregateOperator:
    """Instantiate the operator registered under ``name``.

    The instance comes back with its batch kernel already resolved and
    cached (:func:`repro.kernels.attach`), so bulk-ingestion dispatch
    never pays kernel selection on the hot path.

    Raises:
        UnknownOperatorError: when ``name`` has no registered factory.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise UnknownOperatorError(
            f"unknown operator {name!r}; known operators: {known}"
        ) from None
    return _attach_kernel(factory())


def available_operators() -> List[str]:
    """Sorted names of every registered operator."""
    return sorted(_FACTORIES)


register_operator("sum", SumOperator)
register_operator("count", CountOperator)
register_operator("sum_of_squares", SumOfSquaresOperator)
register_operator("product", ProductOperator)
register_operator("int_product", IntProductOperator)
register_operator("max", MaxOperator)
register_operator("min", MinOperator)
register_operator("alpha_max", AlphabeticalMaxOperator)
register_operator("argmax_cos", argmax_of_cosine)
register_operator("argmin_x2", argmin_of_square)
register_operator("mean", mean_operator)
register_operator("variance", variance_operator)
register_operator("stddev", stddev_operator)
register_operator("geometric_mean", geometric_mean_operator)
register_operator("range", range_operator)
register_operator("bool_all", BoolAllOperator)
register_operator("bool_any", BoolAnyOperator)
register_operator("bit_and", BitAndOperator)
register_operator("bit_or", BitOrOperator)
register_operator("first", FirstOperator)
register_operator("last", LastOperator)
