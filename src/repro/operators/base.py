"""Aggregate-operator protocol (paper Section 3.1).

The paper classifies aggregations as *distributive*, *algebraic*, or
*holistic*, and further splits distributive operations by their
mathematical properties: associativity (required by every algorithm in
the paper, including SlickDeque), invertibility (the property SlickDeque
dispatches on), and commutativity (not required).

An operator here is a monoid-with-extras over *aggregate values*:

``identity``
    The neutral element (``initVal`` in Algorithm 1): ``combine(identity,
    x) == x == combine(x, identity)``.

``combine(a, b)``
    The associative operation ``⊕``.  Order is significant: ``a`` is
    always the *older* aggregate, ``b`` the newer one, so non-commutative
    operators work throughout the library.

``lift(value)`` / ``lower(agg)``
    Conversion between raw stream values and aggregate values.  For
    plain distributive operators both are the identity function; for
    algebraic operators (Mean, StdDev, ...) ``lift`` builds the tuple of
    distributive components and ``lower`` finalises it (Section 3.1:
    "calculating the algebraic aggregations follows trivially").

Invertible operators additionally expose ``inverse(a, b)`` — the ``⊖``
of Algorithm 1 — satisfying ``inverse(combine(a, b), b) == a``.

Selection-type non-invertible operators (Max, Min, ArgMax, ...) satisfy
the paper's note that for non-invertible ⊕, ``x ⊕ y ∈ {x, y}``; the
:meth:`AggregateOperator.selects` flag marks them, and it is what makes
the SlickDeque (Non-Inv) deque answers exact element values.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable

from repro.errors import InvalidOperatorError

#: Type alias for aggregate values.  Aggregates are intentionally
#: untyped: numbers for Sum/Max, tuples for algebraic compositions,
#: strings for AlphabeticalMax.
Agg = Any


class AggregateOperator(ABC):
    """Associative aggregate operation over a sliding window.

    Subclasses must define :attr:`name`, :attr:`identity` and
    :meth:`combine`.  The default :meth:`lift`/:meth:`lower` are
    identity functions, which is correct for distributive operators.
    """

    #: Registry / display name, e.g. ``"sum"``.
    name: str = "abstract"

    #: ``True`` when an inexpensive inverse ``⊖`` exists (Section 3.1).
    invertible: bool = False

    #: ``True`` when ``combine`` is commutative.  The library never
    #: relies on commutativity; the flag exists so tests can check that
    #: algorithms do *not* depend on it.
    commutative: bool = False

    #: ``True`` when ``combine(a, b)`` always returns one of its
    #: arguments (selection semantics: Max, Min, ArgMax, ...).
    selects: bool = False

    @property
    @abstractmethod
    def identity(self) -> Agg:
        """The neutral aggregate value (``initVal`` in Algorithm 1)."""

    @abstractmethod
    def combine(self, older: Agg, newer: Agg) -> Agg:
        """Apply ``older ⊕ newer``.

        ``older`` must precede ``newer`` in stream order so that
        non-commutative operators remain correct.
        """

    def lift(self, value: Any) -> Agg:
        """Convert a raw stream value into an aggregate value."""
        return value

    def lower(self, agg: Agg) -> Any:
        """Convert an aggregate value into a query answer."""
        return agg

    def fold(self, values: Iterable[Any]) -> Agg:
        """Aggregate an iterable of *raw* values left-to-right.

        This is the from-scratch evaluation used by the Recalc oracle
        and by partial aggregation; it is deliberately the most obvious
        possible implementation.
        """
        acc = self.identity
        for value in values:
            acc = self.combine(acc, self.lift(value))
        return acc

    def fold_aggs(self, aggs: Iterable[Agg]) -> Agg:
        """Aggregate an iterable of already-lifted aggregate values."""
        acc = self.identity
        for agg in aggs:
            acc = self.combine(acc, agg)
        return acc

    @property
    def mergeable(self) -> bool:
        """Whether disjoint partials of one window can be recombined.

        ``True`` when partial aggregates computed over an *arbitrary
        disjoint partition* of a window's tuples (e.g. the per-shard
        subsets of a key-partitioned stream) can be ``combine``d into
        the exact whole-window aggregate regardless of how the
        partition interleaves the stream.  For an associative operator
        this holds exactly when ``combine`` is commutative, so the
        default derives from :attr:`commutative`; operators with
        order-sensitive tie-breaking (ArgMax) or positional semantics
        (First, Last) inherit ``False`` the same way.  Subclasses may
        override (a plain class attribute shadows this property) when
        commutativity and mergeability diverge.
        """
        return self.commutative

    def dominates(self, incumbent: Agg, challenger: Agg) -> bool:
        """Whether ``challenger`` makes ``incumbent`` irrelevant.

        This is the tail-eviction test of Algorithm 2 line 16:
        ``incumbent ⊕ challenger == challenger`` (the incumbent "will
        never be a query answer").  Meaningful for selection-type
        operators; defined generally because it only uses ``combine``.
        """
        return self.combine(incumbent, challenger) == challenger

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class InvertibleOperator(AggregateOperator):
    """Aggregate operator with an inexpensive inverse ``⊖``.

    Satisfies ``inverse(combine(a, b), b) == a`` for all aggregates in
    the operator's domain.  SlickDeque (Inv) and Subtract-on-Evict rely
    on this for their constant per-slide update.
    """

    invertible = True

    @abstractmethod
    def inverse(self, agg: Agg, removed: Agg) -> Agg:
        """Apply ``agg ⊖ removed``, un-doing an earlier ``combine``."""


def require_invertible(operator: AggregateOperator) -> InvertibleOperator:
    """Return ``operator`` if invertible, else raise.

    Raises:
        InvalidOperatorError: when the operator declares itself
            non-invertible or lacks an ``inverse`` method.
    """
    if not operator.invertible or not isinstance(operator, InvertibleOperator):
        raise InvalidOperatorError(
            f"operator {operator.name!r} is not invertible; use the "
            "non-invertible (deque) processing path instead"
        )
    return operator


def require_selection(operator: AggregateOperator) -> AggregateOperator:
    """Return ``operator`` if it has selection semantics, else raise.

    SlickDeque (Non-Inv) returns *element values* straight from its
    deque nodes, which is only an exact answer when ``x ⊕ y ∈ {x, y}``.
    """
    if not operator.selects:
        raise InvalidOperatorError(
            f"operator {operator.name!r} does not have selection "
            "semantics (x ⊕ y ∈ {x, y}); SlickDeque (Non-Inv) requires it"
        )
    return operator
