"""Operator views: adapters for staged aggregation pipelines.

Two recurring needs when final aggregation is fed *partial aggregates*
rather than raw tuples:

* :func:`raw_view` — keep intermediate aggregates un-lowered, so a
  caller can keep combining (e.g. Cutty's open partial) and finalise
  once at the end;
* :func:`partial_view` — additionally skip ``lift``: the inputs are
  already lifted aggregates, and lifting is not idempotent for Count,
  Mean, SumOfSquares, ...

``partial_view`` preserves componentwise structure for non-invertible
algebraic compositions (Range), exposing slice views per component so
the SlickDeque invertibility dispatch can still decompose them.
"""

from __future__ import annotations

from typing import Any

from repro.operators.algebraic import ComposedOperator
from repro.operators.base import Agg, AggregateOperator, InvertibleOperator


class RawView(InvertibleOperator):
    """Delegate everything but keep aggregates un-lowered.

    Subclasses :class:`InvertibleOperator` so invertibility dispatch
    still works; the ``invertible`` flag mirrors the wrapped operator.
    """

    def __init__(self, inner: AggregateOperator):
        self.inner = inner
        self.name = f"raw({inner.name})"
        self.invertible = inner.invertible
        self.commutative = inner.commutative
        self.selects = inner.selects

    @property
    def identity(self) -> Agg:
        return self.inner.identity

    def lift(self, value: Any) -> Agg:
        return self.inner.lift(value)

    def combine(self, older: Agg, newer: Agg) -> Agg:
        return self.inner.combine(older, newer)

    def inverse(self, agg: Agg, removed: Agg) -> Agg:
        return self.inner.inverse(agg, removed)  # type: ignore[attr-defined]

    def dominates(self, incumbent: Agg, challenger: Agg) -> bool:
        return self.inner.dominates(incumbent, challenger)

    def lower(self, agg: Agg) -> Any:
        return agg


class PartialView(RawView):
    """A raw view whose inputs are *already lifted* aggregates."""

    def lift(self, value: Any) -> Agg:
        return value


class ComponentSlice(AggregateOperator):
    """One component of an already-lifted composed aggregate.

    ``lift`` selects the component's slot from the tuple aggregate;
    everything else delegates, and ``lower`` stays raw.
    """

    def __init__(self, component: AggregateOperator, index: int):
        self._component = component
        self._index = index
        self.name = f"slice{index}({component.name})"
        self.invertible = component.invertible
        self.commutative = component.commutative
        self.selects = component.selects

    @property
    def identity(self) -> Agg:
        return self._component.identity

    def lift(self, value: Any) -> Agg:
        return value[self._index]

    def combine(self, older: Agg, newer: Agg) -> Agg:
        return self._component.combine(older, newer)

    def dominates(self, incumbent: Agg, challenger: Agg) -> bool:
        return self._component.dominates(incumbent, challenger)


def raw_view(operator: AggregateOperator) -> AggregateOperator:
    """An un-lowering view of ``operator`` (idempotent)."""
    if isinstance(operator, RawView):
        return operator
    return RawView(operator)


def partial_view(operator: AggregateOperator) -> AggregateOperator:
    """A view for aggregators consuming completed partials.

    Non-invertible compositions keep componentwise structure (as slice
    views); the finalizer is deferred to the caller — ``lower`` is the
    identity on the component tuple.
    """
    if isinstance(operator, ComposedOperator) and not operator.invertible:
        slices = [
            ComponentSlice(component, index)
            for index, component in enumerate(operator.components)
        ]
        return ComposedOperator(
            f"partial({operator.name})",
            slices,
            lambda *aggs: tuple(aggs),
        )
    return PartialView(operator)
