"""Operation-counting instrumentation (paper Section 4.1 metric).

The paper evaluates "each algorithm's time complexity in terms of the
number of aggregate operations it performs per slide", because those
operations "(1) [are] applied directly to the input data, (2) constitute
the bulk of all performed operations, and (3) their number correlates
best with the actual query performance".

:class:`CountingOperator` wraps any operator and counts every ``⊕``
(combine) and ``⊖`` (inverse) invocation.  Callers snapshot the counter
around a slide to obtain per-slide costs; :class:`SlideOpRecorder`
automates that and produces amortized / worst-case summaries directly
comparable to Table 1.

Combines against the operator's identity are counted too: the paper's
pseudocode (e.g. Algorithm 1 line 24) performs them unconditionally, so
charging them keeps our counts aligned with its accounting.
"""

from __future__ import annotations

from typing import Any, List

from repro.operators.base import Agg, AggregateOperator, InvertibleOperator


class CountingOperator(InvertibleOperator):
    """Transparent wrapper counting combine/inverse calls.

    The wrapper always subclasses :class:`InvertibleOperator` so it can
    forward ``inverse``; :attr:`invertible` mirrors the wrapped
    operator's flag, and calling ``inverse`` on a non-invertible wrapped
    operator raises the wrapped operator's own ``AttributeError``.
    """

    def __init__(self, inner: AggregateOperator):
        self.inner = inner
        self.name = f"counting({inner.name})"
        self.invertible = inner.invertible
        self.commutative = inner.commutative
        self.selects = inner.selects
        self.combines = 0
        self.inverses = 0

    @property
    def ops(self) -> int:
        """Total aggregate operations performed (⊕ plus ⊖)."""
        return self.combines + self.inverses

    def reset(self) -> None:
        """Zero both counters."""
        self.combines = 0
        self.inverses = 0

    @property
    def identity(self) -> Agg:
        return self.inner.identity

    def lift(self, value: Any) -> Agg:
        return self.inner.lift(value)

    def lower(self, agg: Agg) -> Any:
        return self.inner.lower(agg)

    def combine(self, older: Agg, newer: Agg) -> Agg:
        self.combines += 1
        return self.inner.combine(older, newer)

    def inverse(self, agg: Agg, removed: Agg) -> Agg:
        self.inverses += 1
        return self.inner.inverse(agg, removed)  # type: ignore[union-attr]

    def dominates(self, incumbent: Agg, challenger: Agg) -> bool:
        # Routed through self.combine so the ⊕ is charged exactly once.
        return self.combine(incumbent, challenger) == challenger


class SlideOpRecorder:
    """Record per-slide operation counts around an aggregator loop.

    Usage::

        counting = CountingOperator(MaxOperator())
        agg = SlickDequeNonInv(counting, window)
        rec = SlideOpRecorder(counting)
        for value in stream:
            agg.step(value)
            rec.mark_slide()
        rec.amortized_ops, rec.worst_case_ops
    """

    def __init__(self, operator: CountingOperator):
        self._operator = operator
        self._last_total = operator.ops
        self.per_slide: List[int] = []

    def mark_slide(self) -> int:
        """Close the current slide; return its operation count."""
        total = self._operator.ops
        slide_ops = total - self._last_total
        self._last_total = total
        self.per_slide.append(slide_ops)
        return slide_ops

    @property
    def slides(self) -> int:
        return len(self.per_slide)

    @property
    def total_ops(self) -> int:
        return sum(self.per_slide)

    @property
    def amortized_ops(self) -> float:
        """Mean operations per slide (Table 1's amortized column)."""
        if not self.per_slide:
            return 0.0
        return self.total_ops / len(self.per_slide)

    @property
    def worst_case_ops(self) -> int:
        """Maximum operations in any single slide (Table 1 worst case)."""
        return max(self.per_slide) if self.per_slide else 0
