"""Aggregate operators: the algebraic framework of paper Section 3.1.

Public surface:

* :class:`AggregateOperator` / :class:`InvertibleOperator` — the
  operator protocol all window algorithms are written against.
* Distributive invertible ops: :class:`SumOperator`,
  :class:`CountOperator`, :class:`ProductOperator`, ...
* Distributive non-invertible (selection) ops: :class:`MaxOperator`,
  :class:`MinOperator`, :class:`ArgMaxOperator`, ...
* Algebraic compositions: :func:`mean_operator`,
  :func:`stddev_operator`, :func:`range_operator`, ...
* :class:`CountingOperator` — the §4.1 operation-count instrumentation.
* :func:`get_operator` — name-based registry lookup.
"""

from repro.operators.algebraic import (
    ComposedOperator,
    InvertibleComposedOperator,
    compose,
    geometric_mean_operator,
    mean_operator,
    range_operator,
    stddev_operator,
    variance_operator,
)
from repro.operators.base import (
    Agg,
    AggregateOperator,
    InvertibleOperator,
    require_invertible,
    require_selection,
)
from repro.operators.boolean import (
    BitAndOperator,
    BitOrOperator,
    BoolAllOperator,
    BoolAnyOperator,
)
from repro.operators.instrumented import CountingOperator, SlideOpRecorder
from repro.operators.invertible import (
    CountOperator,
    IntProductOperator,
    ProductOperator,
    SumOfSquaresOperator,
    SumOperator,
)
from repro.operators.noninvertible import (
    NEG_INF,
    POS_INF,
    AlphabeticalMaxOperator,
    ArgMaxOperator,
    ArgMinOperator,
    MaxOperator,
    MinOperator,
    argmax_of_cosine,
    argmin_of_square,
)
from repro.operators.positional import FirstOperator, LastOperator
from repro.operators.views import (
    ComponentSlice,
    PartialView,
    RawView,
    partial_view,
    raw_view,
)
from repro.operators.registry import (
    available_operators,
    get_operator,
    register_operator,
)

__all__ = [
    "Agg",
    "AggregateOperator",
    "InvertibleOperator",
    "require_invertible",
    "require_selection",
    "SumOperator",
    "CountOperator",
    "SumOfSquaresOperator",
    "ProductOperator",
    "IntProductOperator",
    "MaxOperator",
    "MinOperator",
    "AlphabeticalMaxOperator",
    "ArgMaxOperator",
    "ArgMinOperator",
    "argmax_of_cosine",
    "argmin_of_square",
    "NEG_INF",
    "POS_INF",
    "ComposedOperator",
    "InvertibleComposedOperator",
    "compose",
    "mean_operator",
    "variance_operator",
    "stddev_operator",
    "geometric_mean_operator",
    "range_operator",
    "CountingOperator",
    "SlideOpRecorder",
    "BoolAllOperator",
    "BoolAnyOperator",
    "BitAndOperator",
    "BitOrOperator",
    "FirstOperator",
    "LastOperator",
    "get_operator",
    "register_operator",
    "available_operators",
    "RawView",
    "PartialView",
    "ComponentSlice",
    "raw_view",
    "partial_view",
]
