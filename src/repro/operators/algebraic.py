"""Algebraic operators composed from distributive parts (Section 3.1).

The paper: "By combining these distributive aggregations we can
calculate some commonly used algebraic aggregations such as: Average
(Count and Sum), Standard Deviation (Sum of Squares, Sum, and Count),
Geometric Mean (Product and Count), and Range (Max and Min)."

A :class:`ComposedOperator` carries its distributive components and a
``finalize`` step.  It is itself a perfectly valid associative operator
over tuple aggregates, so tree-based algorithms (FlatFAT, B-Int, ...)
can run it directly.  When *all* components are invertible the
composition is invertible too (:class:`InvertibleComposedOperator`) and
rides SlickDeque's (Inv) fast path.  When they are not (Range), the
facade in :mod:`repro.core.facade` decomposes the query and runs one
selection deque per component — the component-wise processing the
paper's "differentiated handling" enables.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence, Tuple

from repro.operators.base import Agg, AggregateOperator, InvertibleOperator
from repro.operators.invertible import (
    CountOperator,
    SumOfSquaresOperator,
    SumOperator,
)
from repro.operators.noninvertible import MaxOperator, MinOperator


class _LogSumOperator(InvertibleOperator):
    """Sum of logarithms: the invertible core of Geometric Mean."""

    name = "log_sum"
    commutative = True

    @property
    def identity(self) -> Agg:
        return 0.0

    def lift(self, value: Any) -> Agg:
        return math.log(value)

    def combine(self, older: Agg, newer: Agg) -> Agg:
        return older + newer

    def inverse(self, agg: Agg, removed: Agg) -> Agg:
        return agg - removed


class ComposedOperator(AggregateOperator):
    """Algebraic operator: componentwise distributive ops + a finalizer.

    Aggregate values are tuples with one slot per component.  ``lower``
    applies the finalizer, producing the user-facing answer.
    """

    def __init__(
        self,
        name: str,
        components: Sequence[AggregateOperator],
        finalize: Callable[..., Any],
    ):
        self.name = name
        self.components: Tuple[AggregateOperator, ...] = tuple(components)
        self._finalize = finalize
        self.commutative = all(c.commutative for c in self.components)

    @property
    def identity(self) -> Agg:
        return tuple(c.identity for c in self.components)

    def lift(self, value: Any) -> Agg:
        return tuple(c.lift(value) for c in self.components)

    def lower(self, agg: Agg) -> Any:
        return self._finalize(*agg)

    def combine(self, older: Agg, newer: Agg) -> Agg:
        return tuple(
            c.combine(a, b) for c, a, b in zip(self.components, older, newer)
        )


class InvertibleComposedOperator(ComposedOperator, InvertibleOperator):
    """A composition whose every component is invertible."""

    invertible = True

    def inverse(self, agg: Agg, removed: Agg) -> Agg:
        return tuple(
            c.inverse(a, b)  # type: ignore[union-attr]
            for c, a, b in zip(self.components, agg, removed)
        )


def compose(
    name: str,
    components: Sequence[AggregateOperator],
    finalize: Callable[..., Any],
) -> ComposedOperator:
    """Build a composed operator, invertible iff all components are."""
    if all(c.invertible for c in components):
        return InvertibleComposedOperator(name, components, finalize)
    return ComposedOperator(name, components, finalize)


def _safe_ratio(numerator: float, count: int) -> float:
    return math.nan if count == 0 else numerator / count


def mean_operator() -> InvertibleComposedOperator:
    """Average = Sum / Count (invertible)."""
    op = compose("mean", [SumOperator(), CountOperator()], _safe_ratio)
    assert isinstance(op, InvertibleComposedOperator)
    return op


def _variance_finalize(sum_sq: float, total: float, count: int) -> float:
    if count == 0:
        return math.nan
    mean = total / count
    # Clamp tiny negative values from floating-point cancellation.
    return max(sum_sq / count - mean * mean, 0.0)


def variance_operator() -> InvertibleComposedOperator:
    """Population variance from (SumSq, Sum, Count) — invertible."""
    op = compose(
        "variance",
        [SumOfSquaresOperator(), SumOperator(), CountOperator()],
        _variance_finalize,
    )
    assert isinstance(op, InvertibleComposedOperator)
    return op


def stddev_operator() -> InvertibleComposedOperator:
    """Population standard deviation (paper: invertible)."""
    op = compose(
        "stddev",
        [SumOfSquaresOperator(), SumOperator(), CountOperator()],
        lambda ssq, s, n: math.sqrt(_variance_finalize(ssq, s, n)),
    )
    assert isinstance(op, InvertibleComposedOperator)
    return op


def geometric_mean_operator() -> InvertibleComposedOperator:
    """Geometric Mean from (log-Sum, Count) — invertible.

    Implemented in log space, so it requires strictly positive inputs —
    the same restriction the paper's Product-and-Count formulation has.
    """
    op = compose(
        "geometric_mean",
        [_LogSumOperator(), CountOperator()],
        lambda log_sum, n: math.nan if n == 0 else math.exp(log_sum / n),
    )
    assert isinstance(op, InvertibleComposedOperator)
    return op


def _range_finalize(maximum: Any, minimum: Any) -> Any:
    return maximum - minimum


def range_operator() -> ComposedOperator:
    """Range = Max − Min (non-invertible; components are selection ops).

    The composition itself is not selection-type, so deque-based
    processing must be done per component; the SlickDeque facade does
    exactly that.
    """
    return compose("range", [MaxOperator(), MinOperator()], _range_finalize)
