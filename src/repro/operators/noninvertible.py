"""Non-invertible distributive operators (paper Sections 1 and 3.1).

The paper's examples are Max, Min, Range, Alphabetical Max (for
strings), ArgMax of Cosine, and ArgMin of x².  All the operators here
are *selection-type*: ``x ⊕ y`` always returns one of its arguments,
which is the property SlickDeque (Non-Inv) exploits (the paper's note in
Section 3.1 that for non-invertible ⊕, ``x ⊕ y ∈ {x, y}``).

Range (Max and Min combined) is algebraic and lives in
:mod:`repro.operators.algebraic`.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.operators.base import Agg, AggregateOperator


class _NegativeInfinity:
    """Identity for Max: compares below every value of any type."""

    def __lt__(self, other: Any) -> bool:
        return True

    def __gt__(self, other: Any) -> bool:
        return False

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, _NegativeInfinity)

    def __hash__(self) -> int:
        return hash("_NegativeInfinity")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "-inf*"


class _PositiveInfinity:
    """Identity for Min: compares above every value of any type."""

    def __lt__(self, other: Any) -> bool:
        return False

    def __gt__(self, other: Any) -> bool:
        return True

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, _PositiveInfinity)

    def __hash__(self) -> int:
        return hash("_PositiveInfinity")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "+inf*"


#: Shared singletons so ``identity`` comparisons are cheap and stable.
NEG_INF = _NegativeInfinity()
POS_INF = _PositiveInfinity()


class MaxOperator(AggregateOperator):
    """Sliding Max, the paper's canonical non-invertible operation.

    The identity is a typed sentinel rather than ``float("-inf")`` so
    the operator also works over strings and other ordered types.
    """

    name = "max"
    commutative = True
    selects = True

    @property
    def identity(self) -> Agg:
        return NEG_INF

    def combine(self, older: Agg, newer: Agg) -> Agg:
        # Prefer the *newer* value on ties: a fresher equal value stays
        # in the window longer, which is what keeps SlickDeque's deque
        # minimal (Algorithm 2 pops ties from the tail).
        return older if newer < older else newer

    def dominates(self, incumbent: Agg, challenger: Agg) -> bool:
        # One comparison instead of combine-then-equality; identical
        # semantics to the base definition (ties dominate).
        return not challenger < incumbent


class MinOperator(AggregateOperator):
    """Sliding Min."""

    name = "min"
    commutative = True
    selects = True

    @property
    def identity(self) -> Agg:
        return POS_INF

    def combine(self, older: Agg, newer: Agg) -> Agg:
        return older if newer > older else newer

    def dominates(self, incumbent: Agg, challenger: Agg) -> bool:
        return not challenger > incumbent


class AlphabeticalMaxOperator(MaxOperator):
    """Max over strings by lexicographic order (paper Section 1).

    Identical combine logic to :class:`MaxOperator`; the subclass exists
    so the registry exposes the paper's named operation and so string
    streams are self-documenting in examples.
    """

    name = "alpha_max"


class ArgMaxOperator(AggregateOperator):
    """ArgMax over an arbitrary key function, e.g. ArgMax of Cosine.

    Aggregates are the raw stream values themselves; ``combine`` keeps
    whichever argument has the larger key.  The paper lists "ArgMax of
    Cosine" as a non-invertible operation: knowing the current ArgMax
    does not let you cheaply remove an expiring element.
    """

    name = "argmax"
    commutative = False  # ties resolve toward the newer value
    selects = True

    def __init__(self, key: Callable[[Any], Any], name: str = "argmax"):
        self._key = key
        self.name = name

    @property
    def identity(self) -> Agg:
        return NEG_INF

    def _key_of(self, agg: Agg) -> Any:
        if isinstance(agg, (_NegativeInfinity, _PositiveInfinity)):
            return agg
        return self._key(agg)

    def combine(self, older: Agg, newer: Agg) -> Agg:
        return older if self._key_of(newer) < self._key_of(older) else newer

    def dominates(self, incumbent: Agg, challenger: Agg) -> bool:
        return not self._key_of(challenger) < self._key_of(incumbent)


class ArgMinOperator(ArgMaxOperator):
    """ArgMin over an arbitrary key function, e.g. ArgMin of x²."""

    name = "argmin"

    @property
    def identity(self) -> Agg:
        return POS_INF

    def combine(self, older: Agg, newer: Agg) -> Agg:
        return older if self._key_of(newer) > self._key_of(older) else newer

    def dominates(self, incumbent: Agg, challenger: Agg) -> bool:
        return not self._key_of(challenger) > self._key_of(incumbent)


def argmax_of_cosine() -> ArgMaxOperator:
    """The paper's "ArgMax of Cosine" example operator."""
    return ArgMaxOperator(math.cos, name="argmax_cos")


def argmin_of_square() -> ArgMinOperator:
    """The paper's "ArgMin of x²" example operator."""
    return ArgMinOperator(lambda x: x * x, name="argmin_x2")
