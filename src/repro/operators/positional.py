"""Positional operators: First and Last over a sliding window.

``FIRST_VALUE`` / ``LAST_VALUE`` window functions as sliding-window
aggregations.  Both are associative, non-commutative, non-invertible,
and selection-type (``x ⊕ y ∈ {x, y}``) — so they ride SlickDeque
(Non-Inv), and they exercise the two extreme deque behaviours:

* **Last** — every newcomer dominates the whole deque, which therefore
  holds exactly one node (the §4.1 best case, O(1) space);
* **First** — nothing ever dominates, the deque stays full, and the
  answer is served purely by head expiry (the §4.1 worst-space case,
  on *every* input).

They also demonstrate why the library never assumes commutativity.
"""

from __future__ import annotations

from repro.operators.base import Agg, AggregateOperator
from repro.operators.noninvertible import NEG_INF, _NegativeInfinity


class FirstOperator(AggregateOperator):
    """The oldest value in the window (``FIRST_VALUE``)."""

    name = "first"
    commutative = False
    selects = True

    @property
    def identity(self) -> Agg:
        # The sentinel loses to any real value regardless of order.
        return NEG_INF

    def combine(self, older: Agg, newer: Agg) -> Agg:
        if isinstance(older, _NegativeInfinity):
            return newer
        return older

    def dominates(self, incumbent: Agg, challenger: Agg) -> bool:
        # A newer value never supersedes an older one — except that
        # dropping the incumbent is harmless when the values are equal
        # (the base combine-equality definition, kept exactly).
        return (
            isinstance(incumbent, _NegativeInfinity)
            or incumbent == challenger
        )


class LastOperator(AggregateOperator):
    """The newest value in the window (``LAST_VALUE``)."""

    name = "last"
    commutative = False
    selects = True

    @property
    def identity(self) -> Agg:
        return NEG_INF

    def combine(self, older: Agg, newer: Agg) -> Agg:
        if isinstance(newer, _NegativeInfinity):
            return older
        return newer

    def dominates(self, incumbent: Agg, challenger: Agg) -> bool:
        # Every newcomer supersedes everything before it.
        return not isinstance(challenger, _NegativeInfinity) or (
            isinstance(incumbent, _NegativeInfinity)
        )
