"""Boolean and bitwise aggregate operators.

Stream predicates ("were *all* readings in range over the last
minute?", "did *any* alarm fire?") are distributive aggregations.  The
boolean forms are selection-type — ``x AND y`` / ``x OR y`` always
return one of their arguments — so they ride SlickDeque (Non-Inv)'s
deque.  The *bitwise* integer forms are distributive and
non-invertible but **not** selection-type (``5 AND 3 = 1``), which
makes them a useful probe of the library's capability boundaries: the
tree- and stack-based baselines handle them, while
:func:`~repro.core.facade.make_slickdeque` correctly refuses
(demonstrating the paper's scope: the deque algorithm needs the
``x ⊕ y ∈ {x, y}`` property from Section 3.1).
"""

from __future__ import annotations

from repro.operators.base import Agg, AggregateOperator


class BoolAllOperator(AggregateOperator):
    """Sliding AND over booleans (selection-type: returns an operand)."""

    name = "bool_all"
    commutative = True
    selects = True

    @property
    def identity(self) -> Agg:
        return True

    def lift(self, value) -> Agg:
        return bool(value)

    def combine(self, older: Agg, newer: Agg) -> Agg:
        # Equivalent to `older and newer` but always returns one of the
        # lifted operands, keeping selection semantics exact.
        return newer if not newer else older

    def dominates(self, incumbent: Agg, challenger: Agg) -> bool:
        # A False challenger forces the window answer until it expires;
        # and any challenger makes an equal-or-truer incumbent
        # irrelevant (ties prefer the newer node).
        return (not challenger) or incumbent


class BoolAnyOperator(AggregateOperator):
    """Sliding OR over booleans (selection-type)."""

    name = "bool_any"
    commutative = True
    selects = True

    @property
    def identity(self) -> Agg:
        return False

    def lift(self, value) -> Agg:
        return bool(value)

    def combine(self, older: Agg, newer: Agg) -> Agg:
        return newer if newer else older

    def dominates(self, incumbent: Agg, challenger: Agg) -> bool:
        return challenger or not incumbent


class BitAndOperator(AggregateOperator):
    """Sliding bitwise AND over integers.

    Distributive, associative, commutative, non-invertible, and *not*
    selection-type: the result can differ from both operands.  Served
    by Naive, FlatFAT, B-Int, FlatFIT, TwoStacks, and DABA; SlickDeque
    refuses it by design.
    """

    name = "bit_and"
    commutative = True

    @property
    def identity(self) -> Agg:
        return -1  # all ones in two's complement

    def combine(self, older: Agg, newer: Agg) -> Agg:
        return older & newer


class BitOrOperator(AggregateOperator):
    """Sliding bitwise OR over integers (non-selection, like BitAnd)."""

    name = "bit_or"
    commutative = True

    @property
    def identity(self) -> Agg:
        return 0

    def combine(self, older: Agg, newer: Agg) -> Agg:
        return older | newer
