"""Invertible distributive operators (paper Sections 1 and 3.1).

The paper's list of invertible operations is Sum, Product, Count,
Average, and Standard Deviation.  Average and StdDev are *algebraic*
(compositions of distributive parts) and live in
:mod:`repro.operators.algebraic`; this module provides the distributive
invertible building blocks.

Product deserves a note: over the reals it is invertible only away from
zero.  :class:`ProductOperator` therefore tracks ``(nonzero_product,
zero_count)`` pairs, which makes the inverse exact even when zeros flow
through the window — the standard trick DSMSs use to keep Product on the
cheap invertible path.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.operators.base import Agg, InvertibleOperator


class SumOperator(InvertibleOperator):
    """Running Sum; the paper's canonical invertible operation."""

    name = "sum"
    commutative = True

    @property
    def identity(self) -> Agg:
        return 0

    def combine(self, older: Agg, newer: Agg) -> Agg:
        return older + newer

    def inverse(self, agg: Agg, removed: Agg) -> Agg:
        return agg - removed


class CountOperator(InvertibleOperator):
    """Running Count.  ``lift`` maps every tuple to 1."""

    name = "count"
    commutative = True

    @property
    def identity(self) -> Agg:
        return 0

    def lift(self, value: Any) -> Agg:
        return 1

    def combine(self, older: Agg, newer: Agg) -> Agg:
        return older + newer

    def inverse(self, agg: Agg, removed: Agg) -> Agg:
        return agg - removed


class SumOfSquaresOperator(InvertibleOperator):
    """Running sum of squared values; a StdDev building block."""

    name = "sum_of_squares"
    commutative = True

    @property
    def identity(self) -> Agg:
        return 0

    def lift(self, value: Any) -> Agg:
        return value * value

    def combine(self, older: Agg, newer: Agg) -> Agg:
        return older + newer

    def inverse(self, agg: Agg, removed: Agg) -> Agg:
        return agg - removed


class ProductOperator(InvertibleOperator):
    """Running Product, exact in the presence of zeros.

    Aggregates are ``(nonzero_product, zero_count)`` pairs.  ``lower``
    yields 0 whenever the window holds at least one zero, and the
    nonzero product otherwise.  Division by a *nonzero* factor is the
    inverse, so the operator stays on the invertible fast path.
    """

    name = "product"
    commutative = True

    @property
    def identity(self) -> Agg:
        return (1, 0)

    def lift(self, value: Any) -> Agg:
        if value == 0:
            return (1, 1)
        return (value, 0)

    def lower(self, agg: Agg) -> Any:
        nonzero, zeros = agg
        return 0 if zeros else nonzero

    def combine(self, older: Agg, newer: Agg) -> Tuple[Any, int]:
        return (older[0] * newer[0], older[1] + newer[1])

    def inverse(self, agg: Agg, removed: Agg) -> Tuple[Any, int]:
        return (agg[0] / removed[0], agg[1] - removed[1])


class IntProductOperator(ProductOperator):
    """Product over integers, using exact integer division on eviction.

    Python's arbitrary-precision integers make this exact for any
    window; the float-division variant in :class:`ProductOperator`
    accumulates rounding error over long runs.
    """

    name = "int_product"

    def inverse(self, agg: Agg, removed: Agg) -> Tuple[Any, int]:
        return (agg[0] // removed[0], agg[1] - removed[1])
