"""Chunked-node deque (paper Section 4.2).

SlickDeque (Non-Inv) "performs node allocations in chunks to reduce the
space required by pointers similarly to DABA, causing an overall
allocation of up to two chunks' worth of space (at the beginning and at
the end of the deque)".  With ``n`` nodes of two values each and ``k``
chunks of two pointers each, the worst-case space is ``2n + 4k + 4n/k``
words, minimised at ``k = √n``.

This module implements that structure: a doubly-linked list of
fixed-size chunks with head/tail cursors.  Items are arbitrary Python
objects; callers state how many logical words one item occupies
(``words_per_item``, 2 for SlickDeque's ``(pos, val)`` nodes) so
:meth:`ChunkedDeque.memory_words` reproduces the §4.2 formula for
Exp 4 and the chunk-size ablation bench.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, List, Optional

from repro.errors import WindowStateError


class _Chunk:
    """One fixed-size allocation block with prev/next links."""

    __slots__ = ("slots", "prev", "next")

    def __init__(self, size: int):
        self.slots: List[Any] = [None] * size
        self.prev: Optional["_Chunk"] = None
        self.next: Optional["_Chunk"] = None


def optimal_chunk_size(expected_items: int) -> int:
    """The §4.2 optimum ``k = √n``, as a chunk *size* of ``√n`` slots.

    With ``n`` items split into chunks of ``c`` slots there are
    ``k = n/c`` chunks; space ``2n + 4k + 4c`` is minimised when
    ``c = √n`` (equivalently ``k = √n``).
    """
    if expected_items <= 0:
        return 1
    return max(1, int(math.isqrt(expected_items)))


class ChunkedDeque:
    """Double-ended queue over chunk-allocated storage.

    Supports the exact operation set SlickDeque (Non-Inv) and DABA's
    queues need: ``push_back``, ``pop_back``, ``pop_front``, ``front``,
    ``back``, front-to-back iteration, and O(1) length.  Chunks are
    recycled through a one-chunk free list so a steady-state window does
    not churn the allocator.
    """

    def __init__(self, chunk_size: int = 64, words_per_item: int = 2):
        if chunk_size <= 0:
            raise WindowStateError(
                f"chunk size must be positive, got {chunk_size}"
            )
        if words_per_item <= 0:
            raise WindowStateError(
                f"words_per_item must be positive, got {words_per_item}"
            )
        self.chunk_size = chunk_size
        self.words_per_item = words_per_item
        self._head_chunk: Optional[_Chunk] = None
        self._tail_chunk: Optional[_Chunk] = None
        self._head_index = 0  # index of the front item in head chunk
        self._tail_index = 0  # index one past the back item in tail chunk
        self._length = 0
        self._chunk_count = 0
        self._spare: Optional[_Chunk] = None  # free-list of size one

    # -- allocation helpers ------------------------------------------------

    def _new_chunk(self) -> _Chunk:
        if self._spare is not None:
            chunk = self._spare
            self._spare = None
            chunk.prev = None
            chunk.next = None
            return chunk
        return _Chunk(self.chunk_size)

    def _retire_chunk(self, chunk: _Chunk) -> None:
        chunk.prev = None
        chunk.next = None
        for i in range(self.chunk_size):
            chunk.slots[i] = None
        self._spare = chunk

    # -- core deque operations ---------------------------------------------

    def push_back(self, item: Any) -> None:
        """Append ``item`` at the tail."""
        if self._tail_chunk is None or self._tail_index == self.chunk_size:
            chunk = self._new_chunk()
            self._chunk_count += 1
            if self._tail_chunk is None:
                self._head_chunk = chunk
                self._head_index = 0
            else:
                self._tail_chunk.next = chunk
                chunk.prev = self._tail_chunk
            self._tail_chunk = chunk
            self._tail_index = 0
        self._tail_chunk.slots[self._tail_index] = item
        self._tail_index += 1
        self._length += 1

    def pop_back(self) -> Any:
        """Remove and return the tail item."""
        if self._length == 0:
            raise WindowStateError("pop_back from empty deque")
        assert self._tail_chunk is not None
        self._tail_index -= 1
        item = self._tail_chunk.slots[self._tail_index]
        self._tail_chunk.slots[self._tail_index] = None
        self._length -= 1
        if self._tail_index == 0 and self._length > 0:
            old = self._tail_chunk
            self._tail_chunk = old.prev
            assert self._tail_chunk is not None
            self._tail_chunk.next = None
            self._tail_index = self.chunk_size
            self._chunk_count -= 1
            self._retire_chunk(old)
        elif self._length == 0:
            self._reset_empty()
        return item

    def pop_front(self) -> Any:
        """Remove and return the front item."""
        if self._length == 0:
            raise WindowStateError("pop_front from empty deque")
        assert self._head_chunk is not None
        item = self._head_chunk.slots[self._head_index]
        self._head_chunk.slots[self._head_index] = None
        self._head_index += 1
        self._length -= 1
        if self._head_index == self.chunk_size and self._length > 0:
            old = self._head_chunk
            self._head_chunk = old.next
            assert self._head_chunk is not None
            self._head_chunk.prev = None
            self._head_index = 0
            self._chunk_count -= 1
            self._retire_chunk(old)
        elif self._length == 0:
            self._reset_empty()
        return item

    def _reset_empty(self) -> None:
        if self._head_chunk is not None:
            self._chunk_count -= 1
            self._retire_chunk(self._head_chunk)
        self._head_chunk = None
        self._tail_chunk = None
        self._head_index = 0
        self._tail_index = 0

    @property
    def front(self) -> Any:
        """The front (oldest) item."""
        if self._length == 0:
            raise WindowStateError("front of empty deque")
        assert self._head_chunk is not None
        return self._head_chunk.slots[self._head_index]

    @property
    def back(self) -> Any:
        """The back (newest) item."""
        if self._length == 0:
            raise WindowStateError("back of empty deque")
        assert self._tail_chunk is not None
        return self._tail_chunk.slots[self._tail_index - 1]

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __iter__(self) -> Iterator[Any]:
        """Iterate items front (oldest) to back (newest)."""
        chunk = self._head_chunk
        index = self._head_index
        remaining = self._length
        while remaining > 0:
            assert chunk is not None
            if index == self.chunk_size:
                chunk = chunk.next
                index = 0
                continue
            yield chunk.slots[index]
            index += 1
            remaining -= 1

    # -- accounting ----------------------------------------------------------

    @property
    def chunk_count(self) -> int:
        """Chunks currently linked into the deque."""
        return self._chunk_count

    def allocated_slots(self) -> int:
        """Item slots allocated (including unfilled slack in end chunks)."""
        return self._chunk_count * self.chunk_size

    def memory_words(self) -> int:
        """Logical footprint per §4.2.

        ``words_per_item`` words per *allocated* slot (over-allocation at
        both ends is charged, exactly as the paper's "up to two chunks'
        worth of space" analysis), plus two pointer words per chunk.
        """
        return (
            self.allocated_slots() * self.words_per_item
            + self._chunk_count * 2
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChunkedDeque(len={self._length}, chunks={self._chunk_count}, "
            f"chunk_size={self.chunk_size})"
        )
