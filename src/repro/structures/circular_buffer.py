"""Fixed-capacity circular buffer (the paper's ``partials`` array).

Naive, FlatFIT, and SlickDeque (Inv) all maintain a pre-allocated
circular array of the last ``wSize`` partial aggregates (Algorithm 1
lines 6/14 and Figure 8).  This class is that array with explicit
``currPos`` handling, O(1) append-with-evict, and logical memory
accounting used by the Exp 4 reproduction.

Logical memory convention (shared library-wide): one *word* per stored
value slot, matching the space formulas of paper Section 4.2 where
Naive and SlickDeque (Inv) cost ``n``.
"""

from __future__ import annotations

from typing import Any, Iterator, List

from repro.errors import WindowStateError


class CircularBuffer:
    """Pre-allocated ring of ``capacity`` slots.

    The buffer always reports length ``capacity`` once it has wrapped;
    before that, unwritten slots hold ``fill`` (the operator identity in
    the aggregation algorithms, exactly as Algorithm 1 lines 8-10
    initialise ``partials`` with ``initVal``).
    """

    __slots__ = ("_slots", "_capacity", "_pos", "_written")

    def __init__(self, capacity: int, fill: Any = None):
        if capacity <= 0:
            raise WindowStateError(
                f"circular buffer capacity must be positive, got {capacity}"
            )
        self._capacity = capacity
        self._slots: List[Any] = [fill] * capacity
        self._pos = 0  # currPos: next write position
        self._written = 0  # total writes ever (for start-up handling)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def position(self) -> int:
        """The paper's ``currPos``: index of the next write."""
        return self._pos

    @property
    def total_written(self) -> int:
        """Number of values ever pushed (not capped at capacity)."""
        return self._written

    @property
    def is_warm(self) -> bool:
        """Whether every slot has been written at least once."""
        return self._written >= self._capacity

    def push(self, value: Any) -> Any:
        """Write ``value`` at ``currPos``, advance, return the old slot.

        The returned value is the expiring partial — the operand of the
        ``⊖`` in Algorithm 1 line 24 once the buffer is warm, and the
        initial fill before that.
        """
        expiring = self._slots[self._pos]
        self._slots[self._pos] = value
        self._pos += 1
        if self._pos == self._capacity:
            self._pos = 0
        self._written += 1
        return expiring

    def push_many(self, values: Any) -> List[Any]:
        """Write a batch of values; return every expired slot in order.

        Exactly equivalent to calling :meth:`push` once per value and
        collecting the returns, but performed with at most four slice
        operations instead of ``k`` method calls.  When the batch is at
        least as long as the capacity, every pre-existing slot expires
        first and then the batch's own oldest ``k - capacity`` values
        expire as newer ones wrap over them — the returned list always
        has exactly ``k`` entries, in expiry (stream) order.
        """
        tolist = getattr(values, "tolist", None)
        if tolist is not None:
            values = tolist()
        elif not isinstance(values, (list, tuple)):
            values = list(values)
        k = len(values)
        cap = self._capacity
        pos = self._pos
        slots = self._slots
        if k < cap:
            end = pos + k
            if end <= cap:
                expired = slots[pos:end]
                slots[pos:end] = values
                self._pos = 0 if end == cap else end
            else:
                end -= cap
                expired = slots[pos:] + slots[:end]
                slots[pos:] = values[: cap - pos]
                slots[:end] = values[cap - pos:]
                self._pos = end
        else:
            expired = slots[pos:] + slots[:pos] + list(values[: k - cap])
            tail = values[k - cap:]
            end = (pos + k) % cap
            slots[end:] = tail[: cap - end]
            slots[:end] = tail[cap - end:]
            self._pos = end
        self._written += k
        return expired

    def peek_expiring(self) -> Any:
        """The value that the next :meth:`push` will overwrite."""
        return self._slots[self._pos]

    def at_offset(self, offset: int) -> Any:
        """Slot holding the value pushed ``offset`` pushes ago.

        ``offset=1`` is the most recent value; ``offset=capacity`` is the
        oldest retained one.  This is the ``startPos`` rewind of
        Algorithm 1 lines 20-23 done for the caller.
        """
        if not 1 <= offset <= self._capacity:
            raise WindowStateError(
                f"offset must be in [1, {self._capacity}], got {offset}"
            )
        index = self._pos - offset
        if index < 0:
            index += self._capacity
        return self._slots[index]

    def last(self, count: int) -> Iterator[Any]:
        """Iterate the most recent ``count`` values, oldest first.

        Iteration order matters for non-commutative operators; oldest
        first matches stream order.
        """
        if not 0 <= count <= self._capacity:
            raise WindowStateError(
                f"count must be in [0, {self._capacity}], got {count}"
            )
        start = self._pos - count
        if start < 0:
            start += self._capacity
        for i in range(count):
            index = start + i
            if index >= self._capacity:
                index -= self._capacity
            yield self._slots[index]

    def __len__(self) -> int:
        return min(self._written, self._capacity)

    def __iter__(self) -> Iterator[Any]:
        """Iterate retained values, oldest first."""
        return self.last(len(self))

    def memory_words(self) -> int:
        """Logical footprint: one word per pre-allocated slot."""
        return self._capacity

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircularBuffer(capacity={self._capacity}, pos={self._pos}, "
            f"written={self._written})"
        )
