"""Data-structure substrate: circular buffers and chunked deques.

These are the storage layers under the window algorithms —
:class:`CircularBuffer` backs Naive, FlatFIT, and SlickDeque (Inv)
(`partials` array of Algorithm 1), :class:`ChunkedDeque` backs
SlickDeque (Non-Inv) and DABA's queues (paper Section 4.2 chunked
allocation).
"""

from repro.structures.chunked_deque import ChunkedDeque, optimal_chunk_size
from repro.structures.circular_buffer import CircularBuffer

__all__ = ["CircularBuffer", "ChunkedDeque", "optimal_chunk_size"]
