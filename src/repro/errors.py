"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Sub-classes
are kept deliberately fine-grained because the streaming engine routes
some of them (e.g. :class:`OutOfOrderError`) to error sinks instead of
tearing the pipeline down.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidQueryError(ReproError, ValueError):
    """An ACQ specification is malformed (non-positive range/slide, ...)."""


class InvalidOperatorError(ReproError, TypeError):
    """An aggregate operator is unsuitable for the requested algorithm.

    Raised, for example, when a non-invertible operator is handed to
    SlickDeque (Inv), or when a selection-type deque algorithm receives
    an operator that is not selection-like.
    """


class WindowStateError(ReproError, RuntimeError):
    """A window structure was driven through an illegal transition.

    Examples: querying an empty single-query window, evicting from an
    empty aggregator, or pushing into a full fixed-capacity buffer.
    """


class OutOfOrderError(ReproError, ValueError):
    """A tuple arrived too late to be absorbed by its partial aggregate.

    Per the paper's arrival-order assumption (Section 3.1), tuples that
    are slightly out of order are absorbed as long as they fall within
    the still-open partial; anything older is an error surfaced through
    this exception.  Where the raiser knows them, the offending
    ``position`` (arrival position or event timestamp) and the
    ``watermark`` it fell behind are carried as attributes so late drops
    are diagnosable from logs; both default to ``None`` for call sites
    that only have a message.
    """

    def __init__(self, message: str, position=None, watermark=None):
        super().__init__(message)
        #: The offending arrival position / event timestamp (or ``None``).
        self.position = position
        #: The watermark the record fell behind (or ``None``).
        self.watermark = watermark

    def __reduce__(self):
        return (type(self), (self.args[0], self.position, self.watermark))


class LateRecordError(ReproError, ValueError):
    """An event-time record arrived behind the watermark.

    Raised (under the ``raise`` late-record policy) when a record's
    event timestamp is older than the current bounded-lateness
    watermark, i.e. its slice has already been closed.  The offending
    ``timestamp``, the ``watermark`` it fell behind, and the configured
    ``lateness_bound`` travel as attributes — and survive pickling
    across process boundaries — so the drop is diagnosable from logs.
    """

    def __init__(self, timestamp: float, watermark: float, lateness_bound: float):
        super().__init__(
            "late record: timestamp %r behind watermark %r "
            "(lateness bound %r)" % (timestamp, watermark, lateness_bound)
        )
        self.timestamp = timestamp
        self.watermark = watermark
        self.lateness_bound = lateness_bound

    def __reduce__(self):
        return (type(self), (self.timestamp, self.watermark, self.lateness_bound))


class PlanError(ReproError, ValueError):
    """A shared execution plan could not be built from the query set."""


class UnknownOperatorError(ReproError, KeyError):
    """The operator registry has no entry under the requested name."""


class ServiceError(ReproError, RuntimeError):
    """The sharded aggregation service was misconfigured or misused.

    Raised for lifecycle violations (submitting to a closed service),
    invalid service configuration (unknown backpressure policy or
    execution mode, non-positive shard counts), and worker failures the
    supervisor could not recover from.
    """


class PoisonRecordError(ReproError, RuntimeError):
    """A record's value raised inside the aggregate operator.

    The shard catches the underlying exception per record, wraps it in
    this type, and quarantines the record to the service's dead-letter
    sink instead of letting it kill the worker.  The original exception
    is preserved as ``__cause__`` (same process) and as the formatted
    ``cause`` attribute (across process boundaries, where tracebacks
    do not travel).
    """

    def __init__(self, message: str, cause: str = ""):
        super().__init__(message)
        #: ``repr`` of the originating exception (picklable).
        self.cause = cause

    def __reduce__(self):
        return (type(self), (self.args[0], self.cause))


class ShardFailedError(ReproError, RuntimeError):
    """A shard exhausted its restart budget (or lost all checkpoints).

    The supervisor stops retrying such a shard: its worker is torn
    down, records routed to it are shed to the dead-letter sink, and
    its keys are reported as degraded through the service stats.  The
    error type itself is raised only when recovery is *impossible in
    principle* (e.g. both the current and fallback checkpoint
    generations are corrupt) and the caller asked for fail-fast
    behaviour.
    """


class TransportError(ReproError, RuntimeError):
    """The shared-memory data plane was misused or misconfigured.

    Raised for lifecycle violations on a ring endpoint (reading before
    committing the previous frame, writing a payload larger than the
    ring can ever hold without the spill path) and for frame-codec
    misuse (encoding a batch the columnar codec declared unsupported).
    Corrupt bytes on the ring raise the more specific
    :class:`TornFrameError` instead.
    """


class TornFrameError(TransportError):
    """A frame read off a shared-memory ring failed validation.

    Raised when a frame's magic bytes, declared length, or CRC32 do
    not match the bytes actually present — the signature of a torn
    write (producer died mid-frame) or memory corruption.  The ring's
    contents after a torn frame are unrecoverable; the consumer's
    process exits and the supervisor's crash-recovery path (respawn,
    fresh rings, retained-batch replay) takes over.
    """


class ProtocolError(ReproError, ValueError):
    """A network frame violated the wire protocol.

    Raised by the frame codec for malformed input: bad magic bytes, an
    unsupported protocol version, an unknown frame type, a payload
    whose declared length exceeds the negotiated maximum, a truncated
    or oversized payload body, and unknown value tags inside an
    otherwise well-framed payload.  The server answers a decodable but
    semantically invalid request with an ``ERROR`` reply instead; this
    exception is reserved for bytes the codec cannot interpret at all,
    after which the connection is no longer in a known state and is
    closed.
    """


class ServerOverloadedError(ReproError, RuntimeError):
    """The server shed a request and the client's retries ran out.

    Under the ``shed`` admission policy a server whose in-flight
    budget is exhausted answers ``RETRY`` instead of queueing without
    bound.  The client library retries such replies with exponential
    backoff up to its configured budget; when the budget is spent the
    last ``RETRY`` surfaces as this exception so callers can distinguish
    sustained overload from transport failures.
    """


class ClientTimeoutError(ReproError, TimeoutError):
    """A client-side deadline expired while talking to the server.

    Covers both connection establishment (``connect_timeout``) and
    individual request round-trips (``request_timeout``).  The
    underlying socket/asyncio timeout is preserved as ``__cause__``
    where one exists; the connection should be considered dead, since
    an abandoned request's reply would desynchronise the
    request/reply pipeline.
    """


class TelemetryError(ReproError, ValueError):
    """A telemetry instrument was misdeclared or misused.

    Raised for invalid metric/label names, a metric name re-registered
    under a different instrument kind, non-ascending or non-finite
    histogram bucket bounds, merging histograms with different bounds,
    decrementing a counter, and out-of-range quantile fractions.
    Instrument *updates* (inc/observe/set) on well-formed instruments
    never raise: observation must stay safe on hot paths.
    """


class MergeCapabilityError(ReproError, TypeError):
    """Cross-shard merging would be unsound for this operator.

    Global answers recombine per-shard partial aggregates with
    ``combine``; that is exact only for operators with the
    :attr:`~repro.operators.base.AggregateOperator.mergeable`
    capability (order-insensitive partial recombination) and a
    SlickDeque processing path (invertible or selection-type).
    Operators without it must run in per-key mode instead.
    """
