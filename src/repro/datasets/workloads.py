"""Parametric ACQ workload generators (multi-tenant query sets).

The paper's motivation is "multi-query, multi-tenant environments,
where large numbers of ACQs with different ranges and slides operate
on the same data stream" (Section 1).  These generators produce such
query sets with controlled statistics, for the query-scaling
experiment and the sharing benches:

* uniform range mixes (dashboards at assorted time scales);
* power-of-two range ladders (the paper's own window sweeps);
* heavy-tailed mixes (a few very long analytics windows over many
  short alerting windows — the common production shape).

Everything is deterministic under a seed.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.windows.query import Query


def uniform_ranges(
    count: int,
    max_range: int,
    seed: int = 0,
) -> List[int]:
    """``count`` distinct ranges drawn uniformly from ``1..max_range``.

    When ``count >= max_range`` every range is returned (the paper's
    max-multi-query environment).
    """
    if count >= max_range:
        return list(range(1, max_range + 1))
    rng = random.Random(seed)
    return sorted(rng.sample(range(1, max_range + 1), count))


def ladder_ranges(count: int, base: int = 2) -> List[int]:
    """A geometric ladder: ``base^0, base^1, ..., base^(count-1)``."""
    return [base**exponent for exponent in range(count)]


def heavy_tailed_ranges(
    count: int,
    max_range: int,
    seed: int = 0,
    alpha: float = 1.5,
) -> List[int]:
    """Pareto-ish ranges: mostly short windows, a few huge ones."""
    rng = random.Random(seed)
    ranges = set()
    while len(ranges) < min(count, max_range):
        sample = int(rng.paretovariate(alpha))
        ranges.add(max(1, min(sample, max_range)))
    return sorted(ranges)


def tenant_queries(
    tenants: int,
    max_range: int,
    seed: int = 0,
    slides: Sequence[int] = (1, 2, 4, 5, 10),
) -> List[Query]:
    """Full ACQs (range *and* slide) for a multi-tenant workload.

    Each tenant gets a range from a heavy-tailed mix and a slide drawn
    from ``slides`` (clipped to its range so windows always overlap).
    """
    rng = random.Random(seed)
    ranges = heavy_tailed_ranges(tenants, max_range, seed=seed)
    queries = []
    for index, range_size in enumerate(ranges):
        slide = min(rng.choice(list(slides)), range_size)
        queries.append(
            Query(range_size, slide, name=f"tenant{index}")
        )
    return queries
