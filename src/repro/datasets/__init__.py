"""Workload generators: DEBS12-style, synthetic, and adversarial."""

from repro.datasets.adversarial import (
    ascending_stream,
    deque_filler,
    descending_stream,
    worst_case_slide_ops,
)
from repro.datasets.debs12 import (
    SAMPLE_RATE_HZ,
    STATE_FIELDS,
    Debs12Generator,
    debs12_array,
    debs12_events,
    debs12_values,
)
from repro.datasets.synthetic import (
    ascending,
    constant,
    descending,
    gaussian,
    materialise,
    sawtooth,
    uniform,
    uniform_ints,
)

__all__ = [
    "Debs12Generator",
    "debs12_events",
    "debs12_values",
    "debs12_array",
    "SAMPLE_RATE_HZ",
    "STATE_FIELDS",
    "uniform",
    "uniform_ints",
    "gaussian",
    "ascending",
    "descending",
    "sawtooth",
    "constant",
    "materialise",
    "deque_filler",
    "descending_stream",
    "ascending_stream",
    "worst_case_slide_ops",
]
