"""Adversarial inputs from the paper's worst-case analysis (§4.1).

"The worst time complexity of this algorithm happens when the input
(except the last partial of the window) is ordered in the opposite way
of the aggregate operator order, e.g., if Max is processed and the
entire input is ordered descendingly, forcing the deque to fill up,
after which the next input partial has the largest value so far.  This
causes the new element to perform n operations while deleting all
nodes on the deque."

These generators construct exactly those streams so the worst-case
bounds of Table 1 can be hit deterministically instead of waiting for
the 1-in-n! coincidence.
"""

from __future__ import annotations

from typing import Iterator, List


def deque_filler(window: int, cycles: int = 1) -> Iterator[int]:
    """Descending runs, each ended by a new global maximum.

    One cycle emits ``window − 1`` strictly descending values followed
    by a value larger than everything before it: the deque fills to
    ``window − 1`` nodes and the closing value deletes them all in a
    single ``n``-operation slide (for Max).
    """
    ceiling = 0
    for cycle in range(cycles):
        top = ceiling + window
        for offset in range(window - 1):
            yield top - 1 - offset
        ceiling = top + 1
        yield ceiling  # dominates every node currently on the deque


def descending_stream(count: int) -> Iterator[int]:
    """Monotone descending: worst-case *space* for the Max deque.

    Every value survives on the deque until it expires, so occupancy
    stays at the window size — the §4.2 worst case where SlickDeque
    (Non-Inv) costs its full ``2n + 4√n``.
    """
    return iter(range(count, 0, -1))


def ascending_stream(count: int) -> Iterator[int]:
    """Monotone ascending: best case — the deque holds one node.

    "In the best case, each incoming partial forces the deque to
    eliminate all of its nodes, making the space complexity constant."
    """
    return iter(range(count))


def worst_case_slide_ops(window: int) -> List[int]:
    """A minimal stream whose final slide costs ``window`` operations.

    ``window − 1`` descending values fill the deque; the final value
    dominates them all: its insertion performs one comparison per
    deleted node plus one for its own placement test.
    """
    return list(deque_filler(window, cycles=1))
