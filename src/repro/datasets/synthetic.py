"""Synthetic value streams for tests and micro-benchmarks.

Plain numeric generators with controlled distributions; every one is
deterministic under its seed.  The property-based tests draw from
these shapes because the SlickDeque (Non-Inv) cost profile is
input-dependent (Section 4.1).
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List


def uniform(
    count: int, low: float = 0.0, high: float = 1.0, seed: int = 0
) -> Iterator[float]:
    """I.i.d. uniform floats in ``[low, high)``."""
    rng = random.Random(seed)
    for _ in range(count):
        yield rng.uniform(low, high)


def uniform_ints(
    count: int, low: int = -100, high: int = 100, seed: int = 0
) -> Iterator[int]:
    """I.i.d. uniform integers in ``[low, high]`` (exact arithmetic)."""
    rng = random.Random(seed)
    for _ in range(count):
        yield rng.randint(low, high)


def gaussian(
    count: int, mu: float = 0.0, sigma: float = 1.0, seed: int = 0
) -> Iterator[float]:
    """I.i.d. normal floats."""
    rng = random.Random(seed)
    for _ in range(count):
        yield rng.gauss(mu, sigma)


def ascending(count: int, start: int = 0, step: int = 1) -> Iterator[int]:
    """Strictly increasing values — keeps a Max deque at one node."""
    return iter(range(start, start + count * step, step))


def descending(count: int, start: int = 0, step: int = 1) -> Iterator[int]:
    """Strictly decreasing values — fills a Max deque completely."""
    return iter(range(start, start - count * step, -step))


def sawtooth(count: int, period: int = 16) -> Iterator[int]:
    """Repeating ramp ``0, 1, ..., period-1`` — periodic deque churn."""
    wave = itertools.cycle(range(period))
    return itertools.islice(wave, count)


def constant(count: int, value: float = 1.0) -> Iterator[float]:
    """All-equal values — ties exercise dominance-on-equality."""
    return itertools.repeat(value, count)


def materialise(stream: Iterator) -> List:
    """List a stream (benchmarks pre-build inputs outside timing)."""
    return list(stream)
