"""Dependency-free metrics: counters, gauges, fixed-bucket histograms.

The observability substrate for the serving stack.  Three instrument
kinds, all thread-safe and snapshot-able:

* :class:`Counter` — monotone event counts (records accepted, frames
  decoded).  ``inc`` rejects negative deltas, so any snapshot sequence
  of a counter is non-decreasing by construction.
* :class:`Gauge` — instantaneous levels (in-flight records, open
  connections).
* :class:`Histogram` — fixed-bucket latency distributions.  Bucket
  boundaries are chosen at construction (defaults span 50 µs – 10 s,
  the range of interest for per-stage serving latencies); recorded
  values land in the first bucket whose upper bound contains them.
  :meth:`Histogram.quantile` is *exact within bucket resolution*: it
  returns the upper bound of the bucket holding the requested rank,
  which is the tightest upper estimate the sketch can give — the true
  sorted-reference quantile is always in the same bucket (a property
  the test suite pins).  Histograms over identical bounds merge by
  bucket-count addition, and a merge of histograms is indistinguishable
  from one histogram fed the concatenated observations.

:class:`MetricsRegistry` names and owns instruments (get-or-create,
label-set aware), snapshots them all consistently, and renders the
whole collection in the Prometheus text exposition format
(``render_text``) so any scraper — or ``curl`` — can read it.

Everything here is intentionally free of I/O and third-party
dependencies: the registry is pure bookkeeping, cheap enough to leave
enabled in production paths.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import TelemetryError

#: Default latency buckets, in seconds: 50 µs to 10 s, roughly
#: logarithmic.  Wide enough for wire framing (~µs) and shard folds
#: under backpressure (~s) on one scale.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise TelemetryError(
            f"invalid metric name {name!r}: must match "
            "[a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    return name


def _freeze_labels(
    labels: Optional[Mapping[str, Any]]
) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    frozen = []
    for key in sorted(labels):
        if not _LABEL_RE.match(str(key)):
            raise TelemetryError(
                f"invalid label name {key!r}: must match "
                "[a-zA-Z_][a-zA-Z0-9_]*"
            )
        frozen.append((str(key), str(labels[key])))
    return tuple(frozen)


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_number(value: float) -> str:
    """Prometheus-style number rendering (+Inf, integral floats bare)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Instrument:
    """Shared identity and locking for every instrument kind."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, Any]] = None,
    ):
        self.name = _check_name(name)
        self.help = help
        self.labels = _freeze_labels(labels)
        self._lock = threading.Lock()

    def _label_suffix(self) -> str:
        if not self.labels:
            return ""
        body = ",".join(
            f'{key}="{_escape_label_value(value)}"'
            for key, value in self.labels
        )
        return "{" + body + "}"


class Counter(_Instrument):
    """A monotonically increasing event count."""

    kind = "counter"

    def __init__(self, name, help="", labels=None):
        super().__init__(name, help, labels)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (>= 0) to the count."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name} cannot decrease "
                f"(inc({amount!r}))"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self):
        """The current count."""
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, Any]:
        """Wire-friendly state: ``{"value": n}``."""
        return {"value": self.value}


class Gauge(_Instrument):
    """An instantaneous level that can move both ways."""

    kind = "gauge"

    def __init__(self, name, help="", labels=None):
        super().__init__(name, help, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the level."""
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        """Raise the level by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        """Lower the level by ``amount``."""
        self.inc(-amount)

    @property
    def value(self):
        """The current level."""
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, Any]:
        """Wire-friendly state: ``{"value": x}``."""
        return {"value": self.value}


class Histogram(_Instrument):
    """Fixed-bucket distribution with exact-within-bucket quantiles.

    Args:
        name: Metric name.
        help: Free-text description for the exposition.
        labels: Optional label set distinguishing this series.
        buckets: Ascending finite upper bounds; an implicit ``+Inf``
            bucket catches everything above the last bound.
    """

    kind = "histogram"

    def __init__(
        self,
        name,
        help="",
        labels=None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise TelemetryError(
                f"histogram {name} needs at least one bucket bound"
            )
        if any(
            bounds[i] >= bounds[i + 1] for i in range(len(bounds) - 1)
        ):
            raise TelemetryError(
                f"histogram {name} bounds must be strictly ascending, "
                f"got {bounds}"
            )
        if any(not math.isfinite(b) for b in bounds):
            raise TelemetryError(
                f"histogram {name} bounds must be finite "
                "(+Inf is implicit)"
            )
        self.bounds = bounds
        # counts[i] pairs with bounds[i]; counts[-1] is the +Inf bucket.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        """Record one value."""
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        """Number of recorded values."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of recorded values."""
        with self._lock:
            return self._sum

    @property
    def minimum(self) -> Optional[float]:
        """Smallest recorded value, or ``None`` when empty."""
        with self._lock:
            return self._min if self._count else None

    @property
    def maximum(self) -> Optional[float]:
        """Largest recorded value, or ``None`` when empty."""
        with self._lock:
            return self._max if self._count else None

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; last is the +Inf bucket."""
        with self._lock:
            return list(self._counts)

    def bucket_of(self, value: float) -> int:
        """Index of the bucket a value lands in (len(bounds) = +Inf)."""
        return bisect_left(self.bounds, float(value))

    def quantile(self, fraction: float) -> Optional[float]:
        """The q-quantile, exact within bucket resolution.

        Uses the rank definition ``rank = ceil(q * count)`` (clamped to
        at least 1): the returned value is the upper bound of the
        bucket containing the rank-th smallest observation — precisely
        the bucket a sorted-reference oracle's value at the same rank
        falls in.  The open-ended ``+Inf`` bucket reports the observed
        maximum instead of infinity.  Returns ``None`` when empty.
        """
        if not 0.0 <= fraction <= 1.0:
            raise TelemetryError(
                f"quantile fraction must be in [0, 1], got {fraction}"
            )
        with self._lock:
            if not self._count:
                return None
            rank = max(1, math.ceil(fraction * self._count))
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= rank:
                    if index < len(self.bounds):
                        return self.bounds[index]
                    return self._max
            return self._max  # pragma: no cover - rank <= count

    def merge(self, other: "Histogram") -> None:
        """Absorb another histogram recorded over identical bounds.

        After the merge this histogram is indistinguishable from one
        that observed both value streams (bucket counts, count, sum,
        min, and max all add/combine exactly).
        """
        if self.bounds != other.bounds:
            raise TelemetryError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        with other._lock:
            counts = list(other._counts)
            other_sum = other._sum
            other_count = other._count
            other_min = other._min
            other_max = other._max
        with self._lock:
            for index, bucket_count in enumerate(counts):
                self._counts[index] += bucket_count
            self._sum += other_sum
            self._count += other_count
            if other_min < self._min:
                self._min = other_min
            if other_max > self._max:
                self._max = other_max

    @classmethod
    def merged(
        cls, histograms: Iterable["Histogram"], name: str = "merged"
    ) -> "Histogram":
        """A fresh histogram equal to the merge of ``histograms``."""
        result: Optional[Histogram] = None
        for histogram in histograms:
            if result is None:
                result = cls(name, buckets=histogram.bounds)
            result.merge(histogram)
        if result is None:
            raise TelemetryError("cannot merge zero histograms")
        return result

    def snapshot(self) -> Dict[str, Any]:
        """Wire-friendly state with cumulative buckets and quantiles."""
        with self._lock:
            count = self._count
            total = self._sum
            counts = list(self._counts)
            minimum = self._min if count else None
            maximum = self._max if count else None
        cumulative = 0
        buckets = []
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            upper = (
                self.bounds[index]
                if index < len(self.bounds)
                else math.inf
            )
            buckets.append([upper, cumulative])
        return {
            "count": count,
            "sum": total,
            "min": minimum,
            "max": maximum,
            "buckets": buckets,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named, labelled instruments with consistent snapshot/exposition.

    Get-or-create semantics: asking twice for the same (name, labels)
    returns the same instrument; asking for an existing name with a
    different *kind* is a bug and raises
    :class:`~repro.errors.TelemetryError`.  All methods are
    thread-safe.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> kind; (name, labels) -> instrument.
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self._instruments: Dict[
            Tuple[str, Tuple[Tuple[str, str], ...]], _Instrument
        ] = {}

    def _get_or_create(self, factory, name, help, labels, **kwargs):
        key = (name, _freeze_labels(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if existing.kind != factory.kind:
                    raise TelemetryError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {factory.kind}"
                    )
                return existing
            registered_kind = self._kinds.get(name)
            if (
                registered_kind is not None
                and registered_kind != factory.kind
            ):
                raise TelemetryError(
                    f"metric {name!r} already registered as "
                    f"{registered_kind}, not {factory.kind}"
                )
            instrument = factory(name, help, labels, **kwargs)
            self._kinds[name] = factory.kind
            if help or name not in self._help:
                self._help[name] = help
            self._instruments[key] = instrument
            return instrument

    def counter(self, name, help="", labels=None) -> Counter:
        """Get or create a counter series."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name, help="", labels=None) -> Gauge:
        """Get or create a gauge series."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self, name, help="", labels=None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram series."""
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    def instruments(self) -> List[_Instrument]:
        """Every registered instrument, in registration order."""
        with self._lock:
            return list(self._instruments.values())

    def get(self, name, labels=None) -> Optional[_Instrument]:
        """The instrument for (name, labels), or ``None``."""
        with self._lock:
            return self._instruments.get((name, _freeze_labels(labels)))

    def snapshot(self) -> Dict[str, Any]:
        """One wire-encodable dict of every metric's current state.

        Shape::

            {name: {"type": kind, "help": ...,
                    "series": [{"labels": {...}, ...state...}]}}

        Each instrument snapshots under its own lock, so every
        individual series is internally consistent (a histogram's
        ``count`` always equals its +Inf cumulative bucket).
        """
        result: Dict[str, Any] = {}
        for instrument in self.instruments():
            entry = result.setdefault(
                instrument.name,
                {
                    "type": instrument.kind,
                    "help": self._help.get(instrument.name, ""),
                    "series": [],
                },
            )
            state = instrument.snapshot()
            state["labels"] = dict(instrument.labels)
            entry["series"].append(state)
        return result

    def render_text(self) -> str:
        """The Prometheus text exposition of every metric.

        Counters and gauges render one sample per series; histograms
        render cumulative ``_bucket{le=...}`` samples plus ``_sum`` and
        ``_count``, all label-sets grouped under one HELP/TYPE header.
        """
        lines: List[str] = []
        by_name: Dict[str, List[_Instrument]] = {}
        for instrument in self.instruments():
            by_name.setdefault(instrument.name, []).append(instrument)
        for name, instruments in by_name.items():
            help_text = self._help.get(name, "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {instruments[0].kind}")
            for instrument in instruments:
                lines.extend(_render_instrument(instrument))
        return "\n".join(lines) + "\n"


def _render_instrument(instrument: _Instrument) -> List[str]:
    name = instrument.name
    if isinstance(instrument, Histogram):
        state = instrument.snapshot()
        lines = []
        for upper, cumulative in state["buckets"]:
            le = _format_number(float(upper))
            labels = dict(instrument.labels)
            body = ",".join(
                f'{k}="{_escape_label_value(v)}"'
                for k, v in labels.items()
            )
            prefix = f'{name}_bucket{{{body + "," if body else ""}le="{le}"}}'
            lines.append(f"{prefix} {cumulative}")
        suffix = instrument._label_suffix()
        lines.append(
            f"{name}_sum{suffix} {_format_number(float(state['sum']))}"
        )
        lines.append(f"{name}_count{suffix} {state['count']}")
        return lines
    value = instrument.snapshot()["value"]
    return [
        f"{name}{instrument._label_suffix()} "
        f"{_format_number(float(value))}"
    ]
