"""End-to-end observability: metrics, traces, and their exposition.

The package has three layers:

* :mod:`repro.telemetry.registry` — dependency-free instruments
  (:class:`Counter`, :class:`Gauge`, :class:`Histogram`) owned by a
  :class:`MetricsRegistry` that snapshots and renders them in the
  Prometheus text format.
* :mod:`repro.telemetry.trace` — :func:`mint_trace_id` and
  :class:`Tracer`: per-submission trace IDs propagated router → shard
  → merge → reply (and over the wire in the protocol v2 header), with
  a bounded slow-op log of per-stage breakdowns.
* :mod:`repro.telemetry.runtime` — :class:`Telemetry`, the hub
  bundling one registry with one tracer, plus the process-global
  :func:`install`/:func:`active`/:func:`uninstall` hook that lets
  pre-existing hot paths observe without API churn.

See ``docs/observability.md`` for the metric catalogue and trace
semantics.
"""

from repro.telemetry.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.runtime import (
    Telemetry,
    active,
    install,
    uninstall,
)
from repro.telemetry.trace import Tracer, mint_trace_id

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
    "Tracer",
    "active",
    "install",
    "mint_trace_id",
    "uninstall",
]
