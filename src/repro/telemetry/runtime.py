"""The telemetry hub: one registry + tracer, and the process-wide hook.

:class:`Telemetry` bundles a :class:`~repro.telemetry.registry.MetricsRegistry`
with a :class:`~repro.telemetry.trace.Tracer` so a server, a service,
and the engine underneath them can all observe into one place — a
single ``render_text()`` then shows every stage's histogram.

Hot paths that predate the serving stack (notably
:meth:`~repro.stream.engine.StreamEngine.feed_many`) cannot be handed a
hub explicitly without threading a parameter through every layer, so
this module also keeps a process-global *hook*: :func:`install` sets
it, :func:`active` reads it, :func:`uninstall` clears it.  The
uninstrumented cost is one module-attribute load and a ``None`` check
per call — measured by ``benchmarks/bench_telemetry_overhead.py`` and
pinned by the CI bench-smoke gate.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.trace import Tracer


class Telemetry:
    """A metrics registry and a tracer sharing one lifetime.

    Args:
        slow_threshold: Seconds above which a finished trace lands in
            the slow-op log (see :class:`~repro.telemetry.trace.Tracer`).
        max_slow_ops: Bound on retained slow-op entries.
    """

    def __init__(
        self,
        slow_threshold: float = 0.050,
        max_slow_ops: int = 128,
    ):
        self.registry = MetricsRegistry()
        self.tracer = Tracer(
            slow_threshold=slow_threshold, max_slow_ops=max_slow_ops
        )

    def snapshot(self) -> Dict[str, Any]:
        """Wire-encodable state: ``{"metrics": ..., "traces": ...}``."""
        return {
            "metrics": self.registry.snapshot(),
            "traces": self.tracer.snapshot(),
        }

    def render_text(self) -> str:
        """The Prometheus text exposition of the registry."""
        return self.registry.render_text()


_hook_lock = threading.Lock()
_hook: Optional[Telemetry] = None


def install(telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Install a process-global telemetry hub and return it.

    Passing ``None`` installs a fresh :class:`Telemetry`.  Replaces any
    previously installed hub.
    """
    global _hook
    with _hook_lock:
        _hook = telemetry if telemetry is not None else Telemetry()
        return _hook


def uninstall() -> None:
    """Remove the process-global hub (instrumentation goes quiet)."""
    global _hook
    with _hook_lock:
        _hook = None


def active() -> Optional[Telemetry]:
    """The installed hub, or ``None``.

    Deliberately lock-free: hot paths call this per batch, and a torn
    read can only return the old or the new hub, both safe targets.
    """
    return _hook
