"""Lightweight trace spans and the slow-operation log.

A *trace* follows one submission through the serving stack.  Its ID is
a random 63-bit integer minted at ``submit``/SUBMIT-frame time
(:func:`mint_trace_id`); the same integer rides the request through
router, shard worker, and global merge, crosses the wire in the
protocol v2 header, and comes back on the reply — so a slow answer can
be matched to the exact stages that produced it.

Stages are recorded with :meth:`Tracer.span` (a context manager timing
a block) or :meth:`Tracer.record` (attributing an externally measured
duration, e.g. a shard worker's ``busy_seconds`` observed by the
parent process).  :meth:`Tracer.finish` closes a trace, computes its
total and per-stage breakdown, and — when the total exceeds the
configured threshold — appends it to a bounded in-memory slow-op log
(:meth:`Tracer.slow_ops`) that the STATS frame exposes.

Everything is thread-safe and bounded: at most ``max_live_traces``
open traces and ``max_slow_ops`` retained slow entries, so a stuck
client cannot grow server memory.
"""

from __future__ import annotations

import secrets
import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, List, Optional

#: Trace IDs are uniform in [1, 2**63): they fit a signed 64-bit slot
#: and the wire codec's fixed-width field, and 0 is reserved to mean
#: "no trace" in the protocol header.
_TRACE_ID_BITS = 63


def mint_trace_id() -> int:
    """A fresh random non-zero trace ID (63 usable bits)."""
    while True:
        trace_id = secrets.randbits(_TRACE_ID_BITS)
        if trace_id:
            return trace_id


class Tracer:
    """Collects per-trace stage timings and keeps a slow-op log.

    Args:
        slow_threshold: Traces whose wall-clock total (first stage
            start to ``finish``) meets or exceeds this many seconds are
            retained in the slow-op log with their per-stage breakdown.
        max_slow_ops: Bound on retained slow entries (oldest evicted).
        max_live_traces: Bound on concurrently open traces; the oldest
            open trace is dropped (never finished) beyond this, so an
            abandoned trace cannot leak.
    """

    def __init__(
        self,
        slow_threshold: float = 0.050,
        max_slow_ops: int = 128,
        max_live_traces: int = 4096,
    ):
        self.slow_threshold = float(slow_threshold)
        self.max_slow_ops = int(max_slow_ops)
        self.max_live_traces = int(max_live_traces)
        self._lock = threading.Lock()
        # trace_id -> {"started": t, "stages": [(stage, seconds), ...]}
        self._live: "OrderedDict[int, Dict[str, Any]]" = OrderedDict()
        self._slow: Deque[Dict[str, Any]] = deque(maxlen=self.max_slow_ops)
        self._finished = 0
        self._slow_total = 0

    def _entry(self, trace_id: int) -> Dict[str, Any]:
        entry = self._live.get(trace_id)
        if entry is None:
            entry = {"started": time.perf_counter(), "stages": []}
            self._live[trace_id] = entry
            while len(self._live) > self.max_live_traces:
                self._live.popitem(last=False)
        return entry

    def record(
        self, trace_id: Optional[int], stage: str, seconds: float
    ) -> None:
        """Attribute an externally measured duration to a stage.

        A ``None`` trace ID is a no-op, so call sites need no guard.
        """
        if trace_id is None:
            return
        with self._lock:
            self._entry(trace_id)["stages"].append(
                (stage, float(seconds))
            )

    @contextmanager
    def span(self, trace_id: Optional[int], stage: str):
        """Time a block and record it against ``trace_id``/``stage``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record(
                trace_id, stage, time.perf_counter() - started
            )

    def finish(self, trace_id: Optional[int]) -> Optional[Dict[str, Any]]:
        """Close a trace and return its summary.

        The summary maps ``trace_id``, ``total_seconds`` (wall clock
        from the first recorded stage), and ``stages`` (ordered
        ``[stage, seconds]`` pairs, repeated stages kept separate).
        Slow traces are additionally retained in :meth:`slow_ops`.
        Finishing an unknown/``None`` trace returns ``None``.
        """
        if trace_id is None:
            return None
        with self._lock:
            entry = self._live.pop(trace_id, None)
            if entry is None:
                return None
            total = time.perf_counter() - entry["started"]
            summary = {
                "trace_id": trace_id,
                "total_seconds": total,
                "stages": [
                    [stage, seconds]
                    for stage, seconds in entry["stages"]
                ],
            }
            self._finished += 1
            if total >= self.slow_threshold:
                self._slow_total += 1
                self._slow.append(summary)
            return summary

    def live_count(self) -> int:
        """Number of currently open traces."""
        with self._lock:
            return len(self._live)

    def slow_ops(self) -> List[Dict[str, Any]]:
        """Retained slow-trace summaries, oldest first."""
        with self._lock:
            return [dict(entry) for entry in self._slow]

    def snapshot(self) -> Dict[str, Any]:
        """Wire-friendly state: counts plus the slow-op log."""
        with self._lock:
            return {
                "live": len(self._live),
                "finished": self._finished,
                "slow_total": self._slow_total,
                "slow_threshold": self.slow_threshold,
                "slow_ops": [dict(entry) for entry in self._slow],
            }
