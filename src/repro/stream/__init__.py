"""Stream-processing substrate: sources, engine, sinks, ordering.

The "stand-alone stream aggregator platform" of the paper's Section
5.1, in miniature: pull-based sources, the shared/independent/Cutty
pipelines, composable sinks, and the slightly-out-of-order reorder
buffer of Section 3.1.
"""

from repro.stream.engine import CuttyPipeline, StreamEngine
from repro.stream.outoforder import ReorderBuffer, absorbable
from repro.stream.punctuation import (
    PunctuatedCuttyPipeline,
    Punctuation,
    bandwidth_overhead,
    punctuate,
)
from repro.stream.records import Record, SensorEvent
from repro.stream.sink import (
    CallbackSink,
    CollectSink,
    CountingSink,
    DeadLetter,
    DeadLetterSink,
    LatestSink,
    Sink,
)
from repro.stream.source import Source, from_events, from_values

__all__ = [
    "Record",
    "SensorEvent",
    "Source",
    "from_values",
    "from_events",
    "Sink",
    "CollectSink",
    "LatestSink",
    "CallbackSink",
    "CountingSink",
    "DeadLetter",
    "DeadLetterSink",
    "StreamEngine",
    "CuttyPipeline",
    "ReorderBuffer",
    "absorbable",
    "Punctuation",
    "punctuate",
    "bandwidth_overhead",
    "PunctuatedCuttyPipeline",
]
