"""Stream record types.

The window algorithms operate on plain values; these record types exist
for the dataset and engine layers, where tuples carry positions and
timestamps (the DEBS12 schema has "3 energy readings and 51 values
signifying various sensor states ... sampled at the rate of 100Hz",
paper Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple


@dataclass(frozen=True)
class Record:
    """A positioned, timestamped stream tuple.

    Attributes:
        position: 1-based arrival sequence number.
        timestamp: Event time in seconds.
        value: The payload handed to the aggregation operator.
    """

    position: int
    timestamp: float
    value: Any


@dataclass(frozen=True)
class KeyedEvent:
    """A keyed, event-timestamped record as submitted to the service.

    The event-time ingestion surface (``submit_event`` on the service,
    gateway, and network clients; the ``SUBMIT_EVENT_BATCH`` wire
    frame) speaks this shape: ordering is derived from ``timestamp`` —
    the time the event *happened* — rather than from the arrival
    position the transport assigns, and ``key`` routes the record to
    its shard exactly as in the count-based path.
    """

    key: Any
    timestamp: float
    value: Any

    def astuple(self) -> Tuple[Any, float, Any]:
        """The ``(key, timestamp, value)`` wire/batch representation."""
        return (self.key, self.timestamp, self.value)


@dataclass(frozen=True)
class SensorEvent:
    """A DEBS12-schema manufacturing-equipment event.

    Attributes:
        position: 1-based sequence number.
        timestamp: Event time in seconds (100 Hz sampling).
        energy: The three energy readings the paper aggregates
            ("aggregating three different energy readings from the
            DEBS12 dataset", Section 5.2).
        states: 51 sensor-state fields (binary/ordinal), carried for
            schema fidelity; the reproduced experiments do not
            aggregate them, exactly like the paper.
    """

    position: int
    timestamp: float
    energy: Tuple[float, float, float]
    states: Tuple[int, ...] = field(default=(), repr=False)

    def reading(self, index: int) -> float:
        """One of the three energy readings (0, 1 or 2)."""
        return self.energy[index]
