"""Answer sinks: where the engine delivers query results.

A sink receives ``(position, query, answer)`` triples — the engine's
equivalent of Algorithm 1's "send answers.getVal(q.range) as answer to
q".  Sinks compose: the engine fans every answer out to all registered
sinks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.windows.query import Query

AnswerTriple = Tuple[int, Query, Any]


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined record and the reason it could not be processed.

    Attributes:
        key: The record's routing key.
        value: The record's payload, exactly as submitted.
        position: Global 1-based stream position (``0`` when the record
            never received one, e.g. shed before routing).
        shard_id: The shard that owned (or would have owned) the record.
        error: ``repr`` of the exception that quarantined it — picklable,
            so it survives the worker→supervisor queue crossing.
    """

    key: Any
    value: Any
    position: int
    shard_id: int
    error: str


class Sink:
    """Base sink: silently discards answers (useful for benchmarks)."""

    def emit(self, position: int, query: Query, answer: Any) -> None:
        """Receive one answer."""

    def close(self) -> None:
        """Called once when the stream is exhausted."""


class CollectSink(Sink):
    """Keep every answer in memory (small streams, tests, examples)."""

    def __init__(self) -> None:
        self.answers: List[AnswerTriple] = []

    def emit(self, position: int, query: Query, answer: Any) -> None:
        self.answers.append((position, query, answer))

    def by_query(self) -> Dict[Query, List[Tuple[int, Any]]]:
        """Answers grouped per query, in arrival order."""
        grouped: Dict[Query, List[Tuple[int, Any]]] = {}
        for position, query, answer in self.answers:
            grouped.setdefault(query, []).append((position, answer))
        return grouped


class LatestSink(Sink):
    """Retain only the most recent answer per query (dashboards)."""

    def __init__(self) -> None:
        self.latest: Dict[Query, Tuple[int, Any]] = {}

    def emit(self, position: int, query: Query, answer: Any) -> None:
        self.latest[query] = (position, answer)


class CallbackSink(Sink):
    """Invoke a user callback per answer; optionally another at close."""

    def __init__(
        self,
        callback: Callable[[int, Query, Any], None],
        on_close: Optional[Callable[[], None]] = None,
    ):
        self._callback = callback
        self._on_close = on_close

    def emit(self, position: int, query: Query, answer: Any) -> None:
        self._callback(position, query, answer)

    def close(self) -> None:
        if self._on_close is not None:
            self._on_close()


class DeadLetterSink(Sink):
    """Quarantine for records the pipeline could not process.

    The sharded service routes every poison record (a value that raised
    inside the operator) and every record shed because its shard
    exceeded the restart budget here, instead of letting the failure
    kill a worker or silently vanish.  Each entry is a
    :class:`DeadLetter` carrying the record, its shard, and the
    originating exception's ``repr``.
    """

    def __init__(self) -> None:
        self.letters: List[DeadLetter] = []

    def quarantine(self, letter: DeadLetter) -> None:
        """Record one quarantined record."""
        self.letters.append(letter)

    def __len__(self) -> int:
        """Number of quarantined records."""
        return len(self.letters)

    def by_shard(self) -> Dict[int, List[DeadLetter]]:
        """Dead letters grouped by originating shard."""
        grouped: Dict[int, List[DeadLetter]] = {}
        for letter in self.letters:
            grouped.setdefault(letter.shard_id, []).append(letter)
        return grouped

    def keys(self) -> List[Any]:
        """Distinct keys with at least one dead letter, in first-seen order."""
        seen: List[Any] = []
        for letter in self.letters:
            if letter.key not in seen:
                seen.append(letter.key)
        return seen


class CountingSink(Sink):
    """Count answers without retaining them (throughput runs)."""

    def __init__(self) -> None:
        self.count = 0

    def emit(self, position: int, query: Query, answer: Any) -> None:
        self.count += 1
