"""Answer sinks: where the engine delivers query results.

A sink receives ``(position, query, answer)`` triples — the engine's
equivalent of Algorithm 1's "send answers.getVal(q.range) as answer to
q".  Sinks compose: the engine fans every answer out to all registered
sinks.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.windows.query import Query

AnswerTriple = Tuple[int, Query, Any]


class Sink:
    """Base sink: silently discards answers (useful for benchmarks)."""

    def emit(self, position: int, query: Query, answer: Any) -> None:
        """Receive one answer."""

    def close(self) -> None:
        """Called once when the stream is exhausted."""


class CollectSink(Sink):
    """Keep every answer in memory (small streams, tests, examples)."""

    def __init__(self) -> None:
        self.answers: List[AnswerTriple] = []

    def emit(self, position: int, query: Query, answer: Any) -> None:
        self.answers.append((position, query, answer))

    def by_query(self) -> Dict[Query, List[Tuple[int, Any]]]:
        """Answers grouped per query, in arrival order."""
        grouped: Dict[Query, List[Tuple[int, Any]]] = {}
        for position, query, answer in self.answers:
            grouped.setdefault(query, []).append((position, answer))
        return grouped


class LatestSink(Sink):
    """Retain only the most recent answer per query (dashboards)."""

    def __init__(self) -> None:
        self.latest: Dict[Query, Tuple[int, Any]] = {}

    def emit(self, position: int, query: Query, answer: Any) -> None:
        self.latest[query] = (position, answer)


class CallbackSink(Sink):
    """Invoke a user callback per answer; optionally another at close."""

    def __init__(
        self,
        callback: Callable[[int, Query, Any], None],
        on_close: Optional[Callable[[], None]] = None,
    ):
        self._callback = callback
        self._on_close = on_close

    def emit(self, position: int, query: Query, answer: Any) -> None:
        self._callback(position, query, answer)

    def close(self) -> None:
        if self._on_close is not None:
            self._on_close()


class CountingSink(Sink):
    """Count answers without retaining them (throughput runs)."""

    def __init__(self) -> None:
        self.count = 0

    def emit(self, position: int, query: Query, answer: Any) -> None:
        self.count += 1
