"""Stream punctuations for Cutty slicing (paper Section 2.1).

Cutty "comes at a cost: additional punctuations have to be sent over
the data stream to the execution module to indicate the beginnings of
the new partials, which reduces the effective bandwidth of the stream
and can slow down the system, especially if the workload includes a
large number of queries with small windows."

This module makes that cost concrete: a punctuated stream interleaves
:class:`Punctuation` markers with data tuples; the optimizer side
(:func:`punctuate`) injects a marker wherever any registered query's
window begins, and the execution side
(:class:`PunctuatedCuttyPipeline`) cuts partials *only* where markers
say so — it owns no window arithmetic of its own, exactly like a
remote execution module behind a stream.  Bandwidth overhead is then
simply ``markers / (markers + tuples)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Sequence, Tuple, Union

from repro.errors import PlanError
from repro.operators.base import AggregateOperator
from repro.operators.views import partial_view, raw_view
from repro.registry import get_algorithm
from repro.windows.query import Query


@dataclass(frozen=True)
class Punctuation:
    """A partial-boundary marker injected into the stream.

    Attributes:
        position: The stream position *after* which the new partial
            begins (the boundary follows the tuple at ``position``).
    """

    position: int


#: A punctuated stream element: either a data value or a marker.
Element = Union[Punctuation, Any]


def punctuate(
    values: Iterable[Any], queries: Sequence[Query]
) -> Iterator[Element]:
    """Interleave Cutty punctuations into a value stream.

    A marker is emitted after position ``t`` whenever some query's
    window starts there (``t ≡ −r (mod s)``), deduplicated across
    queries.
    """
    if not queries:
        raise PlanError("punctuate requires at least one query")
    phases = {
        ((-q.range_size) % q.slide, q.slide) for q in queries
    }
    position = 0
    for value in values:
        position += 1
        yield value
        if any(position % slide == phase % slide
               for phase, slide in phases):
            yield Punctuation(position)


def bandwidth_overhead(
    stream: Iterable[Element],
) -> Tuple[int, int, float]:
    """Count ``(tuples, punctuations, overhead fraction)`` of a stream."""
    tuples = 0
    markers = 0
    for element in stream:
        if isinstance(element, Punctuation):
            markers += 1
        else:
            tuples += 1
    total = tuples + markers
    return tuples, markers, (markers / total if total else 0.0)


class PunctuatedCuttyPipeline:
    """Cutty execution driven purely by stream punctuations.

    Unlike :class:`~repro.stream.engine.CuttyPipeline` (which computes
    edge phases locally), this pipeline closes a partial exactly when
    a :class:`Punctuation` arrives — the division of labour the paper
    describes between the optimizer and the execution module.
    """

    def __init__(
        self,
        query: Query,
        operator: AggregateOperator,
        algorithm: str = "slickdeque",
    ):
        self.query = query
        self.operator = operator
        self._raw = raw_view(operator)
        # A punctuation arrives *after* the tuple that ends a partial,
        # so at answer time the newest full partial is still open:
        # ceil(r/s) − 1 completed partials sit inside the window.
        self._completed_per_window = (
            query.range_size - 1
        ) // query.slide
        if self._completed_per_window > 0:
            spec = get_algorithm(algorithm)
            self._final = spec.single(
                partial_view(operator), self._completed_per_window
            )
        else:
            self._final = None
        self._open = self._raw.identity
        self._position = 0
        self._closed_partials = 0
        #: Punctuations consumed.
        self.punctuations = 0

    def feed(self, element: Element):
        """Consume one stream element; return ``(position, answer)``
        when an answer is due, else ``None``."""
        if isinstance(element, Punctuation):
            self.punctuations += 1
            if self._final is not None:
                self._final.push(self._open)
                self._closed_partials += 1
            self._open = self._raw.identity
            return None
        self._position += 1
        self._open = self._raw.combine(
            self._open, self._raw.lift(element)
        )
        if self._position % self.query.slide == 0:
            if self._final is not None and self._closed_partials:
                agg = self._raw.combine(self._final.query(), self._open)
            else:
                agg = self._open
            return (self._position, self.operator.lower(agg))
        return None

    def run(self, stream: Iterable[Element]) -> List[Tuple[int, Any]]:
        """Consume a punctuated stream, returning every answer."""
        answers = []
        for element in stream:
            produced = self.feed(element)
            if produced is not None:
                answers.append(produced)
        return answers
