"""A unified, monotone watermark model for count- and event-time streams.

A *watermark* is a monotone promise about completeness: once a stream's
watermark reaches ``w``, no record ordered before ``w`` will be accepted
any more, so every window (slice) that ends at or before ``w`` can be
closed and its aggregate emitted.  Before this module existed the repo
had two disconnected incarnations of that idea — the count-based slice
watermark the :class:`~repro.service.partition.Router` stamps on flush
rounds, and the implicit "latest timestamp seen" cursor inside
:class:`~repro.windows.timebased.TimeSlicer` — with no shared contract.
Both are now instances of :class:`Watermark`:

* count streams advance it with ``SliceClock.slices_closed_by(position)``
  (the number of *slices* fully covered by the records routed so far);
* event-time streams advance it with a :class:`BoundedLatenessWatermark`
  value (``max event timestamp seen − allowed lateness``) mapped through
  a :class:`TimeSliceClock` to the same "number of closed slices" unit.

Monotonicity is enforced at the type level: :meth:`Watermark.advance`
ignores regressions instead of trusting every caller to pre-compare,
which is what lets a restarted shard worker replay old batches without
ever reporting a watermark older than its checkpoint.
"""

from __future__ import annotations

import math
from typing import Union

from ..errors import InvalidQueryError

__all__ = ["Watermark", "BoundedLatenessWatermark", "TimeSliceClock"]

Ordered = Union[int, float]


class Watermark:
    """A monotone high-water cursor over any totally ordered domain.

    The single invariant is that :attr:`value` never decreases.  All the
    repo's completeness tracking — router flush rounds, per-shard merge
    frontiers, time-slicer cursors — funnels through this type so the
    invariant lives in exactly one place.
    """

    __slots__ = ("_value",)

    def __init__(self, value: Ordered = 0):
        self._value = value

    @property
    def value(self) -> Ordered:
        return self._value

    def advance(self, value: Ordered) -> bool:
        """Raise the watermark to ``value`` if that is an advance.

        Returns ``True`` when the watermark moved; a stale (smaller or
        equal) value is ignored and returns ``False`` — never an error,
        because replayed batches and racing shards legitimately present
        old watermarks.
        """
        if value > self._value:
            self._value = value
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Watermark({self._value!r})"


class BoundedLatenessWatermark(Watermark):
    """An event-time watermark trailing the newest timestamp by a bound.

    ``observe(ts)`` folds one record's event timestamp in; the watermark
    value is ``max timestamp seen − lateness``.  A record is *late* —
    its slice may already be closed — exactly when its timestamp is
    strictly below :attr:`value`; a record at the watermark itself is
    still acceptable.  Monotone because the max is monotone and the
    bound is constant.
    """

    __slots__ = ("lateness", "_high")

    def __init__(self, lateness: float):
        if not (lateness >= 0.0) or not math.isfinite(lateness):
            raise InvalidQueryError(
                f"lateness bound must be finite and >= 0, got {lateness!r}"
            )
        super().__init__(-math.inf)
        self.lateness = float(lateness)
        self._high = -math.inf

    @property
    def high(self) -> float:
        """The newest event timestamp observed so far (``-inf`` if none)."""
        return self._high

    def observe(self, timestamp: float) -> bool:
        """Fold one event timestamp in; returns ``True`` on advance."""
        if timestamp > self._high:
            self._high = timestamp
            return self.advance(timestamp - self.lateness)
        return False

    def is_late(self, timestamp: float) -> bool:
        """Whether ``timestamp`` is strictly behind the watermark.

        A record *at* the watermark is still acceptable — lateness
        requires being strictly below it.
        """
        return timestamp < self.value


class TimeSliceClock:
    """Maps event timestamps to time-slice indexes and back.

    The event-time twin of :class:`repro.service.slices.SliceClock`:
    where that clock counts slices closed by an arrival *position*, this
    one counts slices closed by a watermark *timestamp*.  Slice ``k``
    covers the half-open interval ``[origin + k*g, origin + (k+1)*g)``
    for slice width ``g``, matching ``TimeSlicer``'s assignment rule, so
    a record exactly on a boundary belongs to the *next* slice.
    """

    __slots__ = ("slice_seconds", "origin")

    def __init__(self, slice_seconds: float, origin: float = 0.0):
        if not (slice_seconds > 0.0) or not math.isfinite(slice_seconds):
            raise InvalidQueryError(
                f"slice width must be finite and > 0, got {slice_seconds!r}"
            )
        self.slice_seconds = float(slice_seconds)
        self.origin = float(origin)

    def slice_of(self, timestamp: float) -> int:
        """The slice index the record at ``timestamp`` belongs to."""
        return int((timestamp - self.origin) // self.slice_seconds)

    def slices_closed_by(self, watermark: float) -> int:
        """How many slices a watermark at ``watermark`` seconds closes.

        Slice ``k`` closes once no record with timestamp below its end
        ``origin + (k+1)*g`` can arrive — i.e. once the watermark
        reaches that end.  Clamped at zero so a fresh stream (watermark
        still ``-inf``) reports no closed slices instead of a negative
        count.
        """
        if watermark == -math.inf:
            return 0
        return max(0, int((watermark - self.origin) // self.slice_seconds))

    def start_time(self, index: int) -> float:
        """Inclusive start of slice ``index``."""
        return self.origin + index * self.slice_seconds

    def end_time(self, index: int) -> float:
        """The exclusive end timestamp of slice ``index``."""
        return self.origin + (index + 1) * self.slice_seconds
