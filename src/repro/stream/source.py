"""Stream sources: pull-based value suppliers for the engine.

Sources are plain iterables of values with an optional extraction step,
so dataset events, raw numbers, and generator pipelines all plug into
the same engine.  The model is pull-based ("classic streaming scenario
when all new partial aggregates are processed ... one-by-one as they
become available", Section 3.1) — no rate control, no buffering.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional


class Source:
    """An iterable of stream values with an optional value extractor.

    Args:
        items: Any iterable (list, generator, dataset stream).
        extract: Maps each item to the aggregated value; identity when
            omitted.  For :class:`~repro.stream.records.SensorEvent`
            streams this is typically ``lambda e: e.reading(0)``.
        limit: Optional cap on the number of items consumed.
    """

    def __init__(
        self,
        items: Iterable[Any],
        extract: Optional[Callable[[Any], Any]] = None,
        limit: Optional[int] = None,
    ):
        self._items = items
        self._extract = extract
        self._limit = limit

    def __iter__(self) -> Iterator[Any]:
        count = 0
        for item in self._items:
            if self._limit is not None and count >= self._limit:
                return
            count += 1
            yield item if self._extract is None else self._extract(item)


def from_values(values: Iterable[Any], limit: Optional[int] = None) -> Source:
    """Source over raw values."""
    return Source(values, limit=limit)


def from_events(
    events: Iterable[Any], reading: int = 0, limit: Optional[int] = None
) -> Source:
    """Source extracting one energy reading from sensor events."""
    return Source(
        events, extract=lambda event: event.reading(reading), limit=limit
    )


def reordered(
    positioned_items: Iterable[Any], slack: int
) -> Iterator[Any]:
    """Re-sequence a slightly out-of-order ``(position, value)`` stream.

    The §3.1 arrival-order assumption as a source adapter: values come
    out in position order provided no tuple is more than ``slack``
    positions late; later arrivals raise
    :class:`~repro.errors.OutOfOrderError`.  Plug between a network
    source and an engine::

        engine.run(reordered(network_tuples, slack=16))
    """
    from repro.stream.outoforder import ReorderBuffer

    buffer = ReorderBuffer(slack)
    for position, value in positioned_items:
        for _, released in buffer.push(position, value):
            yield released
    for _, released in buffer.drain():
        yield released
