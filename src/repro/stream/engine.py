"""The stream engine: source → slicing → final aggregation → sinks.

A deliberately small DSMS substrate (the paper evaluates on "a
stand-alone stream aggregator platform", Section 5.1) with three
pipelines:

* **Shared** — the paper's system: one
  :class:`~repro.core.multiquery.SharedSlickDeque` runs every
  registered ACQ over one shared plan (Panes or Pairs).
* **Independent** — each ACQ gets its own plan, partial aggregator,
  and single-query final aggregator (any registry algorithm).  This is
  the no-sharing baseline of the sharing ablation bench.
* **Cutty** — single-query Cutty slicing: partials start only at
  window starts and the answer combines the completed partials with
  the running open partial (Section 2.1, Figure 3).
"""

from __future__ import annotations

from itertools import islice
from time import perf_counter as _perf_counter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.multiquery import SharedSlickDeque
from repro.kernels import as_sequence
from repro.errors import PlanError
from repro.operators.base import AggregateOperator
from repro.operators.views import partial_view, raw_view
from repro.registry import get_algorithm
from repro.stream.sink import Sink
from repro.telemetry import runtime as _telemetry_runtime
from repro.windows.partial import PartialAggregator
from repro.windows.plan import build_shared_plan
from repro.windows.query import Query


class _IndependentQuery:
    """One ACQ with its own plan and single-query final aggregator."""

    def __init__(
        self, query: Query, operator: AggregateOperator,
        technique: str, algorithm: str,
    ):
        self.query = query
        self._operator = operator
        plan = build_shared_plan([query], technique)
        if not plan.uniform_lookback:
            raise PlanError(
                f"single-query plan for {query.name} has non-uniform "
                "lookback; this cannot happen with panes/pairs slicing"
            )
        self._partials = PartialAggregator(raw_view(operator), plan)
        lookback = max(
            sq.lookback for step in plan.steps for sq in step.answers
        )
        spec = get_algorithm(algorithm)
        self._final = spec.single(partial_view(operator), lookback)

    def feed(self, value: Any) -> List[Tuple[int, Query, Any]]:
        completed = self._partials.feed(value)
        if completed is None:
            return []
        self._final.push(completed.value)
        if not completed.step.answers:
            return []
        raw = self._final.query()
        return [
            (completed.position, self.query, self._operator.lower(raw))
        ]


class StreamEngine:
    """Run a set of ACQs over a value stream, delivering to sinks.

    Args:
        queries: The ACQs to register.
        operator: The aggregate operation shared by all of them
            (Section 2.3: compatible aggregations share one plan).
        technique: ``"panes"`` or ``"pairs"``.
        mode: ``"shared"`` (SlickDeque over one shared plan) or
            ``"independent"`` (one plan + final aggregator per query).
        algorithm: Final-aggregation algorithm for independent mode.
        sinks: Answer consumers; a triple goes to every sink.
    """

    def __init__(
        self,
        queries: Sequence[Query],
        operator: AggregateOperator,
        technique: str = "pairs",
        mode: str = "shared",
        algorithm: str = "slickdeque",
        sinks: Optional[Sequence[Sink]] = None,
    ):
        self.queries = tuple(queries)
        self.operator = operator
        self.mode = mode
        self.sinks: List[Sink] = list(sinks or [])
        self.answers_emitted = 0
        self.tuples_consumed = 0
        if mode == "shared":
            self._shared: Optional[SharedSlickDeque] = SharedSlickDeque(
                self.queries, operator, technique
            )
            self._independent: List[_IndependentQuery] = []
        elif mode == "independent":
            self._shared = None
            # Same answer order as the shared plan: descending range,
            # ties broken by ascending slide then name (the plan's
            # stable sort over its sorted unique query set).
            self._independent = [
                _IndependentQuery(q, operator, technique, algorithm)
                for q in sorted(
                    set(self.queries),
                    key=lambda q: (-q.range_size, q.slide, q.name),
                )
            ]
        else:
            raise PlanError(
                f"unknown engine mode {mode!r}; expected 'shared' or "
                "'independent'"
            )

    def add_sink(self, sink: Sink) -> None:
        """Register another answer consumer."""
        self.sinks.append(sink)

    def _deliver(self, triples: Iterable[Tuple[int, Query, Any]]) -> None:
        for position, query, answer in triples:
            self.answers_emitted += 1
            for sink in self.sinks:
                sink.emit(position, query, answer)

    def feed(self, value: Any) -> None:
        """Consume one stream value."""
        self.tuples_consumed += 1
        if self._shared is not None:
            self._deliver(self._shared.feed(value))
        else:
            for independent in self._independent:
                self._deliver(independent.feed(value))

    def feed_many(self, values: Sequence[Any]) -> None:
        """Consume a batch of stream values (bulk ingestion).

        Shared mode hands the whole batch to the plan's bulk path —
        partials fold with one kernel call per segment.  Independent
        mode keeps the per-value, per-query delivery order of
        :meth:`feed`.  Either way every sink sees exactly the triples,
        in exactly the order, that per-value feeding would produce.

        When a process-global telemetry hub is installed (see
        :func:`repro.telemetry.install`) each call observes its batch
        latency and tuple/answer counts into the hub; with no hub the
        instrumentation costs one module-attribute load and a ``None``
        check (pinned by ``benchmarks/bench_telemetry_overhead.py``).
        """
        hub = _telemetry_runtime.active()
        if hub is None:
            values = as_sequence(values)
            self.tuples_consumed += len(values)
            if self._shared is not None:
                self._deliver(self._shared.feed_many(values))
            else:
                for value in values:
                    for independent in self._independent:
                        self._deliver(independent.feed(value))
            return
        started = _perf_counter()
        answers_before = self.answers_emitted
        values = as_sequence(values)
        self.tuples_consumed += len(values)
        if self._shared is not None:
            self._deliver(self._shared.feed_many(values))
        else:
            for value in values:
                for independent in self._independent:
                    self._deliver(independent.feed(value))
        registry = hub.registry
        registry.histogram(
            "repro_engine_feed_many_seconds",
            "StreamEngine.feed_many batch latency",
        ).observe(_perf_counter() - started)
        registry.counter(
            "repro_engine_tuples_total",
            "Tuples consumed through StreamEngine.feed_many",
        ).inc(len(values))
        emitted = self.answers_emitted - answers_before
        if emitted:
            registry.counter(
                "repro_engine_answers_total",
                "Answers emitted through StreamEngine.feed_many",
            ).inc(emitted)

    def run(
        self, values: Iterable[Any], batch_size: int = 1024
    ) -> None:
        """Consume an entire stream, then close every sink.

        The stream is drained in ``batch_size``-tuple chunks through
        :meth:`feed_many`; sources never need to fit in memory.
        """
        iterator = iter(values)
        while True:
            batch = list(islice(iterator, batch_size))
            if not batch:
                break
            self.feed_many(batch)
        for sink in self.sinks:
            sink.close()


class EventTimeEngine:
    """Run time-based ACQs over a *disordered* timestamped stream.

    The single-node composition of the event-time layer: records flow
    through a :class:`~repro.stream.outoforder.TimestampReorderBuffer`
    (bounded-lateness re-sequencing with a configurable late-record
    policy) into a :class:`~repro.windows.timebased.TimeWindowEngine`,
    whose slice closing is driven by the released, now-sorted stream.
    For any stream whose disorder stays within ``lateness`` seconds the
    answers are identical to feeding the sorted stream through
    :class:`TimeWindowEngine` directly — the property suite in
    ``tests/property/test_prop_event_time.py`` holds this for every
    registry operator — which also makes this engine the single-node
    oracle the sharded event-time service is checked against.

    Args:
        queries: Time-based ACQs (``TimeQuery`` instances).
        operator: The shared aggregate operation.
        lateness: Bounded-lateness allowance in seconds; records more
            than this far behind the newest timestamp are late.
        late_policy: One of
            :data:`~repro.stream.outoforder.LATE_POLICIES`.
        on_late: Optional ``(timestamp, value)`` handler invoked for
            late records under the ``drop``/``side_output`` policies.
        origin: Timestamp of the first slice boundary.
        resolution: Duration resolution for the tick arithmetic.
        technique: ``"panes"`` or ``"pairs"`` slicing for the inner
            shared plan.
    """

    def __init__(
        self,
        queries,
        operator: AggregateOperator,
        lateness: float = 0.0,
        late_policy: str = "raise",
        on_late=None,
        origin: float = 0.0,
        resolution: Optional[float] = None,
        technique: str = "pairs",
    ):
        from repro.stream.outoforder import TimestampReorderBuffer
        from repro.windows.timebased import DEFAULT_RESOLUTION, TimeWindowEngine

        self._inner = TimeWindowEngine(
            queries,
            operator,
            origin=origin,
            resolution=DEFAULT_RESOLUTION if resolution is None else resolution,
            technique=technique,
        )
        self._reorder = TimestampReorderBuffer(lateness, late_policy, on_late)
        self.queries = self._inner.queries
        self.operator = operator

    @property
    def watermark(self) -> float:
        """Current event-time watermark (``-inf`` before any record)."""
        return self._reorder.watermark

    @property
    def late_records(self) -> int:
        """Records rejected as late so far (drop/side-output policies)."""
        return self._reorder.late_records

    def feed(self, timestamp: float, value: Any) -> List[Tuple[float, Any, Any]]:
        """Consume one timestamped tuple; return released answers."""
        released: List[Tuple[float, Any]] = []
        self._reorder.push_into(timestamp, value, released)
        if not released:
            return released
        inner_feed = self._inner.feed
        answers: List[Tuple[float, Any, Any]] = []
        for released_ts, released_value in released:
            answers.extend(inner_feed(released_ts, released_value))
        return answers

    def feed_many(
        self, records: Iterable[Tuple[float, Any]]
    ) -> List[Tuple[float, Any, Any]]:
        """Consume a batch of ``(timestamp, value)`` pairs at once.

        Semantically identical to calling :meth:`feed` per record (the
        reorder buffer fixes the release order either way) but pays the
        engine-hop overhead once per batch instead of once per record —
        the shape the sharded service ingests in.

        When a mid-batch record raises (late under the ``raise``
        policy, or a non-finite timestamp), every record the partial
        batch released has still been fed downstream before the
        exception propagates — the reorder buffer has already let them
        go and will not re-release them — so subsequent answers stay
        correct; the answers those releases produced are not returned.
        """
        released: List[Tuple[float, Any]] = []
        try:
            self._reorder.push_many_into(records, released)
        finally:
            inner_feed = self._inner.feed
            answers: List[Tuple[float, Any, Any]] = []
            for released_ts, released_value in released:
                answers.extend(inner_feed(released_ts, released_value))
        return answers

    def finish(self) -> List[Tuple[float, Any, Any]]:
        """Drain the reorder buffer, close the open slice, and answer."""
        answers: List[Tuple[float, Any, Any]] = []
        for released_ts, released in self._reorder.drain():
            answers.extend(self._inner.feed(released_ts, released))
        answers.extend(self._inner.finish())
        return answers

    def run(self, stream: Iterable[Tuple[float, Any]]):
        """Stream ``(timestamp, value)`` pairs; yield every answer."""
        for timestamp, value in stream:
            yield from self.feed(timestamp, value)
        yield from self.finish()


class CuttyPipeline:
    """Single-query Cutty execution (Section 2.1, Figure 3).

    Partials begin only at window starts; at reporting positions the
    final aggregation "execute[s] in the middle of the partial
    aggregation calculation by accessing the current value in the
    partial".  The inner aggregator holds the ``⌊r/s⌋`` completed
    partials of the current window; the answer combines its raw window
    aggregate with the open partial's running value.
    """

    def __init__(
        self,
        query: Query,
        operator: AggregateOperator,
        algorithm: str = "slickdeque",
    ):
        self.query = query
        self.operator = operator
        self._raw = raw_view(operator)
        self._completed_per_window = query.range_size // query.slide
        spec = get_algorithm(algorithm)
        if self._completed_per_window > 0:
            self._final = spec.single(
                partial_view(operator), self._completed_per_window
            )
        else:
            self._final = None
        self._open = self._raw.identity
        self._position = 0
        # Edge phase: partial boundaries fall after positions ≡ -r (mod s).
        self._edge_phase = (-query.range_size) % query.slide
        #: Punctuations consumed (edges signalled on the stream).
        self.punctuations = 0

    def feed(self, value: Any) -> Optional[Tuple[int, Any]]:
        """Consume one tuple; return ``(position, answer)`` when due."""
        self._position += 1
        self._open = self._raw.combine(self._open, self._raw.lift(value))
        if self._position % self.query.slide == self._edge_phase:
            # A punctuation marks the beginning of a new window's
            # partial (the Cutty cost discussed in Section 2.1).
            self.punctuations += 1
            if self._final is not None:
                self._final.push(self._open)
            self._open = self._raw.identity
        if self._position % self.query.slide == 0:
            if self._final is not None:
                agg = self._raw.combine(self._final.query(), self._open)
            else:
                agg = self._open
            return (self._position, self.operator.lower(agg))
        return None

    def run(self, values: Iterable[Any]) -> List[Tuple[int, Any]]:
        """Consume a stream, returning every emitted answer."""
        answers = []
        for value in values:
            produced = self.feed(value)
            if produced is not None:
                answers.append(produced)
        return answers
