"""Slightly-out-of-order arrival handling (paper Section 3.1).

"The arriving tuples have to be in-order or slightly out-of-order.  As
long as the out-of-order tuples are within the same partial
aggregation, the final result will not be affected.  If, however, some
tuples fall outside of their partial, inconsistencies in the final
result may arise."

:class:`ReorderBuffer` implements exactly that contract: tuples may
arrive up to ``slack`` positions late and are re-sequenced before
reaching the partial aggregator; anything later raises
:class:`~repro.errors.OutOfOrderError` (or is routed to a drop handler
when one is supplied).  Commutative operators additionally allow
absorbing late tuples *within* the open partial without re-sequencing,
which :func:`absorbable` checks.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_left, insort
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import LateRecordError, OutOfOrderError
from repro.operators.base import AggregateOperator
from repro.stream.watermark import BoundedLatenessWatermark

#: How a :class:`TimestampReorderBuffer` treats a record behind the
#: watermark: ``raise`` surfaces :class:`LateRecordError` to the caller,
#: ``drop`` diverts it to the ``on_late`` handler (a dead-letter sink),
#: ``side_output`` counts it (and still calls ``on_late`` when given)
#: without ever folding it into a closed slice.
LATE_POLICIES = ("raise", "drop", "side_output")

_INF = math.inf
_isfinite = math.isfinite


def _reject_nonfinite(timestamp: float, watermark: float) -> None:
    """Raise for a NaN/±inf event timestamp before it touches state.

    A NaN compares ``False`` against both the high mark and the
    watermark, so it would be insort-ed into the pending buffer and —
    because ``buffer[0][0] < watermark`` is also ``False`` for NaN —
    block the release scan forever; ``+inf`` would pin the watermark at
    infinity and mark every later record late.  Neither is a *late*
    record, so this is not subject to the late policy: it is invalid
    input and always raises.
    """
    raise OutOfOrderError(
        f"event timestamp must be finite, got {timestamp!r}",
        position=timestamp,
        watermark=watermark,
    )


class ReorderBuffer:
    """Re-sequence a slightly out-of-order positioned stream.

    Args:
        slack: Maximum allowed lateness in positions.  A tuple with
            position ``p`` must arrive before any tuple with position
            ``≥ p + slack`` is *released*.
        on_late: Optional handler for too-late tuples; when omitted,
            :class:`OutOfOrderError` is raised instead.
    """

    def __init__(
        self,
        slack: int,
        on_late: Optional[Callable[[int, Any], None]] = None,
    ):
        if slack < 0:
            raise OutOfOrderError(f"slack must be >= 0, got {slack}")
        self.slack = slack
        self._on_late = on_late
        self._heap: List[Tuple[int, Any]] = []
        self._released = 0  # highest position already emitted

    def push(self, position: int, value: Any) -> Iterator[Tuple[int, Any]]:
        """Accept one tuple; yield every tuple this arrival releases.

        Tuples are released once the buffer holds more than ``slack``
        pending positions, guaranteeing in-order delivery for streams
        whose lateness never exceeds the slack.
        """
        if position <= self._released:
            if self._on_late is not None:
                self._on_late(position, value)
                return
            raise OutOfOrderError(
                f"tuple at position {position} arrived after position "
                f"{self._released} was already released "
                f"(slack={self.slack})",
                position=position,
                watermark=self._released,
            )
        heapq.heappush(self._heap, (position, value))
        while len(self._heap) > self.slack:
            yield self._pop()

    def _pop(self) -> Tuple[int, Any]:
        position, value = heapq.heappop(self._heap)
        self._released = position
        return (position, value)

    def drain(self) -> Iterator[Tuple[int, Any]]:
        """Release everything still buffered (end of stream)."""
        while self._heap:
            yield self._pop()

    def reorder(
        self, items: Iterable[Tuple[int, Any]]
    ) -> Iterator[Tuple[int, Any]]:
        """Re-sequence an entire ``(position, value)`` iterable."""
        for position, value in items:
            yield from self.push(position, value)
        yield from self.drain()


class TimestampReorderBuffer:
    """Re-sequence a bounded-lateness *event-time* stream.

    The event-time twin of :class:`ReorderBuffer`: where that class
    buffers a fixed number of arrival positions, this one buffers by
    *time* — a record may arrive up to ``lateness`` seconds behind the
    newest timestamp seen and still be released in timestamp order.
    Internally a :class:`BoundedLatenessWatermark` tracks
    ``max timestamp − lateness``; records are released strictly below
    the watermark (a record *at* the watermark could still be preceded
    by an equal-timestamp arrival), and an incoming record strictly
    behind the watermark is *late* and handled per ``policy`` (one of
    :data:`LATE_POLICIES`).

    Ties on timestamp release in arrival order (a monotone sequence
    number breaks ordering ties), so the output order is deterministic.
    """

    def __init__(
        self,
        lateness: float,
        policy: str = "raise",
        on_late: Optional[Callable[[float, Any], None]] = None,
    ):
        if policy not in LATE_POLICIES:
            raise OutOfOrderError(
                f"unknown late-record policy {policy!r}; "
                f"expected one of {LATE_POLICIES}"
            )
        self.policy = policy
        self._on_late = on_late
        # Validation (finite, >= 0) lives in the watermark type; the
        # buffer then tracks high/value as plain floats because the hot
        # path cannot afford a property access per record.
        self._lateness = BoundedLatenessWatermark(lateness).lateness
        self._high = float("-inf")
        self._value = float("-inf")
        # Pending records kept *sorted* by (timestamp, arrival seq).
        # For the dominant near-in-order workload an arrival lands at
        # the tail (insort degenerates to append) and releases peel a
        # short prefix, so every structural operation stays in C; a
        # heap would pay a Python-level sift on every single pop.
        self._buffer: List[Tuple[float, int, Any]] = []
        self._seq = 0
        #: Count of records rejected as late (never folded downstream).
        self.late_records = 0

    @property
    def lateness(self) -> float:
        return self._lateness

    @property
    def watermark(self) -> float:
        """Current event-time watermark (``-inf`` before any record)."""
        return self._value

    @property
    def high(self) -> float:
        """Newest event timestamp observed (``-inf`` before any record)."""
        return self._high

    def __len__(self) -> int:
        return len(self._buffer)

    def push_into(
        self, timestamp: float, item: Any, out: List[Tuple[float, Any]]
    ) -> None:
        """Accept one record; append every record this arrival releases.

        The allocation-free twin of :meth:`push` for per-record hot
        loops: released ``(timestamp, item)`` pairs are appended to
        ``out`` instead of travelling through a generator.  Released
        records come out in ``(timestamp, arrival)`` order and are
        final: their slices may close as soon as the caller observes
        the new :attr:`watermark`.

        Raises:
            OutOfOrderError: for a non-finite (NaN/±inf) timestamp,
                regardless of the late policy; the buffer is untouched.
        """
        if not _isfinite(timestamp):
            _reject_nonfinite(timestamp, self._value)
        buffer = self._buffer
        if timestamp > self._high:
            self._high = timestamp
            value = timestamp - self._lateness
            if value > self._value:
                self._value = value
            buffer.append((timestamp, self._seq, item))
        elif timestamp < self._value:
            self.late_records += 1
            if self.policy == "raise":
                raise LateRecordError(timestamp, self._value, self._lateness)
            if self._on_late is not None:
                self._on_late(timestamp, item)
            return
        else:
            insort(buffer, (timestamp, self._seq, item))
        self._seq += 1
        value = self._value
        if buffer[0][0] < value:
            # ``(value,)`` sorts before every ``(value, seq, item)``
            # entry, so this cut is exactly "timestamp < value".
            cut = bisect_left(buffer, (value,))
            for released_ts, _, released in buffer[:cut]:
                out.append((released_ts, released))
            del buffer[:cut]

    def push_many_into(
        self,
        records: Iterable[Tuple[float, Any]],
        out: List[Tuple[float, Any]],
    ) -> None:
        """Accept a batch of ``(timestamp, item)`` records at once.

        The watermark advances at *batch* granularity — the periodic
        watermark of stream-processing practice, where per-record
        generation is a pathological special case.  An in-order arrival
        (``timestamp > high``, never late by construction) is a bare
        list append; the release scan runs once at the end of the
        batch.  Compared with per-record :meth:`push_into` this is
        never stricter: a mid-batch record is judged against the
        watermark as of the *previous* batch, so disorder that
        per-record pushing would reject at the bound's edge may still
        be accepted here, but release order and the bounded-lateness
        guarantee are identical.

        When a mid-batch record raises (late under the ``raise``
        policy, or a non-finite timestamp), records accepted before it
        stay accepted and the end-of-batch release still runs: ``out``
        then holds every record the partial batch released, and the
        caller MUST process it even though the call raised — those
        records have left the buffer and will not be re-released.
        """
        buffer = self._buffer
        high = self._high
        seq = self._seq
        try:
            for timestamp, item in records:
                if timestamp > high:
                    # NaN and -inf never win this comparison and fall
                    # through to push_into's finiteness check; +inf is
                    # the one non-finite value that must be caught here
                    # before it pins the high mark at infinity.
                    if timestamp == _INF:
                        _reject_nonfinite(timestamp, self._value)
                    high = timestamp
                    buffer.append((timestamp, seq, item))
                    seq += 1
                else:
                    self._high = high
                    self._seq = seq
                    self.push_into(timestamp, item, out)
                    high = self._high
                    seq = self._seq
        finally:
            self._high = high
            self._seq = seq
            advanced = high - self._lateness
            if advanced > self._value:
                self._value = advanced
            value = self._value
            if buffer and buffer[0][0] < value:
                cut = bisect_left(buffer, (value,))
                released = buffer[:cut]
                del buffer[:cut]
                out.extend(
                    [(ts, item) for ts, _, item in released]
                )

    def push(self, timestamp: float, item: Any) -> Iterator[Tuple[float, Any]]:
        """Accept one record; yield every record this arrival releases.

        A late record under the ``raise`` policy raises at the call
        itself (the releases are computed eagerly); iterate the result
        for the re-sequenced records.
        """
        out: List[Tuple[float, Any]] = []
        self.push_into(timestamp, item, out)
        return iter(out)

    def drain(self) -> Iterator[Tuple[float, Any]]:
        """Release everything still buffered (end of stream)."""
        buffer = self._buffer
        self._buffer = []
        for timestamp, _, item in buffer:
            yield (timestamp, item)


def absorbable(
    operator: AggregateOperator, lateness: int, open_partial_length: int
) -> bool:
    """Whether a late tuple can be folded into the open partial.

    This is the paper's "within the same partial aggregation" case: the
    tuple belongs somewhere inside the partial currently accumulating.
    Folding it at the current position is only order-safe for
    commutative operators.
    """
    return operator.commutative and lateness < open_partial_length
