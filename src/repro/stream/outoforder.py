"""Slightly-out-of-order arrival handling (paper Section 3.1).

"The arriving tuples have to be in-order or slightly out-of-order.  As
long as the out-of-order tuples are within the same partial
aggregation, the final result will not be affected.  If, however, some
tuples fall outside of their partial, inconsistencies in the final
result may arise."

:class:`ReorderBuffer` implements exactly that contract: tuples may
arrive up to ``slack`` positions late and are re-sequenced before
reaching the partial aggregator; anything later raises
:class:`~repro.errors.OutOfOrderError` (or is routed to a drop handler
when one is supplied).  Commutative operators additionally allow
absorbing late tuples *within* the open partial without re-sequencing,
which :func:`absorbable` checks.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import OutOfOrderError
from repro.operators.base import AggregateOperator


class ReorderBuffer:
    """Re-sequence a slightly out-of-order positioned stream.

    Args:
        slack: Maximum allowed lateness in positions.  A tuple with
            position ``p`` must arrive before any tuple with position
            ``≥ p + slack`` is *released*.
        on_late: Optional handler for too-late tuples; when omitted,
            :class:`OutOfOrderError` is raised instead.
    """

    def __init__(
        self,
        slack: int,
        on_late: Optional[Callable[[int, Any], None]] = None,
    ):
        if slack < 0:
            raise OutOfOrderError(f"slack must be >= 0, got {slack}")
        self.slack = slack
        self._on_late = on_late
        self._heap: List[Tuple[int, Any]] = []
        self._released = 0  # highest position already emitted

    def push(self, position: int, value: Any) -> Iterator[Tuple[int, Any]]:
        """Accept one tuple; yield every tuple this arrival releases.

        Tuples are released once the buffer holds more than ``slack``
        pending positions, guaranteeing in-order delivery for streams
        whose lateness never exceeds the slack.
        """
        if position <= self._released:
            if self._on_late is not None:
                self._on_late(position, value)
                return
            raise OutOfOrderError(
                f"tuple at position {position} arrived after position "
                f"{self._released} was already released "
                f"(slack={self.slack})"
            )
        heapq.heappush(self._heap, (position, value))
        while len(self._heap) > self.slack:
            yield self._pop()

    def _pop(self) -> Tuple[int, Any]:
        position, value = heapq.heappop(self._heap)
        self._released = position
        return (position, value)

    def drain(self) -> Iterator[Tuple[int, Any]]:
        """Release everything still buffered (end of stream)."""
        while self._heap:
            yield self._pop()

    def reorder(
        self, items: Iterable[Tuple[int, Any]]
    ) -> Iterator[Tuple[int, Any]]:
        """Re-sequence an entire ``(position, value)`` iterable."""
        for position, value in items:
            yield from self.push(position, value)
        yield from self.drain()


def absorbable(
    operator: AggregateOperator, lateness: int, open_partial_length: int
) -> bool:
    """Whether a late tuple can be folded into the open partial.

    This is the paper's "within the same partial aggregation" case: the
    tuple belongs somewhere inside the partial currently accumulating.
    Folding it at the current position is only order-safe for
    commutative operators.
    """
    return operator.commutative and lateness < open_partial_length
