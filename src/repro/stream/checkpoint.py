"""Aggregator state checkpointing (fault-tolerance substrate).

Production DSMSs snapshot operator state so a restarted node resumes
mid-window instead of replaying history.  All aggregators in this
library are plain Python objects with picklable state, so a checkpoint
is a pickle — with two deliberate guarantees layered on top:

* a **format header** with a version and the aggregator's class name,
  so restores fail loudly on mismatched library versions or classes;
* a **resume-equivalence contract**, enforced by the test suite: for
  every algorithm, ``restore(snapshot(a))`` then feeding the rest of a
  stream produces byte-identical answers to never having stopped.

Limitations (documented, tested): operators capturing unpicklable
callables (e.g. an ``ArgMaxOperator`` over a lambda key) cannot be
checkpointed; use a module-level function as the key instead.
"""

from __future__ import annotations

import pickle
from typing import Any, BinaryIO

from repro.errors import ReproError

#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1

_MAGIC = b"repro-ckpt"


class CheckpointError(ReproError, RuntimeError):
    """A snapshot could not be written or restored."""


def _library_version() -> str:
    # Imported lazily: the package root does not import this module, but
    # modules imported during ``repro/__init__`` (e.g. the sharded
    # service) do, and ``__version__`` is only bound at the end of it.
    from repro import __version__

    return __version__


def snapshot(aggregator: Any) -> bytes:
    """Serialise an aggregator (or engine) to bytes.

    Raises:
        CheckpointError: when the object holds unpicklable state.
    """
    try:
        payload = pickle.dumps(aggregator, protocol=4)
    except Exception as error:
        raise CheckpointError(
            f"cannot snapshot {type(aggregator).__name__}: {error}"
        ) from error
    header = pickle.dumps(
        {
            "magic": _MAGIC,
            "version": FORMAT_VERSION,
            "type": type(aggregator).__name__,
            "library_version": _library_version(),
        },
        protocol=4,
    )
    return (
        len(header).to_bytes(4, "big") + header + payload
    )


def restore(data: bytes, expected_type: str = "") -> Any:
    """Rebuild an aggregator from :func:`snapshot` bytes.

    Args:
        data: Bytes produced by :func:`snapshot`.
        expected_type: Optional class-name check; mismatches raise.

    Raises:
        CheckpointError: corrupt data, wrong format version, or a type
            mismatch.
    """
    try:
        header_length = int.from_bytes(data[:4], "big")
        header = pickle.loads(data[4:4 + header_length])
        if header.get("magic") != _MAGIC:
            raise ValueError("bad magic")
    except Exception as error:
        raise CheckpointError(
            f"not a repro checkpoint: {error}"
        ) from error
    if header["version"] != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint format v{header['version']} (written by repro "
            f"{header.get('library_version', 'unknown')}) is not "
            f"supported by this library (repro {_library_version()}, "
            f"format v{FORMAT_VERSION})"
        )
    if expected_type and header["type"] != expected_type:
        raise CheckpointError(
            f"checkpoint holds a {header['type']}, expected "
            f"{expected_type}"
        )
    try:
        return pickle.loads(data[4 + header_length:])
    except Exception as error:
        raise CheckpointError(
            f"corrupt checkpoint payload: {error}"
        ) from error


def save(aggregator: Any, handle: BinaryIO) -> None:
    """Write a snapshot to an open binary file."""
    handle.write(snapshot(aggregator))


def load(handle: BinaryIO, expected_type: str = "") -> Any:
    """Read a snapshot from an open binary file."""
    return restore(handle.read(), expected_type=expected_type)
