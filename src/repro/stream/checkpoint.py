"""Aggregator state checkpointing (fault-tolerance substrate).

Production DSMSs snapshot operator state so a restarted node resumes
mid-window instead of replaying history.  All aggregators in this
library are plain Python objects with picklable state, so a checkpoint
is a pickle — with three deliberate guarantees layered on top:

* a **format header** with a version and the aggregator's class name,
  so restores fail loudly on mismatched library versions or classes;
* a **CRC32 payload checksum** (format v2), so a bit-flipped or
  truncated snapshot is detected *before* unpickling instead of
  producing silently-wrong operator state (or an arbitrary
  ``pickle`` error);
* a **resume-equivalence contract**, enforced by the test suite: for
  every algorithm, ``restore(snapshot(a))`` then feeding the rest of a
  stream produces byte-identical answers to never having stopped.

Format v1 snapshots (no checksum) are still readable; v2 snapshots are
verified.  :func:`verify` performs the cheap header+checksum check
without unpickling the payload — the supervisor uses it to decide
whether a checkpoint generation is trustworthy before handing it to a
respawned worker.

Limitations (documented, tested): operators capturing unpicklable
callables (e.g. an ``ArgMaxOperator`` over a lambda key) cannot be
checkpointed; use a module-level function as the key instead.
"""

from __future__ import annotations

import pickle
import zlib
from typing import Any, BinaryIO

from repro.errors import ReproError

#: Bump when the on-disk layout changes incompatibly.
#: v1: length-prefixed header + pickle payload.
#: v2: header additionally carries ``crc32`` of the payload bytes.
FORMAT_VERSION = 2

#: Oldest format version :func:`restore` still reads.
OLDEST_READABLE_VERSION = 1

_MAGIC = b"repro-ckpt"


class CheckpointError(ReproError, RuntimeError):
    """A snapshot could not be written or restored."""


def _library_version() -> str:
    # Imported lazily: the package root does not import this module, but
    # modules imported during ``repro/__init__`` (e.g. the sharded
    # service) do, and ``__version__`` is only bound at the end of it.
    from repro import __version__

    return __version__


def snapshot(aggregator: Any) -> bytes:
    """Serialise an aggregator (or engine) to bytes.

    Raises:
        CheckpointError: when the object holds unpicklable state.
    """
    try:
        payload = pickle.dumps(aggregator, protocol=4)
    except Exception as error:
        raise CheckpointError(
            f"cannot snapshot {type(aggregator).__name__}: {error}"
        ) from error
    header = pickle.dumps(
        {
            "magic": _MAGIC,
            "version": FORMAT_VERSION,
            "type": type(aggregator).__name__,
            "library_version": _library_version(),
            "crc32": zlib.crc32(payload),
        },
        protocol=4,
    )
    return (
        len(header).to_bytes(4, "big") + header + payload
    )


def _parse_header(data: bytes):
    """Split checkpoint bytes into ``(header_dict, payload_bytes)``.

    Raises:
        CheckpointError: truncated input, bad magic, or an unreadable
            format version.
    """
    if len(data) < 4:
        raise CheckpointError(
            f"truncated checkpoint: {len(data)} bytes is shorter than "
            "the 4-byte header length prefix"
        )
    header_length = int.from_bytes(data[:4], "big")
    if len(data) < 4 + header_length:
        raise CheckpointError(
            f"truncated or not a repro checkpoint: header declares "
            f"{header_length} bytes but only {len(data) - 4} follow "
            "the length prefix"
        )
    try:
        header = pickle.loads(data[4:4 + header_length])
        if header.get("magic") != _MAGIC:
            raise ValueError("bad magic")
        version = header["version"]
    except CheckpointError:
        raise
    except Exception as error:
        # Includes a header that unpickles but is structurally wrong
        # (bit-flipped into a non-dict, or missing required fields).
        raise CheckpointError(
            f"not a repro checkpoint: {error!r}"
        ) from error
    if not OLDEST_READABLE_VERSION <= version <= FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint format v{version} (written by repro "
            f"{header.get('library_version', 'unknown')}) is not "
            f"supported by this library (repro {_library_version()}, "
            f"formats v{OLDEST_READABLE_VERSION}..v{FORMAT_VERSION})"
        )
    return header, data[4 + header_length:]


def _check_payload(header, payload: bytes) -> None:
    """Verify the v2 checksum (v1 headers carry none)."""
    expected = header.get("crc32")
    if expected is None:
        return  # v1 snapshot: no checksum recorded.
    actual = zlib.crc32(payload)
    if actual != expected:
        raise CheckpointError(
            f"checkpoint payload failed its CRC32 check (recorded "
            f"{expected:#010x}, computed {actual:#010x}); the snapshot "
            "bytes were corrupted after being written"
        )


def verify(data: bytes) -> None:
    """Cheaply validate checkpoint bytes without unpickling the payload.

    Checks the header structure, format version, and (for v2) the
    payload CRC32.  The supervisor calls this before trusting a
    checkpoint generation for worker recovery.

    Raises:
        CheckpointError: the bytes are not a restorable checkpoint.
    """
    header, payload = _parse_header(data)
    _check_payload(header, payload)


def restore(data: bytes, expected_type: str = "") -> Any:
    """Rebuild an aggregator from :func:`snapshot` bytes.

    Args:
        data: Bytes produced by :func:`snapshot`.
        expected_type: Optional class-name check; mismatches raise.

    Raises:
        CheckpointError: corrupt data, wrong format version, a failed
            checksum, or a type mismatch.
    """
    header, payload = _parse_header(data)
    if expected_type and header["type"] != expected_type:
        raise CheckpointError(
            f"checkpoint holds a {header['type']}, expected "
            f"{expected_type}"
        )
    _check_payload(header, payload)
    try:
        return pickle.loads(payload)
    except Exception as error:
        raise CheckpointError(
            f"corrupt checkpoint payload: {error}"
        ) from error


def save(aggregator: Any, handle: BinaryIO) -> None:
    """Write a snapshot to an open binary file."""
    handle.write(snapshot(aggregator))


def load(handle: BinaryIO, expected_type: str = "") -> Any:
    """Read a snapshot from an open binary file."""
    return restore(handle.read(), expected_type=expected_type)
