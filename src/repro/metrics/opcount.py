"""Aggregate-operation counting (paper Section 4.1 / Table 1).

Convenience drivers around
:class:`~repro.operators.instrumented.CountingOperator` and
:class:`~repro.operators.instrumented.SlideOpRecorder`: build an
instrumented aggregator, run a stream, and summarise amortized and
worst-case operations per slide — the paper's own complexity metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.operators.base import AggregateOperator
from repro.operators.instrumented import CountingOperator, SlideOpRecorder


@dataclass(frozen=True)
class OpCountResult:
    """Per-slide ⊕/⊖ profile over one run."""

    slides: int
    total_ops: int
    amortized: float
    worst_case: int
    per_slide: Sequence[int]

    def steady_state(self, warmup_slides: int) -> "OpCountResult":
        """The same profile ignoring the first ``warmup_slides``.

        Table 1 describes steady-state behaviour; the first window's
        fill can be cheaper (SlickDeque Non-Inv) or more expensive
        (FlatFIT's initial reset) than steady state.
        """
        tail = list(self.per_slide[warmup_slides:])
        if not tail:
            tail = list(self.per_slide)
        total = sum(tail)
        return OpCountResult(
            slides=len(tail),
            total_ops=total,
            amortized=total / len(tail),
            worst_case=max(tail),
            per_slide=tail,
        )


def count_ops(
    make_aggregator: Callable[[CountingOperator], Any],
    operator: AggregateOperator,
    values: Iterable[Any],
) -> OpCountResult:
    """Run a stream through an instrumented aggregator, per-slide.

    Args:
        make_aggregator: Builds the aggregator from the counting
            wrapper, e.g. ``lambda op: DABAAggregator(op, 64)``.
        operator: The raw operator to instrument.
        values: The stream; every value is one slide.
    """
    counting = CountingOperator(operator)
    aggregator = make_aggregator(counting)
    recorder = SlideOpRecorder(counting)
    step = aggregator.step
    mark = recorder.mark_slide
    for value in values:
        step(value)
        mark()
    return OpCountResult(
        slides=recorder.slides,
        total_ops=recorder.total_ops,
        amortized=recorder.amortized_ops,
        worst_case=recorder.worst_case_ops,
        per_slide=tuple(recorder.per_slide),
    )


def count_ops_single(
    algorithm_factory: Callable[[AggregateOperator, int], Any],
    operator: AggregateOperator,
    window: int,
    values: Iterable[Any],
    warmup_slides: Optional[int] = None,
) -> OpCountResult:
    """Op profile of a single-query algorithm, optionally steady-state."""
    result = count_ops(
        lambda op: algorithm_factory(op, window), operator, values
    )
    if warmup_slides is None:
        return result
    return result.steady_state(warmup_slides)
