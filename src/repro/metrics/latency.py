"""Per-answer latency measurement (paper Exp 3, Fig. 14).

"Latency is measured in terms of the total time it took to calculate
and return the answer to each query."  Here that is the wall-clock time
of one ``step`` — from the arrival of the new partial to the answer —
captured with ``time.perf_counter_ns``.

The reported categories replicate Fig. 14: Min, 25th percentile,
Median, Average, 75th percentile, and Max, after dropping the highest
0.005 % of samples as outliers.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, List

from repro.metrics.stats import Summary, drop_top_fraction

#: The paper's outlier trim for Exp 3.
OUTLIER_FRACTION = 0.00005


class LatencyRecorder:
    """Collect per-answer latencies in nanoseconds."""

    def __init__(self) -> None:
        self.samples_ns: List[int] = []

    def record(self, nanoseconds: int) -> None:
        """Append one latency sample."""
        self.samples_ns.append(nanoseconds)

    def timed(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` once, recording its duration."""
        started = time.perf_counter_ns()
        result = fn()
        self.record(time.perf_counter_ns() - started)
        return result

    def summary(
        self, drop_fraction: float = OUTLIER_FRACTION
    ) -> Summary:
        """Fig. 14 categories over the trimmed samples."""
        trimmed = drop_top_fraction(self.samples_ns, drop_fraction)
        return Summary.of(trimmed)


def measure_step_latencies(
    aggregator: Any, values: Iterable[Any]
) -> LatencyRecorder:
    """Time every ``step`` of a single-query aggregator over a stream."""
    recorder = LatencyRecorder()
    record = recorder.samples_ns.append
    step = aggregator.step
    clock = time.perf_counter_ns
    for value in values:
        started = clock()
        step(value)
        record(clock() - started)
    return recorder


def measure_multi_step_latencies(
    aggregator: Any, values: Iterable[Any]
) -> LatencyRecorder:
    """Time every multi-query ``step`` (one sample per slide)."""
    return measure_step_latencies(aggregator, values)
