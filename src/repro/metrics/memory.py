"""Memory measurement (paper Exp 4, Fig. 15).

The paper measures "the maximum resident set size of processes running
the corresponding techniques".  RSS of a CPython process is dominated
by the interpreter, so this module reports two substitutes (see
DESIGN.md):

* **logical words** — every aggregator's ``memory_words()``, which
  implements the Section 4.2 space formulas exactly (Naive ``n``,
  FlatFAT ``2^⌈log n⌉·2``, TwoStacks/FlatFIT/DABA ``≈2n``, SlickDeque
  (Inv) ``n + q``, SlickDeque (Non-Inv) input-dependent ``≤ 2n+4√n``);
* **measured bytes** — ``tracemalloc`` peak allocation attributable to
  running the aggregator, for readers who want a physical number.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence


@dataclass(frozen=True)
class MemoryResult:
    """One memory measurement."""

    logical_words: int
    measured_peak_bytes: int


def peak_memory_words(aggregator: Any, values: Iterable[Any]) -> int:
    """Maximum ``memory_words()`` observed while running a stream.

    SlickDeque (Non-Inv) and DABA have input-dependent footprints, so
    the peak over the run (not the final state) is the honest Fig. 15
    number.
    """
    peak = aggregator.memory_words()
    step = aggregator.step
    for value in values:
        step(value)
        words = aggregator.memory_words()
        if words > peak:
            peak = words
    return peak


def measure_memory(
    make_aggregator: Callable[[], Any], values: Sequence[Any]
) -> MemoryResult:
    """Logical-word peak plus tracemalloc peak for one run."""
    tracemalloc.start()
    try:
        baseline, _ = tracemalloc.get_traced_memory()
        aggregator = make_aggregator()
        logical = peak_memory_words(aggregator, values)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return MemoryResult(
        logical_words=logical,
        measured_peak_bytes=max(0, peak - baseline),
    )
