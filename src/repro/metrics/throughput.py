"""Throughput measurement (paper Exps 1-2, Figs. 10-13).

"Throughput is measured as the number of query results returned per
second in a single query environment, while in a multi-query
environment it is measured as the number of slides of a shared
execution plan processed per second."

CPython absolute numbers are far below the paper's C++ platform; the
relative ordering between algorithms — which is what Figs. 10-13
establish — is preserved because all algorithms share the exact same
operator machinery and driver loop (mirroring the paper's "same
codebase" methodology).  The experiments additionally report
per-slide aggregate-operation counts, a runtime-independent measure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence


@dataclass(frozen=True)
class ThroughputResult:
    """One throughput measurement."""

    slides: int
    seconds: float

    @property
    def per_second(self) -> float:
        """Results (single-query) or plan slides (multi-query) per second."""
        if self.seconds <= 0:
            return float("inf")
        return self.slides / self.seconds


def measure_single_query(
    make_aggregator: Callable[[], Any],
    values: Sequence[Any],
    repeats: int = 1,
) -> ThroughputResult:
    """Drive a fresh single-query aggregator over ``values``.

    The best of ``repeats`` runs is reported, the usual micro-benchmark
    convention for suppressing scheduler noise.
    """
    best = float("inf")
    for _ in range(max(1, repeats)):
        aggregator = make_aggregator()
        step = aggregator.step
        started = time.perf_counter()
        for value in values:
            step(value)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return ThroughputResult(slides=len(values), seconds=best)


def measure_multi_query(
    make_aggregator: Callable[[], Any],
    values: Sequence[Any],
    repeats: int = 1,
) -> ThroughputResult:
    """Drive a fresh multi-query aggregator over ``values``."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        aggregator = make_aggregator()
        step = aggregator.step
        started = time.perf_counter()
        for value in values:
            step(value)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return ThroughputResult(slides=len(values), seconds=best)
