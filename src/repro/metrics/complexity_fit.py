"""Empirical complexity classification (Table 1, measured end-to-end).

Table 1 asserts asymptotic classes; this module closes the loop by
*fitting* measured per-slide operation counts across a window sweep to
the candidate growth models and reporting which fits best:

    O(1), O(log n), O(n), O(n log n), O(n²)

The fit is ordinary least squares of ``y = a + b·g(n)`` per model
``g``, compared by residual sum of squares with a mild complexity
penalty (prefer the simpler model on near-ties, since e.g. a constant
series fits ``a + 0·n`` exactly too).  Operation counts are noise-free
— unlike wall clock — so the classification is sharp; the integration
tests assert every algorithm lands in its Table 1 class.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

#: Candidate growth models, simplest first (ties break to the left).
MODELS: Tuple[Tuple[str, Callable[[float], float]], ...] = (
    ("1", lambda n: 0.0),
    ("log n", lambda n: math.log2(n) if n > 1 else 0.0),
    ("n", lambda n: float(n)),
    ("n log n", lambda n: n * math.log2(n) if n > 1 else 0.0),
    ("n^2", lambda n: float(n) * n),
)


def _least_squares(
    xs: Sequence[float], ys: Sequence[float]
) -> Tuple[float, float, float]:
    """Fit ``y = a + b·x``; return ``(a, b, sse)``."""
    count = len(xs)
    mean_x = sum(xs) / count
    mean_y = sum(ys) / count
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0.0:
        slope = 0.0
    else:
        slope = sum(
            (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
        ) / var_x
    intercept = mean_y - slope * mean_x
    sse = sum(
        (y - (intercept + slope * x)) ** 2 for x, y in zip(xs, ys)
    )
    return intercept, slope, sse


@dataclass(frozen=True)
class ComplexityFit:
    """The winning growth model for a measured curve."""

    model: str
    intercept: float
    slope: float
    sse: float
    #: SSE per candidate, for reports and debugging.
    all_sse: Dict[str, float]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"O({self.model})"


def classify_growth(
    points: Dict[int, float],
    penalty: float = 1.05,
    effect_threshold: float = 0.2,
) -> ComplexityFit:
    """Fit a ``{n: cost}`` curve to the candidate models.

    Args:
        points: At least three (window, cost) samples spanning at
            least a factor of four in ``n``.
        penalty: A simpler model wins unless a more complex one
            reduces the SSE by more than this factor.
        effect_threshold: A growth model is only eligible when its
            fitted component spans at least this fraction of the mean
            cost across the sweep.  Algorithms whose amortized cost
            *converges* to a constant (DABA, FlatFIT, ...) drift by a
            few percent over a sweep — real growth varies by whole
            multiples, so the effect-size gate separates the two.
            Negative slopes are disqualified outright (costs cannot
            shrink with n).
    """
    if len(points) < 3:
        raise ValueError(
            f"need at least 3 sweep points, got {len(points)}"
        )
    ns = sorted(points)
    if ns[-1] < 4 * ns[0]:
        raise ValueError("sweep must span at least a 4x window range")
    ys = [float(points[n]) for n in ns]
    mean_y = sum(ys) / len(ys)

    fits: Dict[str, Tuple[float, float, float]] = {}
    spans: Dict[str, float] = {}
    for name, transform in MODELS:
        xs = [transform(n) for n in ns]
        fits[name] = _least_squares(xs, ys)
        spans[name] = fits[name][1] * (max(xs) - min(xs))

    all_sse = {name: fit[2] for name, fit in fits.items()}
    best_name, best = "1", fits["1"]
    for name, fit in fits.items():
        if name == "1":
            continue
        intercept, slope, sse = fit
        if slope < 0:
            continue
        if abs(spans[name]) < effect_threshold * abs(mean_y):
            continue  # statistically a flat line with drift
        if sse * penalty < best[2]:
            best_name, best = name, fit
    return ComplexityFit(
        model=best_name,
        intercept=best[0],
        slope=best[1],
        sse=best[2],
        all_sse=all_sse,
    )


def classify_algorithm_time(
    algorithm: str,
    operator_name: str,
    windows: Sequence[int] = (32, 64, 128, 256, 512),
    slides_per_window: int = 12,
    multi_query: bool = False,
    seed: int = 5,
) -> ComplexityFit:
    """Measure and classify an algorithm's per-slide ⊕ growth.

    Runs the §4.1 op-count metric at each window size (steady state)
    and fits the amortized cost curve.  With ``multi_query=True`` the
    max-multi-query environment (ranges ``1..n``) is measured instead.

    The default sweep starts at 32: constant-amortized algorithms
    (DABA, FlatFIT, TwoStacks) approach their constant as ``c·(1 −
    O(1/n))``, and below ~32 that convergence transient is still a
    double-digit fraction of the value, which would smear the fit.
    """
    from repro.datasets.synthetic import materialise, uniform
    from repro.metrics.opcount import count_ops
    from repro.operators.registry import get_operator
    from repro.registry import get_algorithm

    spec = get_algorithm(algorithm)
    points: Dict[int, float] = {}
    for window in windows:
        stream = materialise(
            uniform((slides_per_window + 2) * window, seed=seed)
        )
        if multi_query:
            if spec.multi is None:
                raise ValueError(
                    f"{algorithm} has no multi-query form"
                )
            ranges = list(range(1, window + 1))
            profile = count_ops(
                lambda op: spec.multi(op, ranges),
                get_operator(operator_name),
                stream,
            )
        else:
            profile = count_ops(
                lambda op: spec.single(op, window),
                get_operator(operator_name),
                stream,
            )
        points[window] = profile.steady_state(2 * window).amortized
    return classify_growth(points)


def classify_algorithm_space(
    algorithm: str,
    operator_name: str = "sum",
    windows: Sequence[int] = (8, 16, 32, 64, 128, 256),
    seed: int = 5,
) -> ComplexityFit:
    """Measure and classify an algorithm's space growth (§4.2)."""
    from repro.datasets.synthetic import materialise, uniform
    from repro.metrics.memory import peak_memory_words
    from repro.operators.registry import get_operator
    from repro.registry import get_algorithm

    spec = get_algorithm(algorithm)
    points: Dict[int, float] = {}
    for window in windows:
        stream = materialise(uniform(4 * window, seed=seed))
        aggregator = spec.single(get_operator(operator_name), window)
        points[window] = float(peak_memory_words(aggregator, stream))
    return classify_growth(points)
