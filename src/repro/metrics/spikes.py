"""Spike analysis for per-slide cost series (§4.1 latency narrative).

The paper attributes latency spikes to specific per-slide cost
structures: TwoStacks' flip recurs every ``n`` slides, FlatFIT's
window reset "happens once per [n + 1 slides]", DABA and SlickDeque
(Inv) stay flat, SlickDeque (Non-Inv)'s spikes are input-driven and
aperiodic.  This module turns a per-slide cost series into those
statements: spike positions, inter-spike gaps, and the dominant
period, so tests and reports can assert *why* a max-latency number is
what it is, not just its value.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


def spike_positions(
    series: Sequence[float], threshold_ratio: float = 4.0
) -> List[int]:
    """Indices whose value exceeds ``threshold_ratio ×`` the median.

    Args:
        series: Per-slide costs (operation counts or latencies).
        threshold_ratio: How far above the median counts as a spike.
    """
    if not series:
        return []
    ordered = sorted(series)
    median = ordered[len(ordered) // 2]
    floor = max(median * threshold_ratio, median + 1)
    return [i for i, value in enumerate(series) if value >= floor]


def spike_gaps(positions: Sequence[int]) -> List[int]:
    """Distances between consecutive spikes."""
    return [b - a for a, b in zip(positions, positions[1:])]


def dominant_period(positions: Sequence[int]) -> Optional[int]:
    """The most common inter-spike gap, or ``None`` without ≥ 2 spikes."""
    gaps = spike_gaps(positions)
    if not gaps:
        return None
    (gap, _), = Counter(gaps).most_common(1)
    return gap


@dataclass(frozen=True)
class SpikeProfile:
    """Summary of a cost series' spike structure."""

    slides: int
    spike_count: int
    period: Optional[int]
    periodic: bool
    max_over_median: float

    @classmethod
    def of(
        cls,
        series: Sequence[float],
        threshold_ratio: float = 4.0,
        period_tolerance: int = 1,
    ) -> "SpikeProfile":
        """Profile a series.

        ``periodic`` is true when at least three spikes exist and all
        inter-spike gaps agree with the dominant period within
        ``period_tolerance`` slides.
        """
        positions = spike_positions(series, threshold_ratio)
        period = dominant_period(positions)
        gaps = spike_gaps(positions)
        periodic = (
            len(positions) >= 3
            and period is not None
            and all(abs(g - period) <= period_tolerance for g in gaps)
        )
        ordered = sorted(series)
        median = ordered[len(ordered) // 2] if series else 0.0
        peak = max(series) if series else 0.0
        return cls(
            slides=len(series),
            spike_count=len(positions),
            period=period,
            periodic=periodic,
            max_over_median=(peak / median if median else float("inf")),
        )


def flip_period(
    series: Sequence[float], threshold_ratio: float = 4.0
) -> Tuple[Optional[int], bool]:
    """Convenience: ``(dominant period, is periodic)`` of a series."""
    profile = SpikeProfile.of(series, threshold_ratio)
    return profile.period, profile.periodic
