"""Small statistics helpers shared by the measurement harness."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of an ascending-sorted sequence.

    Args:
        sorted_values: Non-empty, ascending.
        fraction: In ``[0, 1]`` (0.25 = 25th percentile).
    """
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    index = fraction * (len(sorted_values) - 1)
    low = math.floor(index)
    high = math.ceil(index)
    if low == high:
        return float(sorted_values[low])
    weight = index - low
    return float(
        sorted_values[low] * (1 - weight) + sorted_values[high] * weight
    )


def drop_top_fraction(
    values: Sequence[float], fraction: float
) -> List[float]:
    """Remove the highest ``fraction`` of values as outliers.

    The paper "dropped the highest 0.005% latencies from all algorithms
    as outliers" in Exp 3; this implements that trim.  At least one
    value always survives.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    ordered = sorted(values)
    keep = max(1, len(ordered) - int(len(ordered) * fraction))
    return ordered[:keep]


@dataclass(frozen=True)
class Summary:
    """The latency summary categories of the paper's Fig. 14."""

    count: int
    minimum: float
    p25: float
    median: float
    mean: float
    p75: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        """Summarise a non-empty sequence."""
        ordered = sorted(float(v) for v in values)
        if not ordered:
            raise ValueError("cannot summarise an empty sequence")
        return cls(
            count=len(ordered),
            minimum=ordered[0],
            p25=percentile(ordered, 0.25),
            median=percentile(ordered, 0.5),
            mean=sum(ordered) / len(ordered),
            p75=percentile(ordered, 0.75),
            maximum=ordered[-1],
        )


def maybe_summary(values: Sequence[float]):
    """A :class:`Summary` of ``values``, or ``None`` when empty.

    Instrumentation that may legitimately collect zero samples (e.g.
    the sharded service's batch latencies on an inline transport)
    reports an absent summary instead of raising.
    """
    return Summary.of(values) if values else None


class Reservoir:
    """Bounded uniform sample of an unbounded measurement stream.

    Algorithm R reservoir sampling: the first ``capacity`` values are
    kept verbatim; each later value replaces a uniformly-chosen slot
    with probability ``capacity / seen``, so at any point the retained
    values are a uniform sample of everything observed.  Long-running
    instrumentation (e.g. the sharded service's per-batch latencies)
    stays O(capacity) in memory instead of growing one float per event
    forever, while percentile summaries remain representative of the
    whole run — unlike a keep-last-N deque, which forgets warm-up
    behaviour entirely.

    Deterministic for a fixed ``seed`` and input sequence.
    """

    def __init__(self, capacity: int = 1024, seed: int = 0):
        if capacity < 1:
            raise ValueError(
                f"reservoir capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        #: Total values offered, retained or not.
        self.seen = 0
        self._values: List[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        """Offer one value to the sample."""
        self.seen += 1
        if len(self._values) < self.capacity:
            self._values.append(float(value))
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            self._values[slot] = float(value)

    def extend(self, values: Sequence[float]) -> None:
        """Offer every value of ``values`` in order."""
        for value in values:
            self.add(value)

    @property
    def values(self) -> List[float]:
        """The retained sample (a copy, insertion order not meaningful)."""
        return list(self._values)

    def __len__(self) -> int:
        """Number of values currently retained (≤ capacity)."""
        return len(self._values)

    def __iter__(self):
        """Iterate over the retained sample."""
        return iter(self._values)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio; infinity when the denominator is zero."""
    return math.inf if denominator == 0 else numerator / denominator
