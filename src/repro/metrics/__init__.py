"""Measurement harness: throughput, latency, memory, operation counts.

The four evaluation metrics of paper Section 5.1, adapted to Python as
documented in DESIGN.md (logical memory words instead of RSS; operation
counts as the runtime-independent complement to wall-clock throughput).
"""

from repro.metrics.latency import (
    OUTLIER_FRACTION,
    LatencyRecorder,
    measure_multi_step_latencies,
    measure_step_latencies,
)
from repro.metrics.memory import (
    MemoryResult,
    measure_memory,
    peak_memory_words,
)
from repro.metrics.opcount import OpCountResult, count_ops, count_ops_single
from repro.metrics.complexity_fit import (
    ComplexityFit,
    classify_algorithm_space,
    classify_algorithm_time,
    classify_growth,
)
from repro.metrics.spikes import (
    SpikeProfile,
    dominant_period,
    flip_period,
    spike_gaps,
    spike_positions,
)
from repro.metrics.stats import (
    Reservoir,
    Summary,
    drop_top_fraction,
    geometric_mean,
    maybe_summary,
    percentile,
    ratio,
)
from repro.metrics.throughput import (
    ThroughputResult,
    measure_multi_query,
    measure_single_query,
)

__all__ = [
    "LatencyRecorder",
    "measure_step_latencies",
    "measure_multi_step_latencies",
    "OUTLIER_FRACTION",
    "MemoryResult",
    "measure_memory",
    "peak_memory_words",
    "OpCountResult",
    "count_ops",
    "count_ops_single",
    "ThroughputResult",
    "measure_single_query",
    "measure_multi_query",
    "Reservoir",
    "Summary",
    "maybe_summary",
    "percentile",
    "drop_top_fraction",
    "geometric_mean",
    "ratio",
    "ComplexityFit",
    "classify_growth",
    "classify_algorithm_time",
    "classify_algorithm_space",
    "SpikeProfile",
    "spike_positions",
    "spike_gaps",
    "dominant_period",
    "flip_period",
]
