"""Pure-Python batch kernels built on the C-implemented builtins.

Every kernel here is **exact**: its folds perform the same arithmetic,
in the same order, as the sequential ``combine(acc, lift(v))`` left
fold, so bulk answers are bit-identical to per-tuple answers in every
domain — builtin ``sum`` and ``math.prod`` are left-to-right folds, and
the selection kernels return actual stream elements, never derived
values.

Inputs may be lists or ndarrays; ndarrays are converted with
``tolist()`` first (one C call) because iterating an ndarray boxes each
element into a fresh Python object, which is slower than the per-tuple
path these kernels exist to beat.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.kernels import BatchKernel
from repro.operators.base import Agg, AggregateOperator
from repro.operators.invertible import (
    CountOperator,
    ProductOperator,
    SumOfSquaresOperator,
    SumOperator,
)
from repro.operators.noninvertible import MaxOperator, MinOperator


def _as_list(values: Sequence[Any]) -> Sequence[Any]:
    """Materialise ndarray (or similar) inputs as plain lists."""
    tolist = getattr(values, "tolist", None)
    if tolist is not None:
        return tolist()
    return values


class SumKernel(BatchKernel):
    """Sum/identity-lift addition: builtin ``sum`` is the left fold."""

    def fold(self, values: Sequence[Any], seed: Agg) -> Agg:
        return sum(_as_list(values), seed)

    fold_aggs = fold

    def lift_many(self, values: Sequence[Any]) -> Sequence[Agg]:
        return values


class CountKernel(BatchKernel):
    """Count: a batch contributes its length."""

    def fold(self, values: Sequence[Any], seed: Agg) -> Agg:
        return seed + len(values)

    def fold_aggs(self, aggs: Sequence[Agg], seed: Agg) -> Agg:
        return sum(_as_list(aggs), seed)

    def lift_many(self, values: Sequence[Any]) -> Sequence[Agg]:
        return [1] * len(values)


class SumOfSquaresKernel(BatchKernel):
    """Sum of squares: one generator into builtin ``sum``."""

    def fold(self, values: Sequence[Any], seed: Agg) -> Agg:
        return sum((value * value for value in _as_list(values)), seed)

    def fold_aggs(self, aggs: Sequence[Agg], seed: Agg) -> Agg:
        return sum(_as_list(aggs), seed)

    def lift_many(self, values: Sequence[Any]) -> Sequence[Agg]:
        return [value * value for value in values]


class ProductKernel(BatchKernel):
    """Product over ``(nonzero_product, zero_count)`` aggregates.

    Skipping zero lifts is exact: a zero lifts to ``(1, 1)`` and
    multiplying by 1 is exact in every numeric domain, so the skipped
    factors change nothing but the zero count — which is tracked
    separately.  ``math.prod`` is a sequential left fold.
    """

    def fold(self, values: Sequence[Any], seed: Agg) -> Agg:
        values = _as_list(values)
        nonzero = [value for value in values if value != 0]
        return (
            math.prod(nonzero, start=seed[0]),
            seed[1] + len(values) - len(nonzero),
        )

    def fold_aggs(self, aggs: Sequence[Agg], seed: Agg) -> Agg:
        product, zeros = seed
        return (
            math.prod((agg[0] for agg in aggs), start=product),
            zeros + sum(agg[1] for agg in aggs),
        )

    def lift_many(self, values: Sequence[Any]) -> Sequence[Agg]:
        lift = self._lift
        return [lift(value) for value in _as_list(values)]


class _SelectionKernel(BatchKernel):
    """Shared machinery for Max/Min: builtin reduction + one combine.

    The builtin ``max``/``min`` over the *reversed* batch returns the
    newest extremal element, matching the operators' prefer-newer tie
    rule; one final ``combine`` folds it under the seed.  Selection
    folds return actual elements, so this is exact in every domain.
    """

    _reduce: Callable[..., Any] = staticmethod(max)

    def fold(self, values: Sequence[Any], seed: Agg) -> Agg:
        values = _as_list(values)
        if not values:
            return seed
        # The batch is newer than the seed; combine(older=seed, newer)
        # keeps the operators' prefer-newer tie rule intact.
        return self._combine(seed, self._reduce(reversed(values)))

    def fold_aggs(self, aggs: Sequence[Agg], seed: Agg) -> Agg:
        return self.fold(aggs, seed)

    def lift_many(self, values: Sequence[Any]) -> Sequence[Agg]:
        return values


class MaxKernel(_SelectionKernel):
    """Max (and AlphabeticalMax): suffix chain = strict suffix maxima."""

    _reduce = staticmethod(max)

    def suffix_chain(
        self, values: Sequence[Any]
    ) -> List[Tuple[int, Agg]]:
        values = _as_list(values)
        chain: List[Tuple[int, Agg]] = []
        best: Any = None
        for index in range(len(values) - 1, -1, -1):
            value = values[index]
            if best is None or value > best:
                chain.append((index, value))
                best = value
        chain.reverse()
        return chain


class MinKernel(_SelectionKernel):
    """Min: suffix chain = strict suffix minima."""

    _reduce = staticmethod(min)

    def suffix_chain(
        self, values: Sequence[Any]
    ) -> List[Tuple[int, Agg]]:
        values = _as_list(values)
        chain: List[Tuple[int, Agg]] = []
        best: Any = None
        for index in range(len(values) - 1, -1, -1):
            value = values[index]
            if best is None or value < best:
                chain.append((index, value))
                best = value
        chain.reverse()
        return chain


#: Registry name → (kernel class, operator type the kernel's shortcuts
#: are derived from).  The type guard means a *custom* operator that
#: happens to reuse a builtin name falls back to the generic kernel
#: instead of silently inheriting the builtin's arithmetic.
_KERNELS = {
    "sum": (SumKernel, SumOperator),
    "count": (CountKernel, CountOperator),
    "sum_of_squares": (SumOfSquaresKernel, SumOfSquaresOperator),
    "product": (ProductKernel, ProductOperator),
    "int_product": (ProductKernel, ProductOperator),
    "max": (MaxKernel, MaxOperator),
    "alpha_max": (MaxKernel, MaxOperator),
    "min": (MinKernel, MinOperator),
}


def register(register_factory: Callable[..., None]) -> None:
    """Register every pure kernel factory with the kernel registry."""
    for name, (kernel_class, operator_type) in _KERNELS.items():
        register_factory(name, _factory(kernel_class, operator_type))


def _factory(
    kernel_class: type, operator_type: type
) -> Callable[[AggregateOperator], Optional[BatchKernel]]:
    def build(operator: AggregateOperator) -> Optional[BatchKernel]:
        if not isinstance(operator, operator_type):
            return None
        return kernel_class(operator)

    return build
