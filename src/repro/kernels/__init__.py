"""Batch kernels: O(batch)-amortized folds behind the bulk-ingestion API.

Every hot path in the library used to cross several Python frames per
tuple.  The bulk API (``push_many``/``step_many``/``feed_many``) instead
hands whole micro-batches to a *kernel* — a small object that folds a
batch of raw values (or already-lifted aggregates) into one partial with
a single C-level loop, and, for selection operators, pre-collapses a
batch to its dominance suffix chain.

Two backends exist:

* **pure** (:mod:`repro.kernels.pure`) — always available; built on the
  C-implemented builtins (``sum``, ``len``, ``max``, ``min``,
  ``math.prod``).  Every pure kernel is *exact*: its folds are
  bit-identical to the sequential ``combine(acc, lift(v))`` left fold
  for every input domain, including floats (builtin ``sum`` *is* a
  left-to-right fold).
* **numpy** (:mod:`repro.kernels.numpy_backend`) — registered only when
  numpy imports (the ``repro[fast]`` extra); engages only for ndarray
  inputs, where boxing each element into a Python object would defeat
  the pure kernels.  Float reductions may reassociate (numpy uses
  pairwise summation), so numpy kernels report ``exact=False`` on float
  data; callers that require bit-exact equivalence with the per-tuple
  path (the stream engine, the sharded service) use
  :func:`exact_fold`, which falls back to an exact path automatically.

Kernel selection happens at operator-registry time
(:func:`repro.operators.registry.get_operator` calls :func:`attach`) or
lazily on first use; either way the chosen kernel is cached on the
operator instance, so the per-batch dispatch cost is one attribute read.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.operators.base import Agg, AggregateOperator

#: Instance attribute under which the resolved kernel is cached.
_CACHE_ATTR = "_batch_kernel"


def lift_is_identity(operator: AggregateOperator) -> bool:
    """Whether ``operator`` inherits the identity ``lift`` unchanged."""
    return type(operator).lift is AggregateOperator.lift


def _unboxed(values: Any) -> Sequence[Any]:
    """Materialise ndarrays as lists of Python scalars before looping.

    Iterating an ndarray yields numpy scalar objects, which are both
    slower than builtins in Python-level arithmetic and — critically —
    fixed-width: a chain of ``np.int64`` multiplications overflows
    silently where Python ints are exact.  ``tolist()`` unboxes the
    whole batch in one C call.
    """
    tolist = getattr(values, "tolist", None)
    return tolist() if tolist is not None else values


class BatchKernel:
    """Generic batch kernel: bound-method sequential loops.

    This is the universal fallback — correct for every operator, exact
    in every domain (it performs the very same call sequence as the
    per-tuple path, just with the hot callables bound once per batch
    instead of re-resolved per tuple).  Operator-specific subclasses in
    the backend modules replace the loops with C-level reductions.
    """

    #: ``True`` when :meth:`fold`/:meth:`fold_aggs` are guaranteed
    #: bit-identical to the sequential left fold for *all* inputs.
    exact = True

    def __init__(self, operator: AggregateOperator):
        self.operator = operator
        self._lift = operator.lift
        self._combine = operator.combine
        self._identity_lift = lift_is_identity(operator)

    def lift_many(self, values: Sequence[Any]) -> Sequence[Agg]:
        """Lift every value of a batch (zero-copy for identity lifts)."""
        if self._identity_lift:
            return values
        lift = self._lift
        return [lift(value) for value in _unboxed(values)]

    def fold(self, values: Sequence[Any], seed: Agg) -> Agg:
        """Left fold ``seed ⊕ lift(v₁) ⊕ … ⊕ lift(vₖ)`` over raw values."""
        combine = self._combine
        acc = seed
        if self._identity_lift:
            for value in _unboxed(values):
                acc = combine(acc, value)
            return acc
        lift = self._lift
        for value in _unboxed(values):
            acc = combine(acc, lift(value))
        return acc

    def fold_aggs(self, aggs: Sequence[Agg], seed: Agg) -> Agg:
        """Left fold ``seed ⊕ a₁ ⊕ … ⊕ aₖ`` over already-lifted aggs."""
        combine = self._combine
        acc = seed
        for agg in _unboxed(aggs):
            acc = combine(acc, agg)
        return acc

    def is_exact_for(self, values: Sequence[Any]) -> bool:
        """Whether :meth:`fold` is bit-exact for this specific batch.

        Unconditionally true for exact kernels; inexact kernels (numpy
        on float data) override this to claim exactness for inputs that
        reduce exactly in any order (integer dtypes).
        """
        return self.exact

    def suffix_chain(
        self, values: Sequence[Any]
    ) -> List[Tuple[int, Agg]]:
        """Dominance suffix chain of a batch (selection operators).

        Returns ``(index, lifted_agg)`` pairs, ascending by index, of
        exactly the batch elements that would survive as deque nodes if
        the batch were pushed one tuple at a time through Algorithm 2's
        tail-eviction rule: an element survives iff no later element
        dominates it, which — because selection dominance is a total
        preorder over the lift keys — is iff it is not dominated by the
        fold of its suffix.
        """
        dominates = self.operator.dominates
        lift = self._lift
        identity_lift = self._identity_lift
        values = _unboxed(values)
        chain: List[Tuple[int, Agg]] = []
        best: Optional[Agg] = None
        for index in range(len(values) - 1, -1, -1):
            agg = values[index] if identity_lift else lift(values[index])
            if best is None or not dominates(agg, best):
                chain.append((index, agg))
                best = agg
        chain.reverse()
        return chain


#: name → factory(operator) -> Optional[BatchKernel].  A factory may
#: return ``None`` to decline (e.g. numpy missing a dtype), in which
#: case resolution falls through to the generic kernel.
_FACTORIES: Dict[
    str, Callable[[AggregateOperator], Optional[BatchKernel]]
] = {}


def register_kernel_factory(
    name: str,
    factory: Callable[[AggregateOperator], Optional[BatchKernel]],
) -> None:
    """Register a kernel factory for the operator named ``name``."""
    _FACTORIES[name] = factory


def kernel_for(operator: AggregateOperator) -> BatchKernel:
    """The batch kernel for ``operator``, resolved once and cached.

    Resolution order: a factory registered under the operator's name
    (the backend modules register the builtin operators), then the
    generic bound-method kernel.  The result is cached on the operator
    *instance*, so wrappers that mutate per-instance state (counting
    operators, ArgMax with custom keys) each get their own kernel.
    """
    cached = operator.__dict__.get(_CACHE_ATTR)
    if cached is not None:
        return cached
    factory = _FACTORIES.get(operator.name)
    kernel = factory(operator) if factory is not None else None
    if kernel is None:
        kernel = BatchKernel(operator)
    setattr(operator, _CACHE_ATTR, kernel)
    return kernel


def attach(operator: AggregateOperator) -> AggregateOperator:
    """Resolve and cache ``operator``'s kernel now; return the operator.

    Called by :func:`repro.operators.registry.get_operator` so kernel
    selection happens at registry time, off the hot path.
    """
    kernel_for(operator)
    return operator


def exact_fold(
    operator: AggregateOperator, values: Sequence[Any], seed: Agg
) -> Agg:
    """Fold a batch with the guarantee of bit-exact left-fold answers.

    Uses the operator's kernel when it is exact (every pure kernel is);
    otherwise — a numpy kernel on float data — falls back to the
    sequential fold so the result is byte-identical to the per-tuple
    path in *every* domain.  The stream engine and the sharded service
    fold through this entry point, which is what keeps their bulk paths
    answer-equivalent to per-tuple execution even for float streams.
    """
    kernel = kernel_for(operator)
    if kernel.exact or kernel.is_exact_for(values):
        return kernel.fold(values, seed)
    return BatchKernel(operator).fold(values, seed)


def as_sequence(values: Any) -> Sequence[Any]:
    """Return ``values`` as a len()-able, sliceable sequence.

    Lists, tuples, and ndarrays pass through untouched; other iterables
    (generators, deques) are materialised once.  The bulk entry points
    call this so callers may hand over any iterable.
    """
    if hasattr(values, "__len__") and hasattr(values, "__getitem__"):
        return values
    return list(values)


def column_view(buffer: Any, kind: str) -> memoryview:
    """Zero-copy typed view over a packed value column.

    ``kind`` is ``"q"`` (little-endian int64) or ``"d"`` (float64) —
    the two wire layouts shared by the shm transport's columnar frames
    and the network layer's ``SUBMIT_COLUMNS`` payloads.  The returned
    ``memoryview`` aliases ``buffer``; indexing it yields plain Python
    ``int``/``float`` scalars, so it feeds every kernel entry point
    (``_unboxed`` materialises it with one C-level ``tolist``).
    """
    if kind not in ("q", "d"):
        raise ValueError(
            f"column kind must be 'q' (int64) or 'd' (float64), "
            f"got {kind!r}"
        )
    view = memoryview(buffer)
    if view.format == kind:
        return view
    return view.cast("B").cast(kind)


def column_ndarray(column: Any) -> Optional[Any]:
    """Zero-copy ndarray over a typed column, or ``None``.

    Wraps ``numpy.frombuffer`` for the int64/float64 ``memoryview``
    columns the shm transport decodes out of its rings; ndarrays pass
    through untouched.  Returns ``None`` when numpy is unavailable or
    the column is not a typed buffer — callers fall back to the
    sequence path, which is always correct.
    """
    if not numpy_enabled():
        return None
    from repro.kernels import numpy_backend

    return numpy_backend.as_ndarray(column)


def numpy_enabled() -> bool:
    """Whether the numpy kernel backend registered successfully."""
    from repro.kernels import numpy_backend

    return numpy_backend.HAS_NUMPY


def active_backends() -> List[str]:
    """Names of the registered kernel backends, pure first."""
    backends = ["pure"]
    if numpy_enabled():
        backends.append("numpy")
    return backends


# Backend registration: pure always, numpy when importable.  Import
# order matters — numpy factories wrap the pure ones so they can fall
# back per call for non-ndarray inputs.
from repro.kernels import pure as _pure  # noqa: E402

_pure.register(register_kernel_factory)

from repro.kernels import numpy_backend as _numpy  # noqa: E402

if _numpy.HAS_NUMPY:
    _numpy.register(register_kernel_factory, _FACTORIES)

__all__ = [
    "BatchKernel",
    "attach",
    "active_backends",
    "column_ndarray",
    "column_view",
    "exact_fold",
    "kernel_for",
    "lift_is_identity",
    "numpy_enabled",
    "register_kernel_factory",
]
