"""numpy batch kernels (the ``repro[fast]`` optional extra).

Import-guarded: when numpy is absent this module still imports cleanly
with ``HAS_NUMPY = False`` and registers nothing, so the library keeps
zero hard dependencies.

numpy kernels engage **only for ndarray inputs** — converting a Python
list to an array costs one boxed pass over the data, which is the very
cost the pure kernels already avoid; every method delegates to the
wrapped pure kernel for any other input type.

Exactness:

* Float reductions (``np.add.reduce`` et al.) use pairwise summation,
  which reassociates — bulk answers can differ from the per-tuple path
  in the last ulps.  These kernels therefore report ``exact = False``
  and :func:`repro.kernels.exact_fold` routes around them wherever
  bit-exact equivalence is asserted.
* Integer arrays are *not* reduced with numpy at all: fixed-width
  integer reductions overflow silently, while Python ints are exact at
  any magnitude.  Integer ndarrays take the pure path (``tolist`` +
  builtin fold), which is both exact and overflow-free.
* Selection kernels (Max/Min) return actual stream elements, so they
  stay ``exact = True`` even on float arrays.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.kernels import BatchKernel
from repro.operators.base import Agg, AggregateOperator

try:  # pragma: no cover - exercised through HAS_NUMPY both ways
    import numpy as _np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - numpy-less environments
    _np = None
    HAS_NUMPY = False


def _float_array(values: Any) -> bool:
    """Whether ``values`` is a float ndarray worth reducing in numpy."""
    return (
        isinstance(values, _np.ndarray) and values.dtype.kind == "f"
    )


class _DelegatingKernel(BatchKernel):
    """Base for numpy kernels: wraps the pure kernel as the fallback."""

    def __init__(self, operator: AggregateOperator, pure: BatchKernel):
        super().__init__(operator)
        self._pure = pure

    def lift_many(self, values: Sequence[Any]) -> Sequence[Agg]:
        return self._pure.lift_many(values)

    def fold(self, values: Sequence[Any], seed: Agg) -> Agg:
        return self._pure.fold(values, seed)

    def fold_aggs(self, aggs: Sequence[Agg], seed: Agg) -> Agg:
        return self._pure.fold_aggs(aggs, seed)

    def suffix_chain(
        self, values: Sequence[Any]
    ) -> List[Tuple[int, Agg]]:
        return self._pure.suffix_chain(values)


class NumpySumKernel(_DelegatingKernel):
    """Sum over float arrays via one C reduction."""

    exact = False  # pairwise float summation reassociates

    def is_exact_for(self, values: Sequence[Any]) -> bool:
        # Everything that is not a float ndarray takes the pure path.
        return not _float_array(values)

    def fold(self, values: Sequence[Any], seed: Agg) -> Agg:
        if _float_array(values):
            return seed + _np.add.reduce(values).item()
        return self._pure.fold(values, seed)

    fold_aggs = fold


class NumpySumOfSquaresKernel(NumpySumKernel):
    """Sum of squares over float arrays."""

    def fold(self, values: Sequence[Any], seed: Agg) -> Agg:
        if _float_array(values):
            return seed + _np.add.reduce(values * values).item()
        return self._pure.fold(values, seed)

    def fold_aggs(self, aggs: Sequence[Agg], seed: Agg) -> Agg:
        if _float_array(aggs):
            return seed + _np.add.reduce(aggs).item()
        return self._pure.fold_aggs(aggs, seed)


class NumpyProductKernel(_DelegatingKernel):
    """Product over float arrays: reduce the nonzero factors."""

    exact = False

    def is_exact_for(self, values: Sequence[Any]) -> bool:
        return not _float_array(values)

    def fold(self, values: Sequence[Any], seed: Agg) -> Agg:
        if _float_array(values):
            nonzero = values[values != 0]
            return (
                seed[0] * _np.multiply.reduce(nonzero).item(),
                seed[1] + int(values.size - nonzero.size),
            )
        return self._pure.fold(values, seed)


class _NumpySelectionKernel(_DelegatingKernel):
    """Max/Min over numeric arrays.

    Folds return actual array elements (unboxed with ``item()``), so
    these stay exact; the suffix chain is the vectorized form of the
    strict suffix-extrema scan.
    """

    _reduce_name = "maximum"
    _strictly_better = staticmethod(lambda a, b: a > b)

    def _numeric(self, values: Any) -> bool:
        return isinstance(values, _np.ndarray) and values.dtype.kind in (
            "f",
            "i",
            "u",
        )

    def fold(self, values: Sequence[Any], seed: Agg) -> Agg:
        if self._numeric(values) and len(values):
            ufunc = getattr(_np, self._reduce_name)
            return self._combine(seed, ufunc.reduce(values).item())
        return self._pure.fold(values, seed)

    def fold_aggs(self, aggs: Sequence[Agg], seed: Agg) -> Agg:
        return self.fold(aggs, seed)

    def suffix_chain(
        self, values: Sequence[Any]
    ) -> List[Tuple[int, Agg]]:
        if not self._numeric(values) or len(values) < 2:
            return self._pure.suffix_chain(values)
        ufunc = getattr(_np, self._reduce_name)
        # suffix_best[i] = extremum of values[i:]; an element survives
        # iff it strictly beats the extremum of everything after it
        # (strictness = the operators' prefer-newer tie rule).
        suffix_best = ufunc.accumulate(values[::-1])[::-1]
        keep = _np.empty(len(values), dtype=bool)
        keep[-1] = True
        keep[:-1] = self._strictly_better(values[:-1], suffix_best[1:])
        indices = _np.flatnonzero(keep)
        return list(
            zip(indices.tolist(), values[indices].tolist())
        )


class NumpyMaxKernel(_NumpySelectionKernel):
    """Max over numeric arrays: ``np.maximum`` reduce/accumulate."""

    _reduce_name = "maximum"
    _strictly_better = staticmethod(lambda a, b: a > b)


class NumpyMinKernel(_NumpySelectionKernel):
    """Min over numeric arrays: ``np.minimum`` reduce/accumulate."""

    _reduce_name = "minimum"
    _strictly_better = staticmethod(lambda a, b: a < b)


#: Registry name → numpy kernel class layered over the pure factory.
_KERNELS = {
    "sum": NumpySumKernel,
    "sum_of_squares": NumpySumOfSquaresKernel,
    "product": NumpyProductKernel,
    "max": NumpyMaxKernel,
    "min": NumpyMinKernel,
}


def register(
    register_factory: Callable[..., None],
    existing: Dict[str, Callable[[AggregateOperator], Optional[BatchKernel]]],
) -> None:
    """Layer numpy kernels over the already-registered pure factories."""
    for name, kernel_class in _KERNELS.items():
        pure_factory = existing.get(name)
        if pure_factory is None:  # pragma: no cover - defensive
            continue
        register_factory(name, _factory(kernel_class, pure_factory))


def _factory(
    kernel_class: type,
    pure_factory: Callable[[AggregateOperator], Optional[BatchKernel]],
) -> Callable[[AggregateOperator], Optional[BatchKernel]]:
    def build(operator: AggregateOperator) -> Optional[BatchKernel]:
        pure = pure_factory(operator)
        if pure is None:  # the pure type guard declined; so do we
            return None
        return kernel_class(operator, pure)

    return build
