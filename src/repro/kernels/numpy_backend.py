"""numpy batch kernels (the ``repro[fast]`` optional extra).

Import-guarded: when numpy is absent this module still imports cleanly
with ``HAS_NUMPY = False`` and registers nothing, so the library keeps
zero hard dependencies.

numpy kernels engage **only for inputs already in array form** —
ndarrays, plus the 1-D int64/float64 ``memoryview`` columns the shm
transport decodes out of its rings (viewed zero-copy with
``np.frombuffer``).  Converting a Python list to an array costs one
boxed pass over the data, which is the very cost the pure kernels
already avoid; every method delegates to the wrapped pure kernel for
any other input type.

Exactness:

* Float reductions (``np.add.reduce`` et al.) use pairwise summation,
  which reassociates — bulk answers can differ from the per-tuple path
  in the last ulps.  These kernels therefore report ``exact = False``
  and :func:`repro.kernels.exact_fold` routes around them wherever
  bit-exact equivalence is asserted.
* Integer sums reduce in numpy **only behind an overflow proof**:
  ``size * max|x| < 2**63`` bounds every partial sum of any subset, so
  the int64 reduction provably cannot wrap and — integer addition
  being associative and exact — the result is bit-identical to the
  Python fold.  Arrays that fail the proof (and all integer products,
  whose bound degrades multiplicatively) take the pure path, which is
  exact at any magnitude.
* Selection kernels (Max/Min) return actual stream elements, so they
  stay ``exact = True`` even on float arrays.
"""

from __future__ import annotations

from array import array as _stdarray
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.kernels import BatchKernel
from repro.operators.base import Agg, AggregateOperator

try:  # pragma: no cover - exercised through HAS_NUMPY both ways
    import numpy as _np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - numpy-less environments
    _np = None
    HAS_NUMPY = False


def as_ndarray(values: Any) -> Optional[Any]:
    """Zero-copy ndarray view of ``values``, or ``None``.

    ndarrays pass through; 1-D int64 (``'q'``) and float64 (``'d'``)
    memoryviews — the value columns the shm transport decodes straight
    out of its rings — and the equivalent ``array('q')``/``array('d')``
    buffers the router frames are wrapped with ``np.frombuffer``, which
    shares the underlying buffer.  Anything else (lists,
    sliced-with-step views, other formats) returns ``None`` and takes
    the pure path.
    """
    if isinstance(values, _np.ndarray):
        return values
    if isinstance(values, memoryview) and values.ndim == 1:
        try:
            if values.format == "q":
                return _np.frombuffer(values, dtype=_np.int64)
            if values.format == "d":
                return _np.frombuffer(values, dtype=_np.float64)
        except ValueError:  # pragma: no cover - non-contiguous view
            return None
    if type(values) is _stdarray:
        # The router's typed value buffers (zero-copy via the buffer
        # protocol, same as the memoryview columns).
        if values.typecode == "q":
            return _np.frombuffer(values, dtype=_np.int64)
        if values.typecode == "d":
            return _np.frombuffer(values, dtype=_np.float64)
    return None


def _float_array(values: Any) -> Optional[Any]:
    """Float ndarray view of ``values`` if one is free, else ``None``.

    Truthy exactly when ``values`` is worth reducing in numpy: a float
    ndarray, or a float64 memoryview column viewed via
    ``np.frombuffer`` without copying.
    """
    array = as_ndarray(values)
    if array is not None and array.dtype.kind == "f":
        return array
    return None


_I64_LIMIT = 1 << 63

#: Below this many elements the boxed builtin ``sum`` beats numpy: the
#: int fast path pays fixed call overhead (``frombuffer`` + the
#: min/max overflow proof + the reduction) of several microseconds,
#: which only amortises on wide columns.  Slice-run folds in the
#: sharded service are often a few dozen records, so the floor matters.
_MIN_INT_COLUMN = 256


def _int_array(values: Any) -> Optional[Any]:
    """Wide signed-integer ndarray view of ``values``, or ``None``."""
    array = as_ndarray(values)
    if (
        array is not None
        and array.dtype.kind == "i"
        and array.size >= _MIN_INT_COLUMN
    ):
        return array
    return None


def _abs_bound(array: Any) -> int:
    """``max(|x|)`` of an int array as an exact Python int.

    Computed from min/max (not ``np.abs``, whose ``abs(INT64_MIN)``
    wraps negative) so the overflow proofs below stay sound at the
    extremes of the i64 range.
    """
    return max(-int(array.min()), int(array.max()))


def _exact_int_sum(values: Any) -> Optional[int]:
    """C-speed exact sum of an int column, or ``None`` when unprovable.

    Any partial sum over any subset is bounded by ``size * max|x|``;
    when that product stays below ``2**63`` the int64 reduction cannot
    wrap at any intermediate step, and since integer addition is
    associative and exact the result is bit-identical to the pure
    Python fold.
    """
    array = _int_array(values)
    if array is None:
        return None
    if _abs_bound(array) * array.size >= _I64_LIMIT:
        return None
    return int(_np.add.reduce(array))


def _exact_int_sum_of_squares(values: Any) -> Optional[int]:
    """C-speed exact sum of squares, or ``None`` when unprovable.

    Same proof shape as :func:`_exact_int_sum` with the per-term bound
    squared: ``size * max|x|**2 < 2**63`` covers both the elementwise
    squaring and every partial sum of the reduction.
    """
    array = _int_array(values)
    if array is None:
        return None
    bound = _abs_bound(array)
    if bound * bound * array.size >= _I64_LIMIT:
        return None
    return int(_np.add.reduce(array * array))


class _DelegatingKernel(BatchKernel):
    """Base for numpy kernels: wraps the pure kernel as the fallback."""

    def __init__(self, operator: AggregateOperator, pure: BatchKernel):
        super().__init__(operator)
        self._pure = pure

    def lift_many(self, values: Sequence[Any]) -> Sequence[Agg]:
        return self._pure.lift_many(values)

    def fold(self, values: Sequence[Any], seed: Agg) -> Agg:
        return self._pure.fold(values, seed)

    def fold_aggs(self, aggs: Sequence[Agg], seed: Agg) -> Agg:
        return self._pure.fold_aggs(aggs, seed)

    def suffix_chain(
        self, values: Sequence[Any]
    ) -> List[Tuple[int, Agg]]:
        return self._pure.suffix_chain(values)


class NumpySumKernel(_DelegatingKernel):
    """Sum via one C reduction: floats always, ints behind the proof."""

    exact = False  # pairwise float summation reassociates

    def is_exact_for(self, values: Sequence[Any]) -> bool:
        # Everything that is not a float array/column is exact here:
        # the int fast path only engages with its no-overflow proof,
        # and anything else delegates to the exact pure kernel.
        return _float_array(values) is None

    def fold(self, values: Sequence[Any], seed: Agg) -> Agg:
        floats = _float_array(values)
        if floats is not None:
            return seed + _np.add.reduce(floats).item()
        total = _exact_int_sum(values)
        if total is not None:
            return seed + total
        return self._pure.fold(values, seed)

    fold_aggs = fold


class NumpySumOfSquaresKernel(NumpySumKernel):
    """Sum of squares: floats always, ints behind the squared proof."""

    def fold(self, values: Sequence[Any], seed: Agg) -> Agg:
        floats = _float_array(values)
        if floats is not None:
            return seed + _np.add.reduce(floats * floats).item()
        total = _exact_int_sum_of_squares(values)
        if total is not None:
            return seed + total
        return self._pure.fold(values, seed)

    def fold_aggs(self, aggs: Sequence[Agg], seed: Agg) -> Agg:
        floats = _float_array(aggs)
        if floats is not None:
            return seed + _np.add.reduce(floats).item()
        total = _exact_int_sum(aggs)
        if total is not None:
            return seed + total
        return self._pure.fold_aggs(aggs, seed)


class NumpyProductKernel(_DelegatingKernel):
    """Product over float arrays: reduce the nonzero factors."""

    exact = False

    def is_exact_for(self, values: Sequence[Any]) -> bool:
        return _float_array(values) is None

    def fold(self, values: Sequence[Any], seed: Agg) -> Agg:
        floats = _float_array(values)
        if floats is not None:
            nonzero = floats[floats != 0]
            return (
                seed[0] * _np.multiply.reduce(nonzero).item(),
                seed[1] + int(floats.size - nonzero.size),
            )
        return self._pure.fold(values, seed)


class _NumpySelectionKernel(_DelegatingKernel):
    """Max/Min over numeric arrays.

    Folds return actual array elements (unboxed with ``item()``), so
    these stay exact; the suffix chain is the vectorized form of the
    strict suffix-extrema scan.
    """

    _reduce_name = "maximum"
    _strictly_better = staticmethod(lambda a, b: a > b)

    def _numeric(self, values: Any) -> Optional[Any]:
        array = as_ndarray(values)
        if array is not None and array.dtype.kind in ("f", "i", "u"):
            return array
        return None

    def fold(self, values: Sequence[Any], seed: Agg) -> Agg:
        array = self._numeric(values)
        if array is not None and len(array):
            ufunc = getattr(_np, self._reduce_name)
            return self._combine(seed, ufunc.reduce(array).item())
        return self._pure.fold(values, seed)

    def fold_aggs(self, aggs: Sequence[Agg], seed: Agg) -> Agg:
        return self.fold(aggs, seed)

    def suffix_chain(
        self, values: Sequence[Any]
    ) -> List[Tuple[int, Agg]]:
        array = self._numeric(values)
        if array is None or len(array) < 2:
            return self._pure.suffix_chain(values)
        ufunc = getattr(_np, self._reduce_name)
        # suffix_best[i] = extremum of values[i:]; an element survives
        # iff it strictly beats the extremum of everything after it
        # (strictness = the operators' prefer-newer tie rule).
        suffix_best = ufunc.accumulate(array[::-1])[::-1]
        keep = _np.empty(len(array), dtype=bool)
        keep[-1] = True
        keep[:-1] = self._strictly_better(array[:-1], suffix_best[1:])
        indices = _np.flatnonzero(keep)
        return list(
            zip(indices.tolist(), array[indices].tolist())
        )


class NumpyMaxKernel(_NumpySelectionKernel):
    """Max over numeric arrays: ``np.maximum`` reduce/accumulate."""

    _reduce_name = "maximum"
    _strictly_better = staticmethod(lambda a, b: a > b)


class NumpyMinKernel(_NumpySelectionKernel):
    """Min over numeric arrays: ``np.minimum`` reduce/accumulate."""

    _reduce_name = "minimum"
    _strictly_better = staticmethod(lambda a, b: a < b)


#: Registry name → numpy kernel class layered over the pure factory.
_KERNELS = {
    "sum": NumpySumKernel,
    "sum_of_squares": NumpySumOfSquaresKernel,
    "product": NumpyProductKernel,
    "max": NumpyMaxKernel,
    "min": NumpyMinKernel,
}


def register(
    register_factory: Callable[..., None],
    existing: Dict[str, Callable[[AggregateOperator], Optional[BatchKernel]]],
) -> None:
    """Layer numpy kernels over the already-registered pure factories."""
    for name, kernel_class in _KERNELS.items():
        pure_factory = existing.get(name)
        if pure_factory is None:  # pragma: no cover - defensive
            continue
        register_factory(name, _factory(kernel_class, pure_factory))


def _factory(
    kernel_class: type,
    pure_factory: Callable[[AggregateOperator], Optional[BatchKernel]],
) -> Callable[[AggregateOperator], Optional[BatchKernel]]:
    def build(operator: AggregateOperator) -> Optional[BatchKernel]:
        pure = pure_factory(operator)
        if pure is None:  # the pure type guard declined; so do we
            return None
        return kernel_class(operator, pure)

    return build
