"""Windows substrate: ACQ specs, slicing (PATs), and shared plans.

Implements paper Sections 2.1 (Panes / Pairs / Cutty partial
aggregation) and 2.3 (shared processing of ACQs via LCM composite
slides), plus the partial aggregator that feeds final aggregation.
"""

from repro.windows.compatibility import (
    AcqSpec,
    CompatibleSharedEngine,
    SharingPlan,
    build_sharing_plan,
    distributive_components,
)
from repro.windows.partial import CompletedPartial, PartialAggregator
from repro.windows.timebased import (
    TimeQuery,
    TimeSlicer,
    TimeWindowEngine,
    slice_duration,
)
from repro.windows.plan import (
    PlanCursor,
    PlanStep,
    ScheduledQuery,
    SharedPlan,
    build_shared_plan,
)
from repro.windows.query import Query, max_range
from repro.windows.slicing import (
    ALL_TECHNIQUES,
    CUTTY,
    PAIRS,
    PANES,
    composite_slide,
    cutty_edges,
    edges_for,
    pairs_edges,
    panes_edges,
    partial_lengths,
    punctuation_count,
)

__all__ = [
    "Query",
    "max_range",
    "PANES",
    "PAIRS",
    "CUTTY",
    "ALL_TECHNIQUES",
    "composite_slide",
    "panes_edges",
    "pairs_edges",
    "cutty_edges",
    "edges_for",
    "partial_lengths",
    "punctuation_count",
    "SharedPlan",
    "PlanStep",
    "ScheduledQuery",
    "PlanCursor",
    "build_shared_plan",
    "CompletedPartial",
    "PartialAggregator",
    "TimeQuery",
    "TimeSlicer",
    "TimeWindowEngine",
    "slice_duration",
    "AcqSpec",
    "SharingPlan",
    "build_sharing_plan",
    "distributive_components",
    "CompatibleSharedEngine",
]
