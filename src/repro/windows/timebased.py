"""Time-based windows (paper Section 1).

"ACQs are typically associated with a range (r) and a slide (s) ...
which can be either count or time-based."  The evaluation uses
count-based windows throughout; this module supplies the time-based
variant as the natural extension: ranges and slides are durations,
tuples carry timestamps, and the stream is cut into uniform *time
slices* whose length is the GCD of all durations.

The reduction to the count-based machinery is exact:

* every time slice becomes one partial aggregate — including **empty
  slices**, which emit the operator identity (this is what keeps the
  number of partials per window constant, so the count-based final
  aggregators apply unchanged);
* a time query of range ``r`` and slide ``s`` becomes a count query of
  ``r/g`` partials range and ``s/g`` partials slide, where ``g`` is
  the slice duration.

Durations are validated to be exact multiples of a configurable
resolution (milliseconds by default) so the GCD arithmetic stays in
integers — float durations such as 0.1 s are handled exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import reduce
from typing import Any, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import InvalidQueryError, OutOfOrderError
from repro.operators.base import AggregateOperator
from repro.operators.views import partial_view
from repro.windows.query import Query

#: Default duration resolution: 1 millisecond.
DEFAULT_RESOLUTION = 0.001

#: One emitted result: (window end timestamp, query, answer).
TimeAnswer = Tuple[float, "TimeQuery", Any]


def _to_ticks(seconds: float, resolution: float, what: str) -> int:
    """Convert a duration to integer resolution ticks, exactly."""
    ticks = seconds / resolution
    rounded = round(ticks)
    if rounded < 1 or not math.isclose(ticks, rounded, rel_tol=1e-9):
        raise InvalidQueryError(
            f"{what} of {seconds}s is not a positive multiple of the "
            f"{resolution}s resolution"
        )
    return rounded


@dataclass(frozen=True)
class TimeQuery:
    """A time-based ACQ: ``range_seconds`` reported every
    ``slide_seconds``.

    Attributes:
        range_seconds: Window duration.
        slide_seconds: Reporting period.
        name: Optional label; defaults to ``q{range}s/{slide}s``.
    """

    range_seconds: float
    slide_seconds: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.range_seconds <= 0:
            raise InvalidQueryError(
                f"time range must be positive, got {self.range_seconds}"
            )
        if self.slide_seconds <= 0:
            raise InvalidQueryError(
                f"time slide must be positive, got {self.slide_seconds}"
            )
        if not self.name:
            object.__setattr__(
                self,
                "name",
                f"q{self.range_seconds:g}s/{self.slide_seconds:g}s",
            )

    def to_count_query(
        self, slice_seconds: float, resolution: float = DEFAULT_RESOLUTION
    ) -> Query:
        """The equivalent count-based query over time-slice partials."""
        slice_ticks = _to_ticks(slice_seconds, resolution, "slice")
        range_ticks = _to_ticks(self.range_seconds, resolution, "range")
        slide_ticks = _to_ticks(self.slide_seconds, resolution, "slide")
        if range_ticks % slice_ticks or slide_ticks % slice_ticks:
            raise InvalidQueryError(
                f"{self.name}: range/slide are not multiples of the "
                f"{slice_seconds}s slice"
            )
        return Query(
            range_ticks // slice_ticks,
            slide_ticks // slice_ticks,
            name=self.name,
        )


def slice_duration(
    queries: Sequence[TimeQuery],
    resolution: float = DEFAULT_RESOLUTION,
) -> float:
    """The shared time-slice length: GCD of all ranges and slides.

    This is the time-based analogue of the Panes pane (Section 2.1):
    every window start and end lands on a slice boundary.
    """
    if not queries:
        raise InvalidQueryError("time query set must not be empty")
    ticks = []
    for query in queries:
        ticks.append(_to_ticks(query.range_seconds, resolution, "range"))
        ticks.append(_to_ticks(query.slide_seconds, resolution, "slide"))
    return reduce(math.gcd, ticks) * resolution


class TimeSlicer:
    """Cut a timestamped stream into uniform time slices.

    Tuples are ``(timestamp, value)`` with non-decreasing timestamps
    (late tuples raise :class:`OutOfOrderError`; route the stream
    through :class:`~repro.stream.outoforder.ReorderBuffer` first if
    needed).  Slice ``k`` covers ``[origin + k·g, origin + (k+1)·g)``.
    Empty slices are emitted explicitly so downstream partials stay
    aligned with wall-clock boundaries.
    """

    def __init__(self, slice_seconds: float, origin: float = 0.0):
        # Deferred import: repro.windows initializes before repro.stream
        # during package import, so binding the watermark types at call
        # time keeps the layering acyclic.
        from repro.stream.watermark import TimeSliceClock, Watermark

        if slice_seconds <= 0:
            raise InvalidQueryError(
                f"slice duration must be positive, got {slice_seconds}"
            )
        self._clock = TimeSliceClock(slice_seconds, origin)
        self.slice_seconds = slice_seconds
        self.origin = origin
        self._current_index = 0
        self._buffer: List[Any] = []
        # A sorted stream is its own watermark: every timestamp promises
        # nothing older follows, so the cursor trails by zero lateness.
        self._watermark = Watermark(-math.inf)

    def _index_of(self, timestamp: float) -> int:
        return self._clock.slice_of(timestamp)

    def feed(
        self, timestamp: float, value: Any
    ) -> Iterator[Tuple[int, List[Any]]]:
        """Accept one tuple; yield every slice it closes.

        Yields ``(slice_index, values)`` pairs, including empty-value
        pairs for slices no tuple fell into.
        """
        if timestamp < self._watermark.value:
            raise OutOfOrderError(
                f"timestamp {timestamp} precedes "
                f"{self._watermark.value}",
                position=timestamp,
                watermark=self._watermark.value,
            )
        if timestamp < self.origin:
            raise OutOfOrderError(
                f"timestamp {timestamp} precedes the origin "
                f"{self.origin}",
                position=timestamp,
                watermark=self.origin,
            )
        self._watermark.advance(timestamp)
        index = self._clock.slices_closed_by(self._watermark.value)
        while index > self._current_index:
            closed = self._buffer
            self._buffer = []
            yield (self._current_index, closed)
            self._current_index += 1
        self._buffer.append(value)

    def flush(self) -> Iterator[Tuple[int, List[Any]]]:
        """Close the slice in progress (end of stream)."""
        closed = self._buffer
        self._buffer = []
        yield (self._current_index, closed)
        self._current_index += 1


class TimeWindowEngine:
    """Run time-based ACQs over a timestamped stream.

    Reduces the time queries to count queries over shared time slices
    and executes them with the SlickDeque shared plan: each slice's
    values fold into one partial (the identity for empty slices), and
    the inner engine consumes partials through a
    :func:`~repro.operators.views.partial_view`.  Answers are
    ``(window_end_timestamp, query, answer)`` triples.
    """

    def __init__(
        self,
        queries: Sequence[TimeQuery],
        operator: AggregateOperator,
        origin: float = 0.0,
        resolution: float = DEFAULT_RESOLUTION,
        technique: str = "pairs",
    ):
        from repro.core.multiquery import SharedSlickDeque

        self.queries = tuple(queries)
        self.operator = operator
        self.origin = origin
        self.slice_seconds = slice_duration(self.queries, resolution)
        count_to_time = {}
        for query in self.queries:
            count_query = query.to_count_query(
                self.slice_seconds, resolution
            )
            count_to_time[count_query] = query
        self._count_to_time = count_to_time
        self._slicer = TimeSlicer(self.slice_seconds, origin)
        self._engine = SharedSlickDeque(
            list(count_to_time), partial_view(operator), technique
        )

    def _close_slice(self, values: List[Any]) -> List[TimeAnswer]:
        op = self.operator
        partial = op.fold(values)
        answers: List[TimeAnswer] = []
        for position, count_query, raw in self._engine.feed(partial):
            end_time = self.origin + position * self.slice_seconds
            answers.append(
                (
                    end_time,
                    self._count_to_time[count_query],
                    op.lower(raw),
                )
            )
        return answers

    def feed(self, timestamp: float, value: Any) -> List[TimeAnswer]:
        """Consume one timestamped tuple; return released answers."""
        answers: List[TimeAnswer] = []
        for _, values in self._slicer.feed(timestamp, value):
            answers.extend(self._close_slice(values))
        return answers

    def finish(self) -> List[TimeAnswer]:
        """Close the open slice and return its answers."""
        answers: List[TimeAnswer] = []
        for _, values in self._slicer.flush():
            answers.extend(self._close_slice(values))
        return answers

    def run(
        self, stream: Iterable[Tuple[float, Any]]
    ) -> Iterator[TimeAnswer]:
        """Stream ``(timestamp, value)`` pairs; yield every answer."""
        for timestamp, value in stream:
            yield from self.feed(timestamp, value)
        yield from self.finish()
