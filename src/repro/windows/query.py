"""Aggregate Continuous Query (ACQ) specification.

An ACQ is "typically associated with a range (r) and a slide (s) (also
referred to as window and shift): a slide denotes the period at which an
ACQ updates its answer; a range is the window for which the statistics
are calculated" (paper Section 1).

This library uses count-based semantics throughout, matching the
paper's evaluation ("we varied the window size from 1 tuple to 134
million tuples ... setting all query slides to one tuple").  Stream
tuples are numbered 1, 2, 3, …; a query with slide ``s`` reports at
every position ``t`` divisible by ``s`` and its answer covers the last
``min(t, range)`` tuples — during warm-up the missing prefix behaves as
the operator identity, exactly like the ``initVal``-filled ``partials``
array of Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidQueryError


@dataclass(frozen=True, order=True)
class Query:
    """A count-based ACQ: ``range_size`` tuples, reported every ``slide``.

    Instances are immutable, hashable, and ordered (by range then
    slide), so shared plans can sort and deduplicate them.

    Attributes:
        range_size: Window length in tuples (the paper's ``r``).
        slide: Reporting period in tuples (the paper's ``s``).
        name: Optional label used in answers and reports; defaults to
            ``q{range}/{slide}``.
    """

    range_size: int
    slide: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.range_size < 1:
            raise InvalidQueryError(
                f"query range must be >= 1 tuple, got {self.range_size}"
            )
        if self.slide < 1:
            raise InvalidQueryError(
                f"query slide must be >= 1 tuple, got {self.slide}"
            )
        if not self.name:
            object.__setattr__(
                self, "name", f"q{self.range_size}/{self.slide}"
            )

    @property
    def fragments(self) -> tuple:
        """Pairs fragment lengths ``(f1, f2)`` (paper Section 2.1).

        ``f2 = range % slide`` and ``f1 = slide − f2``.  When the range
        divides evenly, ``f2`` is 0 and the slide is a single fragment.
        """
        f2 = self.range_size % self.slide
        return (self.slide - f2, f2)

    def reports_at(self, position: int) -> bool:
        """Whether this query emits an answer after tuple ``position``."""
        return position % self.slide == 0

    def window_at(self, position: int) -> range:
        """Tuple positions covered by the answer at ``position``.

        Returns a half-open builtin :class:`range` of 1-based positions
        ``(position - range_size, position]`` clipped to the stream
        start — the reference semantics the Recalc oracle implements.
        """
        start = max(0, position - self.range_size)
        return range(start + 1, position + 1)


def max_range(queries) -> int:
    """Largest range among ``queries`` (the plan's window requirement)."""
    ranges = [q.range_size for q in queries]
    if not ranges:
        raise InvalidQueryError("query set must not be empty")
    return max(ranges)
