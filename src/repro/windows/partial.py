"""Partial aggregation: folding raw tuples into partials.

The ``partialAggregator.aggregate(length, PAT)`` of Algorithms 1 and 2:
raw stream values are folded with the query operator until the current
plan step's length is reached, then the completed partial (already a
lifted aggregate value) is handed to the final aggregator together with
its plan step.

:class:`PartialAggregator` is deliberately a push-based object — the
stream engine feeds it one tuple at a time and reacts to completed
partials — so sources never need to be materialised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional

from repro.kernels import as_sequence, exact_fold
from repro.operators.base import Agg, AggregateOperator
from repro.windows.plan import PlanCursor, PlanStep, SharedPlan


@dataclass(frozen=True)
class CompletedPartial:
    """A closed partial aggregate and the plan step that closed it."""

    value: Agg
    step: PlanStep
    #: 1-based stream position of the last tuple folded in.
    position: int


class PartialAggregator:
    """Fold tuples into partials according to a shared plan.

    The paper's Example 1: with two Max ACQs of slides 2 and 4, "the
    calculation producing partial aggregates only needs to be performed
    once every 2 tuples, and both ACQs can use these partial
    aggregates" — this class is that shared pre-aggregation.
    """

    def __init__(self, operator: AggregateOperator, plan: SharedPlan):
        self.operator = operator
        self.plan = plan
        self._cursor = PlanCursor(plan)
        self._target = self._cursor.get_next_partial_length()
        self._accumulated = operator.identity
        self._count = 0
        self._position = 0

    @property
    def open_value(self) -> Agg:
        """The running value of the still-open partial.

        Cutty-style final aggregation reads this mid-partial; for Panes
        and Pairs it is only interesting for debugging.
        """
        return self._accumulated

    @property
    def position(self) -> int:
        """1-based position of the last tuple consumed."""
        return self._position

    def feed(self, value: Any) -> Optional[CompletedPartial]:
        """Fold one tuple; return the partial it completed, if any."""
        self._position += 1
        self._accumulated = self.operator.combine(
            self._accumulated, self.operator.lift(value)
        )
        self._count += 1
        if self._count < self._target:
            return None
        completed = CompletedPartial(
            self._accumulated,
            self._cursor.current_step,
            self._position,
        )
        self._accumulated = self.operator.identity
        self._count = 0
        self._target = self._cursor.get_next_partial_length()
        return completed

    def feed_many(self, values: Iterable[Any]) -> List[CompletedPartial]:
        """Fold a batch, returning every partial it completed.

        The batch is cut at partial boundaries and each segment is
        folded with one kernel call through
        :func:`repro.kernels.exact_fold`, seeded with the running
        accumulator — answers (and the open-partial state left behind)
        are byte-identical to feeding each tuple through :meth:`feed`,
        in every domain.
        """
        values = as_sequence(values)
        operator = self.operator
        completed: List[CompletedPartial] = []
        index = 0
        total = len(values)
        while index < total:
            take = min(self._target - self._count, total - index)
            segment = values[index:index + take]
            self._accumulated = exact_fold(
                operator, segment, self._accumulated
            )
            self._count += take
            self._position += take
            index += take
            if self._count >= self._target:
                completed.append(
                    CompletedPartial(
                        self._accumulated,
                        self._cursor.current_step,
                        self._position,
                    )
                )
                self._accumulated = operator.identity
                self._count = 0
                self._target = self._cursor.get_next_partial_length()
        return completed
