"""Compatible-operator sharing (paper Section 2.3).

"Partial results sharing is applicable for all matching aggregate
operations, such as Max, Product, Sum, etc. and for different but
compatible aggregate operations, for example Sum, Count and Average
can share results by treating Average as sum/count."

This module generalises the shared plan across *operators*: ACQs are
decomposed into their distributive components (Mean → Sum + Count,
StdDev → SumSq + Sum + Count, Range → Max + Min, ...), queries sharing
a component share one execution engine for it, and per-query
finalizers reassemble the answers.  Maximum sharing over both the
window structure (LCM composite slides) and the operator algebra.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import InvalidOperatorError
from repro.operators.algebraic import ComposedOperator
from repro.operators.base import AggregateOperator
from repro.operators.registry import get_operator
from repro.windows.query import Query


@dataclass(frozen=True)
class AcqSpec:
    """One registered ACQ: a window spec plus its aggregate operation."""

    query: Query
    operator_name: str

    @property
    def label(self) -> str:
        return f"{self.operator_name}[{self.query.name}]"


def distributive_components(
    operator: AggregateOperator,
) -> List[AggregateOperator]:
    """The distributive components an operator decomposes into.

    Plain distributive operators are their own single component;
    algebraic compositions expose theirs (Section 3.1).
    """
    if isinstance(operator, ComposedOperator):
        return list(operator.components)
    return [operator]


@dataclass
class SharingPlan:
    """Which component engines exist and which queries read them.

    Attributes:
        components: Component name → operator instance, deduplicated
            across every registered ACQ.
        readers: Per ACQ, the ordered component names its finalizer
            consumes.
        specs: The registered ACQs.
    """

    components: Dict[str, AggregateOperator] = field(default_factory=dict)
    readers: Dict[AcqSpec, Tuple[str, ...]] = field(default_factory=dict)
    specs: Tuple[AcqSpec, ...] = ()

    @property
    def shared_component_count(self) -> int:
        return len(self.components)

    @property
    def unshared_component_count(self) -> int:
        """Components that would run without cross-operator sharing."""
        return sum(len(names) for names in self.readers.values())

    def describe(self) -> str:
        """Human-readable component/reader map for reports."""
        lines = [
            f"SharingPlan: {len(self.specs)} ACQs -> "
            f"{self.shared_component_count} shared component engines "
            f"(vs {self.unshared_component_count} unshared)",
        ]
        for spec in self.specs:
            names = ", ".join(self.readers[spec])
            lines.append(f"  {spec.label} <- [{names}]")
        return "\n".join(lines)


def build_sharing_plan(specs: Sequence[AcqSpec]) -> SharingPlan:
    """Decompose ACQs into shared distributive components."""
    plan = SharingPlan(specs=tuple(specs))
    for spec in specs:
        operator = get_operator(spec.operator_name)
        names = []
        for component in distributive_components(operator):
            if component.name not in plan.components:
                plan.components[component.name] = component
            names.append(component.name)
        plan.readers[spec] = tuple(names)
    return plan


class CompatibleSharedEngine:
    """Execute heterogeneous-operator ACQs with component sharing.

    One :class:`~repro.core.multiquery.SharedSlickDeque` runs per
    distinct distributive component (over the union of all windows
    that read it); each ACQ's answers are finalized from its
    components.  Sum, Count and Mean queries over the same stream thus
    share the Sum and Count engines, exactly as Section 2.3 describes.
    """

    def __init__(
        self, specs: Sequence[AcqSpec], technique: str = "pairs"
    ):
        from repro.core.multiquery import SharedSlickDeque

        if not specs:
            raise InvalidOperatorError(
                "at least one ACQ is required for a sharing plan"
            )
        self.plan = build_sharing_plan(specs)
        self._operators: Dict[AcqSpec, AggregateOperator] = {
            spec: get_operator(spec.operator_name)
            for spec in self.plan.specs
        }
        # Per component: the union of queries that read it.
        component_queries: Dict[str, set] = {
            name: set() for name in self.plan.components
        }
        for spec in self.plan.specs:
            for name in self.plan.readers[spec]:
                component_queries[name].add(spec.query)
        self._engines: Dict[str, Any] = {
            name: SharedSlickDeque(
                sorted(queries), self.plan.components[name], technique
            )
            for name, queries in component_queries.items()
        }

    def feed(self, value: Any) -> List[Tuple[int, AcqSpec, Any]]:
        """Consume one tuple; return finalized answers for due ACQs."""
        # Collect raw component answers keyed by (position, query).
        produced: Dict[Tuple[int, Query], Dict[str, Any]] = {}
        order: List[Tuple[int, Query]] = []
        for name, engine in self._engines.items():
            for position, query, answer in engine.feed(value):
                key = (position, query)
                if key not in produced:
                    produced[key] = {}
                    order.append(key)
                produced[key][name] = answer
        answers: List[Tuple[int, AcqSpec, Any]] = []
        for position, query in order:
            raw = produced[(position, query)]
            for spec in self.plan.specs:
                if spec.query != query:
                    continue
                names = self.plan.readers[spec]
                if any(name not in raw for name in names):
                    continue
                operator = self._operators[spec]
                if isinstance(operator, ComposedOperator):
                    value_out = operator.lower(
                        tuple(raw[name] for name in names)
                    )
                else:
                    value_out = raw[names[0]]
                answers.append((position, spec, value_out))
        return answers

    def run(
        self, values: Iterable[Any]
    ) -> Iterator[Tuple[int, AcqSpec, Any]]:
        """Stream an iterable, yielding every finalized answer."""
        for value in values:
            yield from self.feed(value)
