"""Shared execution plans for multi-query processing (Section 2.3).

``buildSharedPlan`` in Algorithms 1 and 2 combines all compatible ACQs
into one plan: the composite slide is the LCM of the slides, every
query's fragment edges are marked inside it, and each resulting edge
carries the set of queries whose answers are due there, "ordered
descendingly by their range" (Algorithm 2's observation that larger
ranges correspond to deque nodes closer to the head).

One generalisation beyond the paper's pseudocode: Algorithm 1 treats a
query's range measured *in partials* (``qR``) as a constant, which holds
when all slides are equal (the paper's evaluation) or when the edge
pattern is uniform.  With heterogeneous slides the number of partials
inside a window varies with the window's phase in the composite cycle,
so the plan precomputes the lookback per (query, step).  Consumers that
need the constant-``qR`` fast path can check
:attr:`SharedPlan.uniform_lookback`.

Cutty slicing schedules answers in the middle of open partials, which
needs engine support rather than plan steps; :func:`build_shared_plan`
therefore accepts Panes and Pairs (see DESIGN.md "Known, intentional
deviations").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from repro.errors import PlanError
from repro.windows.query import Query
from repro.windows.slicing import (
    CUTTY,
    PAIRS,
    PANES,
    edges_for,
    partial_lengths,
)


@dataclass(frozen=True)
class ScheduledQuery:
    """A query due at a plan step, with its range in partials."""

    query: Query
    #: Number of partials covering the query's range at this step
    #: (Algorithm 1's ``qR``; may differ between steps of one cycle).
    lookback: int


@dataclass(frozen=True)
class PlanStep:
    """One partial boundary inside the composite cycle."""

    #: Boundary offset within the cycle, in ``1..cycle_length``.
    end_offset: int
    #: Tuples aggregated into the partial that ends here.
    length: int
    #: Queries answered here, ordered descending by range.
    answers: Tuple[ScheduledQuery, ...] = field(default_factory=tuple)


def _count_edges_between(
    edges: Sequence[int], cycle: int, low: int, high: int
) -> int:
    """Count edge positions in the half-open stream interval (low, high].

    The edge pattern repeats every ``cycle`` tuples; ``edges`` holds the
    offsets of one cycle in ``1..cycle``.
    """
    if high <= low:
        return 0
    span = high - low
    full_cycles, remainder = divmod(span, cycle)
    count = full_cycles * len(edges)
    # Remaining stretch: (high - remainder, high].  Count edges whose
    # offset falls inside it, mapping stream positions to offsets.
    for offset in edges:
        # Smallest stream position > high - remainder with this offset:
        delta = (offset - (high - remainder)) % cycle
        position = (high - remainder) + (delta if delta else cycle)
        if position <= high:
            count += 1
    return count


class SharedPlan:
    """A fully-materialised shared execution plan.

    Attributes:
        queries: The ACQs combined into the plan.
        technique: Partial-aggregation technique name.
        cycle_length: The composite slide (LCM of slides).
        edges: Edge offsets within one cycle, sorted, in
            ``1..cycle_length``.
        steps: One :class:`PlanStep` per edge.
        w_size: Longest range in partials across all steps — the window
            length the final aggregator must hold (``wSize``).
    """

    def __init__(
        self,
        queries: Sequence[Query],
        technique: str,
        cycle_length: int,
        steps: Sequence[PlanStep],
    ):
        self.queries: Tuple[Query, ...] = tuple(queries)
        self.technique = technique
        self.cycle_length = cycle_length
        self.steps: Tuple[PlanStep, ...] = tuple(steps)
        self.edges: Tuple[int, ...] = tuple(s.end_offset for s in steps)
        lookbacks = [
            sq.lookback for step in self.steps for sq in step.answers
        ]
        if not lookbacks:
            raise PlanError("plan schedules no query answers")
        self.w_size: int = max(lookbacks)

    @property
    def partials_per_cycle(self) -> int:
        return len(self.steps)

    @property
    def uniform_lookback(self) -> bool:
        """True when every query's range-in-partials is step-invariant.

        This is the regime Algorithm 1's constant ``qR`` assumes; it
        always holds when all slides are equal.
        """
        per_query: dict = {}
        for step in self.steps:
            for sq in step.answers:
                seen = per_query.setdefault(sq.query, sq.lookback)
                if seen != sq.lookback:
                    return False
        return True

    def schedule(self) -> Iterator[PlanStep]:
        """Infinite cyclic iterator over plan steps (Execution phase)."""
        while True:
            yield from self.steps

    def describe(self) -> str:
        """Human-readable plan summary for reports and examples."""
        lines = [
            f"SharedPlan[{self.technique}] cycle={self.cycle_length} "
            f"partials/cycle={self.partials_per_cycle} wSize={self.w_size}",
        ]
        for step in self.steps:
            names = ", ".join(
                f"{sq.query.name}(lookback={sq.lookback})"
                for sq in step.answers
            )
            lines.append(
                f"  @{step.end_offset:>4} len={step.length:>3} "
                f"answers=[{names}]"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedPlan(queries={len(self.queries)}, "
            f"technique={self.technique!r}, wSize={self.w_size})"
        )


class PlanCursor:
    """Stateful walker exposing the paper's ``sharedPlan`` accessors.

    Algorithms 1 and 2 call ``getNextPartialLength()`` then
    ``getNextSetOfQueries()`` once per loop iteration; this cursor
    provides exactly that interface over a :class:`SharedPlan`.
    """

    def __init__(self, plan: SharedPlan):
        self.plan = plan
        # A plain index rather than a generator keeps the cursor
        # picklable (stream checkpointing snapshots whole engines).
        self._index = -1
        self._current: PlanStep = None  # type: ignore[assignment]

    def get_next_partial_length(self) -> int:
        """Advance to the next step; return its partial length."""
        self._index = (self._index + 1) % len(self.plan.steps)
        self._current = self.plan.steps[self._index]
        return self._current.length

    @property
    def current_step(self) -> PlanStep:
        """The step most recently returned by the iterator."""
        if self._current is None:
            raise PlanError("cursor has not been advanced yet")
        return self._current

    def get_next_set_of_queries(self) -> Tuple[ScheduledQuery, ...]:
        """Queries due at the current step, descending by range."""
        if self._current is None:
            raise PlanError(
                "call get_next_partial_length() before "
                "get_next_set_of_queries()"
            )
        return self._current.answers


def build_shared_plan(
    queries: Sequence[Query], technique: str = PAIRS
) -> SharedPlan:
    """The ``buildSharedPlan(Q, PAT)`` of Algorithms 1 and 2.

    Args:
        queries: The ACQ set to combine; duplicates are collapsed.
        technique: ``"panes"`` or ``"pairs"``.  Cutty is rejected here
            because its window ends fall mid-partial; use the stream
            engine's Cutty pipeline for single-query Cutty execution.

    Raises:
        PlanError: empty query set, unknown or unsupported technique,
            or a query whose window boundaries miss the edge set (which
            would indicate a slicing bug — checked defensively).
    """
    unique = sorted(set(queries))
    if not unique:
        raise PlanError("cannot build a shared plan for zero queries")
    if technique == CUTTY:
        raise PlanError(
            "cutty slicing answers queries mid-partial and is supported "
            "through the single-query engine pipeline, not shared plans; "
            "use 'panes' or 'pairs' here"
        )
    if technique not in (PANES, PAIRS):
        # edges_for raises with the full technique list.
        edges_for(technique, unique)
    cycle, edges = edges_for(technique, unique)
    lengths = partial_lengths(edges, cycle)

    edge_set = set(edges)
    steps: List[PlanStep] = []
    for end_offset, length in zip(edges, lengths):
        scheduled: List[ScheduledQuery] = []
        for query in sorted(
            unique, key=lambda q: q.range_size, reverse=True
        ):
            if end_offset % query.slide != 0:
                continue
            start = end_offset - query.range_size
            start_offset = start % cycle
            if (cycle if start_offset == 0 else start_offset) not in edge_set:
                raise PlanError(
                    f"window start of {query.name} at offset {end_offset} "
                    f"does not align with a {technique} edge — slicing bug"
                )
            lookback = _count_edges_between(
                edges, cycle, start, end_offset
            )
            scheduled.append(ScheduledQuery(query, lookback))
        steps.append(PlanStep(end_offset, length, tuple(scheduled)))
    return SharedPlan(unique, technique, cycle, steps)
