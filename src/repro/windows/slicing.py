"""Partial-aggregation techniques (PATs) — paper Section 2.1.

A PAT decides where the incoming stream is cut into partial aggregates
("edges").  All three techniques the paper reviews are implemented:

* **Panes** — cut every ``gcd`` of all ranges and slides; every window
  start *and* end lands on an edge.
* **Pairs** — per query, cut at window ends (``t ≡ 0 (mod s)``) and at
  window starts (``t ≡ s − f2`` where ``f2 = r mod s``); at most two
  fragments per slide, half the partials of Panes in the common case.
* **Cutty** — cut only at window *starts*; window ends are served
  mid-partial by reading the running partial value, at the cost of
  punctuations on the stream.

Edges are expressed as offsets within one *composite slide* — the LCM of
all query slides (Section 2.3) — because the cut pattern is periodic
with that length.  An edge at offset ``e`` means the boundary after
every stream position ``t`` with ``t mod L == e`` (offset 0 is stored as
``L`` so offsets are in ``1..L``).
"""

from __future__ import annotations

import math
from functools import reduce
from typing import Iterable, List, Sequence, Tuple

from repro.errors import PlanError
from repro.windows.query import Query

#: Registry keys for the three techniques.
PANES = "panes"
PAIRS = "pairs"
CUTTY = "cutty"

ALL_TECHNIQUES = (PANES, PAIRS, CUTTY)


def composite_slide(queries: Sequence[Query]) -> int:
    """LCM of all query slides (paper Section 2.3)."""
    if not queries:
        raise PlanError("cannot build a composite slide for zero queries")
    return reduce(math.lcm, (q.slide for q in queries), 1)


def _normalize(offsets: Iterable[int], cycle: int) -> List[int]:
    """Map offsets into ``1..cycle``, dedupe, sort."""
    wrapped = set()
    for offset in offsets:
        value = offset % cycle
        wrapped.add(cycle if value == 0 else value)
    return sorted(wrapped)


def panes_edges(queries: Sequence[Query], cycle: int) -> List[int]:
    """Panes: edges every ``g = gcd`` of all ranges and slides.

    The pane length divides every range and every slide, so both ends of
    every window align with edges; each tuple belongs to exactly one
    pane (Figure 1).
    """
    pane = reduce(
        math.gcd,
        [q.range_size for q in queries] + [q.slide for q in queries],
    )
    return _normalize(range(pane, cycle + 1, pane), cycle)


def pairs_edges(queries: Sequence[Query], cycle: int) -> List[int]:
    """Pairs: per-query fragments ``f1``/``f2`` (Figure 2).

    For each query, edges fall at window ends (offsets ``≡ 0 mod s``)
    and, when ``f2 = r mod s`` is non-zero, also at window starts
    (offsets ``≡ s − f2 mod s``).  The union over queries is the shared
    edge set.
    """
    offsets: List[int] = []
    for q in queries:
        f1, f2 = q.fragments
        offsets.extend(range(q.slide, cycle + 1, q.slide))
        if f2:
            offsets.extend(
                range(f1, cycle + 1, q.slide)
            )  # f1 == s - f2: window-start phase
    return _normalize(offsets, cycle)


def cutty_edges(queries: Sequence[Query], cycle: int) -> List[int]:
    """Cutty: edges only at window starts (Figure 3).

    Window ends are *not* edges; a final aggregation executing at a
    window end must read the running (open) partial.  The number of
    punctuations per cycle equals the number of edges, which is what the
    slicing ablation bench reports.
    """
    offsets: List[int] = []
    for q in queries:
        # A window reported at t starts after tuple t - r, i.e. at the
        # phase -r ≡ s - (r mod s) (mod s).
        start_phase = (-q.range_size) % q.slide
        offsets.extend(range(start_phase, cycle + 1, q.slide))
    edges = _normalize(offsets, cycle)
    if not edges:
        # Degenerate but possible only for empty query sets, which
        # composite_slide already rejects; guard anyway.
        raise PlanError("cutty slicing produced no edges")
    return edges


_EDGE_FUNCTIONS = {
    PANES: panes_edges,
    PAIRS: pairs_edges,
    CUTTY: cutty_edges,
}


def edges_for(
    technique: str, queries: Sequence[Query]
) -> Tuple[int, List[int]]:
    """Return ``(cycle_length, edge offsets)`` for a PAT by name.

    Raises:
        PlanError: for an unknown technique name.
    """
    try:
        edge_fn = _EDGE_FUNCTIONS[technique]
    except KeyError:
        raise PlanError(
            f"unknown partial aggregation technique {technique!r}; "
            f"expected one of {ALL_TECHNIQUES}"
        ) from None
    cycle = composite_slide(list(queries))
    return cycle, edge_fn(list(queries), cycle)


def partial_lengths(edges: Sequence[int], cycle: int) -> List[int]:
    """Lengths of the partials between consecutive edges, cyclically.

    ``lengths[i]`` is the number of tuples in the partial *ending* at
    ``edges[i]``; the first partial wraps from the last edge of the
    previous cycle.  Lengths always sum to the cycle length.
    """
    if not edges:
        raise PlanError("edge set must not be empty")
    lengths = []
    previous = edges[-1] - cycle  # last edge of the previous cycle
    for edge in edges:
        lengths.append(edge - previous)
        previous = edge
    return lengths


def punctuation_count(technique: str, queries: Sequence[Query]) -> int:
    """Punctuations per composite slide a PAT injects into the stream.

    Panes and Pairs cut at positions computable from (range, slide)
    alone, so they need no punctuations; Cutty "comes at a cost:
    additional punctuations have to be sent over the data stream ... to
    indicate the beginnings of the new partials" (Section 2.1) — one per
    edge.
    """
    cycle, edges = edges_for(technique, queries)
    del cycle
    return len(edges) if technique == CUTTY else 0
