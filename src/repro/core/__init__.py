"""SlickDeque — the paper's contribution (Section 3).

* :class:`SlickDequeInv` / :class:`SlickDequeInvMulti` — Algorithm 1,
  invertible aggregates.
* :class:`SlickDequeNonInv` / :class:`SlickDequeNonInvMulti` —
  Algorithm 2, non-invertible (selection) aggregates.
* :func:`make_slickdeque` / :func:`make_slickdeque_multi` — the
  invertibility dispatch, including component-wise decomposition of
  algebraic operators such as Range.
* :class:`SharedSlickDeque` — the full shared-plan execution loop over
  heterogeneous ACQ sets.
"""

from repro.core.algorithm1 import PaperAlgorithm1
from repro.core.facade import (
    ComponentwiseAggregator,
    ComponentwiseMultiAggregator,
    make_slickdeque,
    make_slickdeque_multi,
)
from repro.core.multiquery import SharedSlickDeque
from repro.core.slickdeque_inv import SlickDequeInv, SlickDequeInvMulti
from repro.core.slickdeque_noninv import (
    ChunkedSlickDequeNonInv,
    SlickDequeNonInv,
    SlickDequeNonInvMulti,
    chunked_space_words,
)
from repro.core.slickdeque_noninv_wrapped import WrappedSlickDequeNonInvMulti

__all__ = [
    "SlickDequeInv",
    "SlickDequeInvMulti",
    "SlickDequeNonInv",
    "SlickDequeNonInvMulti",
    "ChunkedSlickDequeNonInv",
    "chunked_space_words",
    "WrappedSlickDequeNonInvMulti",
    "PaperAlgorithm1",
    "ComponentwiseAggregator",
    "ComponentwiseMultiAggregator",
    "make_slickdeque",
    "make_slickdeque_multi",
    "SharedSlickDeque",
]
