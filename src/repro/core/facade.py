"""Invertibility-dispatched SlickDeque construction.

"The key contribution of this paper is ... the differentiated handling
of aggregate operations based on their invertibility" (Section 6).
:func:`make_slickdeque` / :func:`make_slickdeque_multi` are that
dispatch: invertible operators ride Algorithm 1
(:class:`~repro.core.slickdeque_inv.SlickDequeInv`), selection-type
non-invertible operators ride Algorithm 2
(:class:`~repro.core.slickdeque_noninv.SlickDequeNonInv`), and
non-invertible *algebraic* compositions (the paper's Range = Max − Min)
are decomposed into one selection deque per distributive component.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.baselines.base import MultiQueryAggregator, SlidingAggregator
from repro.errors import InvalidOperatorError
from repro.operators.algebraic import ComposedOperator
from repro.operators.base import AggregateOperator
from repro.core.slickdeque_inv import SlickDequeInv, SlickDequeInvMulti
from repro.core.slickdeque_noninv import (
    SlickDequeNonInv,
    SlickDequeNonInvMulti,
)


class ComponentwiseAggregator(SlidingAggregator):
    """One SlickDeque per distributive component of an algebraic op.

    Used for compositions like Range whose tuple-valued combine is not
    selection-type even though each component is.  Queries finalize the
    component answers (Section 3.1: "calculating the algebraic
    aggregations follows trivially").
    """

    supports_multi_query = True

    def __init__(self, operator: ComposedOperator, window: int):
        super().__init__(operator, window)
        self._parts: List[SlidingAggregator] = [
            make_slickdeque(component, window)
            for component in operator.components
        ]

    def push(self, value: Any) -> None:
        for part in self._parts:
            part.push(value)

    def query(self) -> Any:
        lowered = [part.query() for part in self._parts]
        return self.operator.lower(tuple(lowered))

    def memory_words(self) -> int:
        return sum(part.memory_words() for part in self._parts)


class ComponentwiseMultiAggregator(MultiQueryAggregator):
    """Multi-query variant of :class:`ComponentwiseAggregator`."""

    def __init__(self, operator: ComposedOperator, ranges: Sequence[int]):
        super().__init__(operator, ranges)
        self._parts: List[MultiQueryAggregator] = [
            make_slickdeque_multi(component, ranges)
            for component in operator.components
        ]

    def step(self, value: Any) -> Dict[int, Any]:
        part_answers = [part.step(value) for part in self._parts]
        return {
            r: self.operator.lower(tuple(pa[r] for pa in part_answers))
            for r in self.ranges
        }

    def memory_words(self) -> int:
        return sum(part.memory_words() for part in self._parts)


def make_slickdeque(
    operator: AggregateOperator, window: int
) -> SlidingAggregator:
    """Build the right single-query SlickDeque for ``operator``.

    Raises:
        InvalidOperatorError: for operators that are neither invertible
            nor selection-type nor decomposable (e.g. holistic
            aggregations, which the paper scopes out).
    """
    if operator.invertible:
        return SlickDequeInv(operator, window)
    if operator.selects:
        return SlickDequeNonInv(operator, window)
    if isinstance(operator, ComposedOperator):
        return ComponentwiseAggregator(operator, window)
    raise InvalidOperatorError(
        f"operator {operator.name!r} is neither invertible, selection-"
        "type, nor an algebraic composition; SlickDeque targets "
        "distributive and algebraic aggregations (paper Section 3.1)"
    )


def make_slickdeque_multi(
    operator: AggregateOperator, ranges: Sequence[int]
) -> MultiQueryAggregator:
    """Build the right multi-query SlickDeque for ``operator``."""
    if operator.invertible:
        return SlickDequeInvMulti(operator, ranges)
    if operator.selects:
        return SlickDequeNonInvMulti(operator, ranges)
    if isinstance(operator, ComposedOperator):
        return ComponentwiseMultiAggregator(operator, ranges)
    raise InvalidOperatorError(
        f"operator {operator.name!r} is neither invertible, selection-"
        "type, nor an algebraic composition; SlickDeque targets "
        "distributive and algebraic aggregations (paper Section 3.1)"
    )
