"""Wrap-faithful SlickDeque (Non-Inv): Algorithm 2 verbatim.

:mod:`repro.core.slickdeque_noninv` replaces the paper's modular
``currPos`` arithmetic with unbounded sequence numbers.  This module
keeps the paper's exact formulation — positions in ``0..wSize-1``,
``startPos`` rewinding with the ``boundaryCrossed`` flag, and the two
Answer Loops — so the test suite can demonstrate the two are
behaviourally identical (DESIGN.md, "Known, intentional deviations").

It is intentionally a direct transcription, kept out of the production
path: the sequence-number variant is simpler and measurably faster.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Sequence, Tuple

from repro.baselines.base import MultiQueryAggregator
from repro.operators.base import AggregateOperator, require_selection


class WrappedSlickDequeNonInvMulti(MultiQueryAggregator):
    """Algorithm 2 with wrap-around positions, verbatim.

    Nodes are ``(pos, val)`` with ``pos ∈ [0, wSize)``.  The head node
    expires when its ``pos`` equals the position about to be written
    (lines 11-13); answers walk the deque with Answer Loop 1 when the
    range lies inside one window image and Answer Loop 2 when it
    crosses the boundary (lines 26-39).
    """

    def __init__(self, operator: AggregateOperator, ranges: Sequence[int]):
        super().__init__(operator, ranges)
        self._op = require_selection(operator)
        self._deque: deque = deque()
        self._curr_pos = 0  # position the next partial will occupy
        self._steps = 0  # total partials processed (warm-up handling)

    def step(self, value: Any) -> Dict[int, Any]:
        op = self._op
        d = self._deque
        w_size = self.window
        curr_pos = self._curr_pos
        new_partial = op.lift(value)

        # Lines 11-13: the head expires when currPos laps its position.
        if d and d[0][0] == curr_pos and self._steps >= w_size:
            d.popleft()
        # Lines 15-17: pop dominated tail nodes.
        while d and op.dominates(d[-1][1], new_partial):
            d.pop()
        # Line 19 (as described in the text: append after the pops).
        d.append((curr_pos, new_partial))
        self._steps += 1

        answers: Dict[int, Any] = {}
        nodes: List[Tuple[int, Any]] = list(d)
        index = 0  # position i starts at the head (line 21)
        for r in self.ranges:  # descending by range
            # During warm-up a range covers only the tuples seen.
            effective = min(r, self._steps)
            start_pos = curr_pos - effective + 1
            boundary_crossed = False
            if start_pos < 0:
                start_pos += w_size
                boundary_crossed = True
            if not boundary_crossed:
                # Answer Loop 1: valid nodes satisfy
                # startPos <= pos <= currPos.
                while (
                    nodes[index][0] < start_pos
                    or nodes[index][0] > curr_pos
                ):
                    index += 1
            else:
                # Answer Loop 2: the range wraps, so valid nodes
                # satisfy pos >= startPos OR pos <= currPos.
                while (
                    nodes[index][0] < start_pos
                    and nodes[index][0] > curr_pos
                ):
                    index += 1
            answers[r] = op.lower(nodes[index][1])

        # Lines 42-45: advance currPos with wrap-around.
        self._curr_pos = 0 if curr_pos + 1 == w_size else curr_pos + 1
        return answers

    def memory_words(self) -> int:
        return 2 * len(self._deque)
