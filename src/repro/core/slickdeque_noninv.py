"""SlickDeque (Non-Inv) — Algorithm 2 of the paper.

A deque of ``(pos, val)`` nodes:

* an arriving partial first drops the expired head node, if any
  (Algorithm 2 lines 11-13);
* then pops every tail node whose value the new partial dominates —
  ``d.back.val ⊕ newPartial == newPartial`` means the tail "will never
  be a query answer" (lines 15-17);
* the new node is appended (line 19);
* every query's answer is the value of the first node inside its
  range, found in one head-to-tail sweep shared by all queries in
  descending-range order (lines 20-41).

Positions here are **unbounded sequence numbers** instead of the
paper's wrap-around ``currPos``: a node is expired when
``pos ≤ current − window`` and inside a range ``r`` when
``pos > current − r``.  This is semantically identical to the modular
Answer Loop 1 / Answer Loop 2 pair (the boundary-crossing cases exist
only because positions wrap) and removes the window-boundary branches;
the equivalence is exercised in the test suite against
:class:`~repro.core.slickdeque_noninv_wrapped.WrappedSlickDequeNonInvMulti`.

Node storage: the default classes keep nodes in a C-implemented
``collections.deque`` — the fastest structure CPython offers for this
access pattern — and report memory through the paper's §4.2 chunked
formula (``2·nodes`` value/position words plus chunk bookkeeping for
``√n``-slot chunks).  :class:`ChunkedSlickDequeNonInv` instead stores
nodes on the library's own
:class:`~repro.structures.chunked_deque.ChunkedDeque`, whose
*structural* accounting (including real end-chunk over-allocation) the
chunk-size ablation bench sweeps; tests pin both variants to identical
answers.

Complexity (Section 4.1): every partial causes at most two ⊕
operations in its lifetime (one entering, one when a newer partial
evicts it), so the amortized cost is input-dependent but always below
2; the worst single slide is n operations, reachable only on an
adversarially descending input (probability 1/n! under uniform data).
Space (Section 4.2): at most ``2n + 4k + 4n/k`` words with ``k = √n``
chunks, and as little as O(1) when the input keeps the deque short.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Dict, List, Optional, Sequence

from repro.baselines.base import MultiQueryAggregator, SlidingAggregator
from repro.errors import WindowStateError
from repro.kernels import as_sequence, kernel_for
from repro.operators.base import AggregateOperator, require_selection
from repro.structures.chunked_deque import ChunkedDeque, optimal_chunk_size


def chunked_space_words(nodes: int, window: int) -> int:
    """The §4.2 space formula for ``nodes`` two-word deque nodes.

    Chunks hold ``√window`` nodes; the partially-filled chunks at both
    ends are charged in full ("an overall allocation of up to two
    chunks' worth of space"), and each chunk costs two pointer words.
    """
    if nodes == 0:
        return 0
    chunk = max(1, math.isqrt(window))
    chunks = -(-nodes // chunk) + 1  # straddle slack at the two ends
    return 2 * chunk * chunks + 2 * chunks


class SlickDequeNonInv(SlidingAggregator):
    """Single-query SlickDeque (Non-Inv).

    The whole-window answer is always the head node's value, so a
    query costs zero aggregate operations; all ⊕ work happens in the
    dominance pops.
    """

    supports_multi_query = True

    def __init__(self, operator: AggregateOperator, window: int):
        super().__init__(operator, window)
        self._op = require_selection(operator)
        self._kernel = kernel_for(self._op)
        self._nodes: deque = deque()
        self._seq = 0
        # Bind the hot-path callables once; push() runs per tuple.
        self._lift = self._op.lift
        self._dominates = self._op.dominates

    def push(self, value: Any) -> None:
        seq = self._seq + 1
        self._seq = seq
        new_partial = self._lift(value)
        nodes = self._nodes
        # Expired head (Alg. 2 lines 11-13): at most one per slide.
        if nodes and nodes[0][0] <= seq - self.window:
            nodes.popleft()
        # Dominated tail nodes will never be an answer (lines 15-17).
        dominates = self._dominates
        while nodes and dominates(nodes[-1][1], new_partial):
            nodes.pop()
        nodes.append((seq, new_partial))

    def push_many(self, values: Sequence[Any]) -> None:
        """Bulk push: pre-collapse the batch to its dominance chain.

        A batch element survives ``k`` sequential pushes iff no later
        batch element dominates it — i.e. iff it belongs to the batch's
        *suffix chain* (strict suffix extrema for Max/Min, vectorized
        by the numpy kernels).  The merge then runs Algorithm 2 once
        with the chain's head standing in for every evicted batch
        element: the chain head carries the batch's dominant value, so
        the pre-existing tail nodes it dominates are exactly those the
        per-tuple pops would have removed.  Expired heads are dropped
        in one final sweep — per-tuple expiry is monotone in ``seq``,
        so deferring it never changes which nodes survive.  The final
        deque (positions and values) is identical to ``k`` single
        pushes in every domain.
        """
        values = as_sequence(values)
        k = len(values)
        if not k:
            return
        seq0 = self._seq
        self._seq = seq0 + k
        nodes = self._nodes
        window = self.window
        if k >= window:
            # Every pre-existing node and every batch element older
            # than the last `window` expires by batch end.
            offset = k - window
            chain = self._kernel.suffix_chain(values[offset:])
            nodes.clear()
            base = seq0 + offset
            nodes.extend((base + i + 1, agg) for i, agg in chain)
            return
        chain = self._kernel.suffix_chain(values)
        dominates = self._dominates
        head_agg = chain[0][1]
        while nodes and dominates(nodes[-1][1], head_agg):
            nodes.pop()
        nodes.extend((seq0 + i + 1, agg) for i, agg in chain)
        threshold = seq0 + k - window
        while nodes and nodes[0][0] <= threshold:
            nodes.popleft()

    def query(self) -> Any:
        if not self._nodes:
            raise WindowStateError(
                "query on an empty SlickDeque (no value pushed yet)"
            )
        return self._op.lower(self._nodes[0][1])

    @property
    def occupancy(self) -> int:
        """Current number of deque nodes (for the adversarial bench)."""
        return len(self._nodes)

    def resize(self, window: int) -> None:
        """Dynamic resize (Section 3.1): O(shrink) head expiry.

        Growing is free (nodes simply live longer from now on);
        shrinking pops the head nodes that fall outside the new
        window — the same expiry rule ``push`` applies each slide.
        """
        from repro.baselines.base import validate_window

        self.window = validate_window(window)
        nodes = self._nodes
        while nodes and nodes[0][0] <= self._seq - self.window:
            nodes.popleft()

    def memory_words(self) -> int:
        return chunked_space_words(len(self._nodes), self.window)


class ChunkedSlickDequeNonInv(SlickDequeNonInv):
    """Algorithm 2 on the library's own chunk-allocated deque.

    Identical answers to the parent; memory is accounted structurally
    from the actual chunk allocation, which is what the chunk-size
    ablation bench varies (§4.2's ``k`` parameter).
    """

    def __init__(
        self,
        operator: AggregateOperator,
        window: int,
        chunk_size: Optional[int] = None,
    ):
        super().__init__(operator, window)
        self._chunked = ChunkedDeque(
            chunk_size=chunk_size or optimal_chunk_size(window),
            words_per_item=2,
        )

    def push(self, value: Any) -> None:
        # Use the callables bound once in __init__ — re-resolving
        # ``op.lift``/``op.dominates`` per push costs two attribute
        # lookups per tuple on the hottest path in the library.
        seq = self._seq + 1
        self._seq = seq
        new_partial = self._lift(value)
        nodes = self._chunked
        if nodes and nodes.front[0] <= seq - self.window:
            nodes.pop_front()
        dominates = self._dominates
        while nodes and dominates(nodes.back[1], new_partial):
            nodes.pop_back()
        nodes.push_back((seq, new_partial))

    def push_many(self, values: Sequence[Any]) -> None:
        """Bulk push via the dominance suffix chain (see the parent)."""
        values = as_sequence(values)
        k = len(values)
        if not k:
            return
        seq0 = self._seq
        self._seq = seq0 + k
        nodes = self._chunked
        window = self.window
        if k >= window:
            offset = k - window
            chain = self._kernel.suffix_chain(values[offset:])
            while nodes:
                nodes.pop_back()
            base = seq0 + offset
            push_back = nodes.push_back
            for i, agg in chain:
                push_back((base + i + 1, agg))
            return
        chain = self._kernel.suffix_chain(values)
        dominates = self._dominates
        head_agg = chain[0][1]
        while nodes and dominates(nodes.back[1], head_agg):
            nodes.pop_back()
        push_back = nodes.push_back
        for i, agg in chain:
            push_back((seq0 + i + 1, agg))
        threshold = seq0 + k - window
        while nodes and nodes.front[0] <= threshold:
            nodes.pop_front()

    def query(self) -> Any:
        if not self._chunked:
            raise WindowStateError(
                "query on an empty SlickDeque (no value pushed yet)"
            )
        return self._op.lower(self._chunked.front[1])

    @property
    def occupancy(self) -> int:
        return len(self._chunked)

    def resize(self, window: int) -> None:
        from repro.baselines.base import validate_window

        self.window = validate_window(window)
        nodes = self._chunked
        while nodes and nodes.front[0] <= self._seq - self.window:
            nodes.pop_front()

    def memory_words(self) -> int:
        return self._chunked.memory_words()


class SlickDequeNonInvMulti(MultiQueryAggregator):
    """Multi-query SlickDeque (Non-Inv): one deque sweep per slide.

    Queries are answered in descending-range order; because the deque's
    positions increase head-to-tail, the shared sweep position ``i``
    only moves forward (Algorithm 2: "the larger ranges always
    correspond to the deque nodes closest to the head").  Answers cost
    comparisons, not aggregate operations, so the per-slide ⊕ count
    stays below 2 regardless of the number of registered queries.
    """

    def __init__(self, operator: AggregateOperator, ranges: Sequence[int]):
        super().__init__(operator, ranges)
        self._op = require_selection(operator)
        self._nodes: deque = deque()
        self._seq = 0
        self._lift = self._op.lift
        self._dominates = self._op.dominates
        self._lower = self._op.lower

    def step(self, value: Any) -> Dict[int, Any]:
        seq = self._seq + 1
        self._seq = seq
        new_partial = self._lift(value)
        nodes = self._nodes
        if nodes and nodes[0][0] <= seq - self.window:
            nodes.popleft()
        dominates = self._dominates
        while nodes and dominates(nodes[-1][1], new_partial):
            nodes.pop()
        nodes.append((seq, new_partial))

        # One forward sweep answers every range (Alg. 2 lines 20-41).
        lower = self._lower
        answers: Dict[int, Any] = {}
        iterator = iter(nodes)
        pos, val = next(iterator)
        for r in self.ranges:  # descending
            threshold = seq - r
            while pos <= threshold:
                pos, val = next(iterator)
            answers[r] = lower(val)
        return answers

    def step_many(self, values: Sequence[Any]) -> List[Dict[int, Any]]:
        """Bulk slides: the :meth:`step` body with hot paths bound once.

        Unlike the single-query class, every slide must still sweep the
        deque for answers (each slide's answer map is part of the
        result), so the batch cannot be pre-collapsed; the win here is
        removing the per-tuple attribute lookups and method-call
        overhead.  The operation sequence — and therefore every answer
        map — is identical to ``k`` calls of :meth:`step`.
        """
        lift = self._lift
        dominates = self._dominates
        lower = self._lower
        nodes = self._nodes
        popleft = nodes.popleft
        pop = nodes.pop
        append = nodes.append
        ranges = self.ranges
        window = self.window
        seq = self._seq
        out: List[Dict[int, Any]] = []
        out_append = out.append
        for value in values:
            seq += 1
            new_partial = lift(value)
            if nodes and nodes[0][0] <= seq - window:
                popleft()
            while nodes and dominates(nodes[-1][1], new_partial):
                pop()
            append((seq, new_partial))
            answers: Dict[int, Any] = {}
            iterator = iter(nodes)
            pos, val = next(iterator)
            for r in ranges:  # descending
                threshold = seq - r
                while pos <= threshold:
                    pos, val = next(iterator)
                answers[r] = lower(val)
            out_append(answers)
        self._seq = seq
        return out

    @property
    def occupancy(self) -> int:
        """Current number of deque nodes (for the adversarial bench)."""
        return len(self._nodes)

    def memory_words(self) -> int:
        return chunked_space_words(len(self._nodes), self.window)
