"""Shared-plan SlickDeque execution (Algorithms 1 and 2, both phases).

:class:`SharedSlickDeque` is the full Preparation + Execution loop: it
builds the shared plan from the ACQ set and a partial-aggregation
technique, folds raw tuples into partials, and runs the
invertibility-appropriate SlickDeque update per partial, emitting
answers for exactly the queries scheduled at each edge.

Generalisation note (see :mod:`repro.windows.plan`): Algorithm 1
assumes each query's range-in-partials ``qR`` is constant.  With
heterogeneous slides it varies across the composite cycle, so the
invertible path here keeps a per-query *start pointer* into the
partials ring and evicts as many partials as the current step's
lookback requires — one ⊕ per new partial plus amortized one ⊖ per
evicted partial per query, which degenerates to exactly Algorithm 1's
two operations when the plan is uniform.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import InvalidOperatorError, WindowStateError
from repro.operators.base import AggregateOperator
from repro.structures.circular_buffer import CircularBuffer
from repro.windows.partial import PartialAggregator
from repro.windows.plan import PlanCursor, SharedPlan, build_shared_plan
from repro.windows.query import Query

#: One emitted result: (stream position, query, answer).
Answer = Tuple[int, Query, Any]


class _InvEngine:
    """Invertible path: running answer + start pointer per query."""

    def __init__(self, operator: AggregateOperator, plan: SharedPlan):
        self._op = operator
        # Retain enough history for the largest lookback plus the skew
        # between a query's answer steps (bounded by one cycle).
        capacity = plan.w_size + plan.partials_per_cycle
        self._ring = CircularBuffer(capacity, fill=operator.identity)
        self._answers: Dict[Query, Any] = {
            q: operator.identity for q in plan.queries
        }
        # Absolute index of the first partial still inside each query's
        # running answer.
        self._starts: Dict[Query, int] = {q: 0 for q in plan.queries}
        self._count = 0  # partials seen

    def on_partial(self, value: Any, scheduled) -> List[Tuple[Query, Any]]:
        op = self._op
        self._ring.push(value)
        self._count += 1
        for query in self._answers:
            self._answers[query] = op.combine(self._answers[query], value)
        results = []
        for sq in scheduled:
            query = sq.query
            answer = self._answers[query]
            target_start = max(0, self._count - sq.lookback)
            start = self._starts[query]
            while start < target_start:
                offset = self._count - start  # pushes since that partial
                answer = op.inverse(answer, self._ring.at_offset(offset))
                start += 1
            self._starts[query] = start
            self._answers[query] = answer
            results.append((query, op.lower(answer)))
        return results


class _NonInvEngine:
    """Selection path: one monotone deque shared by every query."""

    def __init__(self, operator: AggregateOperator, plan: SharedPlan):
        self._op = operator
        self._deque: deque = deque()
        self._w_size = plan.w_size
        self._count = 0

    def on_partial(self, value: Any, scheduled) -> List[Tuple[Query, Any]]:
        op = self._op
        nodes_deque = self._deque
        self._count += 1
        if nodes_deque and nodes_deque[0][0] <= self._count - self._w_size:
            nodes_deque.popleft()
        while nodes_deque and op.dominates(nodes_deque[-1][1], value):
            nodes_deque.pop()
        nodes_deque.append((self._count, value))

        results = []
        nodes = iter(nodes_deque)
        pos, val = next(nodes)
        for sq in scheduled:  # descending lookback (plan ordering)
            threshold = self._count - sq.lookback
            while pos <= threshold:
                pos, val = next(nodes)
            results.append((sq.query, op.lower(val)))
        return results


class SharedSlickDeque:
    """Multi-ACQ SlickDeque over a shared execution plan.

    Args:
        queries: The ACQ set (ranges/slides in tuples).
        operator: Aggregate operation; its invertibility selects the
            processing scheme, per the paper's headline contribution.
        technique: Partial-aggregation technique for the plan
            (``"panes"`` or ``"pairs"``).
        plan: Optionally a pre-built plan (must match ``queries``).

    Raises:
        InvalidOperatorError: operator neither invertible nor
            selection-type.  Algebraic compositions should be run
            through :class:`~repro.core.facade.ComponentwiseAggregator`
            semantics — one SharedSlickDeque per component.
    """

    def __init__(
        self,
        queries: Iterable[Query],
        operator: AggregateOperator,
        technique: str = "pairs",
        plan: Optional[SharedPlan] = None,
    ):
        self.queries = tuple(queries)
        self.operator = operator
        self.plan = plan or build_shared_plan(self.queries, technique)
        self._partials = PartialAggregator(operator, self.plan)
        # Lazily created by feed_partial(); feed() and feed_partial()
        # are mutually exclusive drive modes for one instance.
        self._partial_cursor: Optional[PlanCursor] = None
        if operator.invertible:
            self._engine: Any = _InvEngine(operator, self.plan)
        elif operator.selects:
            self._engine = _NonInvEngine(operator, self.plan)
        else:
            raise InvalidOperatorError(
                f"operator {operator.name!r} is neither invertible nor "
                "selection-type; run algebraic compositions one "
                "component at a time"
            )

    @property
    def w_size(self) -> int:
        """The plan's window requirement in partials (``wSize``)."""
        return self.plan.w_size

    def feed_partial(self, value: Any, position: int) -> List[Answer]:
        """Advance one plan step with an already-folded partial.

        The sharded service folds each slice's tuples inside shard
        workers and recombines the per-shard partials across shards;
        this entry point lets such an externally-merged partial drive
        the final aggregation directly, bypassing the tuple-level
        :class:`~repro.windows.partial.PartialAggregator`.  The caller
        is responsible for handing over exactly one partial per plan
        step, in plan order.

        Args:
            value: The completed partial (already lifted and combined).
            position: 1-based global stream position of the slice end,
                reported in the emitted answers.

        Raises:
            WindowStateError: when this instance already consumed raw
                tuples through :meth:`feed`; the two drive modes cannot
                be mixed on one instance.
        """
        if self._partials.position:
            raise WindowStateError(
                "feed_partial() cannot be mixed with feed() on the "
                "same SharedSlickDeque instance"
            )
        if self._partial_cursor is None:
            self._partial_cursor = PlanCursor(self.plan)
        self._partial_cursor.get_next_partial_length()
        step = self._partial_cursor.current_step
        produced = self._engine.on_partial(value, step.answers)
        return [(position, query, answer) for query, answer in produced]

    def feed(self, value: Any) -> List[Answer]:
        """Consume one tuple; return the answers it released."""
        if self._partial_cursor is not None:
            raise WindowStateError(
                "feed() cannot be mixed with feed_partial() on the "
                "same SharedSlickDeque instance"
            )
        completed = self._partials.feed(value)
        if completed is None:
            return []
        produced = self._engine.on_partial(
            completed.value, completed.step.answers
        )
        return [
            (completed.position, query, answer)
            for query, answer in produced
        ]

    def feed_many(self, values: Iterable[Any]) -> List[Answer]:
        """Consume a batch of tuples; return every answer released.

        Raw tuples are folded into partials with one kernel call per
        plan segment (:meth:`PartialAggregator.feed_many`); the final
        aggregation then advances once per completed partial, exactly
        as :meth:`feed` would.  Answers — values, order, and reported
        positions — are byte-identical to feeding tuple by tuple.
        """
        if self._partial_cursor is not None:
            raise WindowStateError(
                "feed_many() cannot be mixed with feed_partial() on "
                "the same SharedSlickDeque instance"
            )
        answers: List[Answer] = []
        on_partial = self._engine.on_partial
        for completed in self._partials.feed_many(values):
            produced = on_partial(completed.value, completed.step.answers)
            position = completed.position
            answers.extend(
                (position, query, answer) for query, answer in produced
            )
        return answers

    def run(self, values: Iterable[Any]) -> Iterator[Answer]:
        """Stream an iterable through the plan, yielding every answer."""
        for value in values:
            yield from self.feed(value)
