"""SlickDeque (Inv) — Algorithm 1 of the paper.

"For processing invertible aggregates we propose SlickDeque (Inv), a
modified Panes (Inv) extended for processing multiple ACQs."  Each
distinct query range keeps one running answer in the ``answers`` map;
every slide applies the aggregate operation ``⊕`` with the incoming
partial and the inverse operation ``⊖`` with the expiring one
(Algorithm 1 line 24) — exactly 2 operations per answer per slide
(Table 1: single query 2, max-multi-query 2n, space n and 2n).

The ``partials`` circular array is shared by all ranges; answers for
queries over the same range are shared even when their slides differ
(Section 3.2: "Queries operating over the same range can share results
even if they have different slides").
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

from repro.baselines.base import MultiQueryAggregator, SlidingAggregator
from repro.operators.base import AggregateOperator, require_invertible
from repro.structures.circular_buffer import CircularBuffer


class SlickDequeInv(SlidingAggregator):
    """Single-query SlickDeque (Inv): 2 aggregate operations per slide."""

    supports_multi_query = True

    def __init__(self, operator: AggregateOperator, window: int):
        super().__init__(operator, window)
        self._op = require_invertible(operator)
        self._partials = CircularBuffer(window, fill=operator.identity)
        self._answer = operator.identity

    def push(self, value: Any) -> None:
        new_partial = self._op.lift(value)
        expiring = self._partials.push(new_partial)
        # ans = ans ⊕ newPartial ⊖ partials[startPos]  (Alg. 1 line 24)
        self._answer = self._op.inverse(
            self._op.combine(self._answer, new_partial), expiring
        )

    def query(self) -> Any:
        return self._op.lower(self._answer)

    def resize(self, window: int) -> None:
        """Dynamic resize (Section 3.1): rebuild ring and answer.

        The partials ring already retains the full window, so resizing
        re-allocates it with the newest ``min(len, window)`` partials
        and re-derives the running answer with one fold — an O(n)
        operation that the steady 2-ops-per-slide regime resumes from
        immediately.
        """
        from repro.baselines.base import validate_window

        new_window = validate_window(window)
        retained = list(
            self._partials.last(min(len(self._partials), new_window))
        )
        fresh = CircularBuffer(new_window, fill=self.operator.identity)
        for value in retained:
            fresh.push(value)
        self._partials = fresh
        self._answer = self._op.fold_aggs(retained)
        self.window = new_window

    def memory_words(self) -> int:
        """Section 4.2: ``n`` partials plus the one stored answer."""
        return self._partials.memory_words() + 1


class SlickDequeInvMulti(MultiQueryAggregator):
    """Multi-query SlickDeque (Inv): the ``answers`` map of Algorithm 1.

    One running answer per distinct range; every slide costs exactly
    two operations per answer (one ``⊕``, one ``⊖``), independent of
    the window size — the paper's 2n max-multi-query complexity.
    """

    def __init__(self, operator: AggregateOperator, ranges: Sequence[int]):
        super().__init__(operator, ranges)
        self._op = require_invertible(operator)
        # wSize is the longest range (Alg. 1 line 5); the shared
        # partials array is initialised with initVal (lines 8-10).
        self._partials = CircularBuffer(self.window, fill=operator.identity)
        # answers.insert(q.range, initVal)  (lines 11-13)
        self._answers: Dict[int, Any] = {
            r: operator.identity for r in self.ranges
        }

    def step(self, value: Any) -> Dict[int, Any]:
        op = self._op
        new_partial = op.lift(value)
        partials = self._partials
        # Update every (qR → ans) mapping (Alg. 1 lines 19-25): rewind
        # currPos by the range to find the expiring partial.  The
        # expiring slot for the longest range is the one about to be
        # overwritten; shorter ranges read younger slots.
        for r, ans in self._answers.items():
            if r == self.window:
                expiring = partials.peek_expiring()
            else:
                expiring = partials.at_offset(r)
            self._answers[r] = op.inverse(
                op.combine(ans, new_partial), expiring
            )
        partials.push(new_partial)
        return {r: op.lower(ans) for r, ans in self._answers.items()}

    def memory_words(self) -> int:
        """Section 4.2: ``n`` partials + one word per distinct range."""
        return self._partials.memory_words() + len(self._answers)
