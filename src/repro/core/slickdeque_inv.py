"""SlickDeque (Inv) — Algorithm 1 of the paper.

"For processing invertible aggregates we propose SlickDeque (Inv), a
modified Panes (Inv) extended for processing multiple ACQs."  Each
distinct query range keeps one running answer in the ``answers`` map;
every slide applies the aggregate operation ``⊕`` with the incoming
partial and the inverse operation ``⊖`` with the expiring one
(Algorithm 1 line 24) — exactly 2 operations per answer per slide
(Table 1: single query 2, max-multi-query 2n, space n and 2n).

The ``partials`` circular array is shared by all ranges; answers for
queries over the same range are shared even when their slides differ
(Section 3.2: "Queries operating over the same range can share results
even if they have different slides").
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.baselines.base import MultiQueryAggregator, SlidingAggregator
from repro.kernels import as_sequence, kernel_for
from repro.operators.base import AggregateOperator, require_invertible
from repro.structures.circular_buffer import CircularBuffer


class SlickDequeInv(SlidingAggregator):
    """Single-query SlickDeque (Inv): 2 aggregate operations per slide."""

    supports_multi_query = True

    def __init__(self, operator: AggregateOperator, window: int):
        super().__init__(operator, window)
        self._op = require_invertible(operator)
        self._kernel = kernel_for(self._op)
        self._partials = CircularBuffer(window, fill=operator.identity)
        self._answer = operator.identity

    def push(self, value: Any) -> None:
        new_partial = self._op.lift(value)
        expiring = self._partials.push(new_partial)
        # ans = ans ⊕ newPartial ⊖ partials[startPos]  (Alg. 1 line 24)
        self._answer = self._op.inverse(
            self._op.combine(self._answer, new_partial), expiring
        )

    def push_many(self, values: Sequence[Any]) -> None:
        """Bulk slide: fold the batch in, retire the expired run with ⊖.

        Telescopes Algorithm 1 line 24 over the batch:

        ``ans' = (ans ⊕ v₁ ⊕ … ⊕ vₖ) ⊖ (e₁ ⊕ … ⊕ eₖ)``

        The partials ring absorbs the whole batch in a handful of slice
        writes and hands back the expired run, so the per-tuple cost of
        ``k`` method calls and ``2k`` Python-level operator dispatches
        collapses into two kernel folds — one C-level reduction each
        for the builtin operators.  Invertibility makes the telescoped
        form algebraically identical to ``k`` single slides; for
        integer domains the answers are bit-identical, while float
        batch folds may differ from the per-tuple chain in the final
        ulps (layers that assert byte-equality fold through
        :func:`repro.kernels.exact_fold` instead).
        """
        values = as_sequence(values)
        if not len(values):
            return
        kernel = self._kernel
        lifted = kernel.lift_many(values)
        expired = self._partials.push_many(lifted)
        op = self._op
        self._answer = op.inverse(
            kernel.fold_aggs(lifted, self._answer),
            kernel.fold_aggs(expired, op.identity),
        )

    def query(self) -> Any:
        return self._op.lower(self._answer)

    def resize(self, window: int) -> None:
        """Dynamic resize (Section 3.1): rebuild ring and answer.

        The partials ring already retains the full window, so resizing
        re-allocates it with the newest ``min(len, window)`` partials
        and re-derives the running answer with one fold — an O(n)
        operation that the steady 2-ops-per-slide regime resumes from
        immediately.
        """
        from repro.baselines.base import validate_window

        new_window = validate_window(window)
        retained = list(
            self._partials.last(min(len(self._partials), new_window))
        )
        fresh = CircularBuffer(new_window, fill=self.operator.identity)
        for value in retained:
            fresh.push(value)
        self._partials = fresh
        self._answer = self._op.fold_aggs(retained)
        self.window = new_window

    def memory_words(self) -> int:
        """Section 4.2: ``n`` partials plus the one stored answer."""
        return self._partials.memory_words() + 1


class SlickDequeInvMulti(MultiQueryAggregator):
    """Multi-query SlickDeque (Inv): the ``answers`` map of Algorithm 1.

    One running answer per distinct range; every slide costs exactly
    two operations per answer (one ``⊕``, one ``⊖``), independent of
    the window size — the paper's 2n max-multi-query complexity.
    """

    def __init__(self, operator: AggregateOperator, ranges: Sequence[int]):
        super().__init__(operator, ranges)
        self._op = require_invertible(operator)
        # wSize is the longest range (Alg. 1 line 5); the shared
        # partials array is initialised with initVal (lines 8-10).
        self._partials = CircularBuffer(self.window, fill=operator.identity)
        # answers.insert(q.range, initVal)  (lines 11-13)
        self._answers: Dict[int, Any] = {
            r: operator.identity for r in self.ranges
        }

    def step(self, value: Any) -> Dict[int, Any]:
        op = self._op
        new_partial = op.lift(value)
        partials = self._partials
        # Update every (qR → ans) mapping (Alg. 1 lines 19-25): rewind
        # currPos by the range to find the expiring partial.  The
        # expiring slot for the longest range is the one about to be
        # overwritten; shorter ranges read younger slots.
        for r, ans in self._answers.items():
            if r == self.window:
                expiring = partials.peek_expiring()
            else:
                expiring = partials.at_offset(r)
            self._answers[r] = op.inverse(
                op.combine(ans, new_partial), expiring
            )
        partials.push(new_partial)
        return {r: op.lower(ans) for r, ans in self._answers.items()}

    def step_many(self, values: Sequence[Any]) -> List[Dict[int, Any]]:
        """Bulk slides: the exact :meth:`step` loop with hot paths bound.

        Every range still needs its answer on every slide, so the 2n
        operations per slide are irreducible (Table 1) — what the bulk
        path removes is the per-tuple re-resolution of ``lift``,
        ``combine``, ``inverse``, ``lower`` and the buffer methods.
        The operation sequence is identical to ``k`` calls of
        :meth:`step`, so answers are bit-identical in every domain.
        """
        op = self._op
        lift = op.lift
        combine = op.combine
        inverse = op.inverse
        lower = op.lower
        partials = self._partials
        peek_expiring = partials.peek_expiring
        at_offset = partials.at_offset
        push = partials.push
        answers = self._answers
        window = self.window
        out: List[Dict[int, Any]] = []
        append = out.append
        for value in values:
            new_partial = lift(value)
            for r, ans in answers.items():
                expiring = (
                    peek_expiring() if r == window else at_offset(r)
                )
                answers[r] = inverse(combine(ans, new_partial), expiring)
            push(new_partial)
            append({r: lower(ans) for r, ans in answers.items()})
        return out

    def memory_words(self) -> int:
        """Section 4.2: ``n`` partials + one word per distinct range."""
        return self._partials.memory_words() + len(self._answers)
