"""Algorithm 1, transcribed: SlickDeque (Inv) with the paper's layout.

Like :mod:`repro.core.slickdeque_noninv_wrapped` for Algorithm 2, this
module keeps the pseudocode's exact formulation — the ``partials``
circular array indexed by a wrapping ``currPos``, the ``answers`` map
keyed by query *range*, ``startPos`` rewinding with the negative-index
adjustment (lines 20-23), and the ``sharedPlan`` accessors — so the
test suite can demonstrate the production implementations
(:class:`~repro.core.slickdeque_inv.SlickDequeInvMulti` and the
shared-plan engine) are behaviourally identical on the plans the
pseudocode assumes.

Scope note: Algorithm 1 keys ``answers`` by range and treats the range
in partials (``qR``) as constant, which requires a uniform-lookback
plan (always true when all slides are equal — the paper's evaluation).
Construction rejects non-uniform plans; the production engine
generalises them (see :mod:`repro.core.multiquery`).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Tuple

from repro.errors import PlanError
from repro.operators.base import AggregateOperator, require_invertible
from repro.windows.partial import PartialAggregator
from repro.windows.plan import build_shared_plan
from repro.windows.query import Query


class PaperAlgorithm1:
    """SlickDeque (Inv) exactly as Algorithm 1 lays it out.

    Phase 1 (Preparation) happens in ``__init__``; Phase 2 (Execution)
    is :meth:`run` — a loop over arriving tuples that mirrors the
    pseudocode line numbers in comments.
    """

    def __init__(
        self,
        queries: Iterable[Query],
        operator: AggregateOperator,
        technique: str = "pairs",
    ):
        self._op = require_invertible(operator)
        # Line 4: sharedPlan = buildSharedPlan(Q, PAT)
        self.shared_plan = build_shared_plan(list(queries), technique)
        if not self.shared_plan.uniform_lookback:
            raise PlanError(
                "Algorithm 1 assumes a constant range-in-partials per "
                "query; this plan's lookbacks vary across the cycle — "
                "use SharedSlickDeque for the generalised execution"
            )
        # Line 5: wSize = sharedPlan.wSize
        self._w_size = self.shared_plan.w_size
        # Lines 6, 8-10: partials = new array[wSize], all initVal.
        init_val = operator.identity
        self._partials: List[Any] = [init_val] * self._w_size
        # Lines 7, 11-13: answers = map(queryRange -> initVal), with
        # ranges measured in partials (the constant qR).
        self._lookback_of: Dict[Query, int] = {}
        for step in self.shared_plan.steps:
            for scheduled in step.answers:
                self._lookback_of[scheduled.query] = scheduled.lookback
        self._answers: Dict[int, Any] = {
            lookback: init_val
            for lookback in set(self._lookback_of.values())
        }
        # Line 14: currPos = 0.
        self._curr_pos = 0
        self._partial_aggregator = PartialAggregator(
            operator, self.shared_plan
        )

    def run(
        self, values: Iterable[Any]
    ) -> Iterator[Tuple[int, Query, Any]]:
        """Phase 2 (Execution): yield ``(position, query, answer)``."""
        op = self._op
        w_size = self._w_size
        for value in values:  # line 16: while results are expected
            # Lines 17-18: aggregate the next partial per the plan.
            completed = self._partial_aggregator.feed(value)
            if completed is None:
                continue
            new_partial = completed.value
            # Lines 19-25: update every (qR -> ans) mapping.
            for q_range in self._answers:
                start_pos = self._curr_pos - q_range  # line 20
                if start_pos < 0:  # lines 21-23
                    start_pos += w_size
                self._answers[q_range] = op.inverse(
                    op.combine(self._answers[q_range], new_partial),
                    self._partials[start_pos],
                )  # line 24
            # Lines 26-29: emit the scheduled answers.
            for scheduled in completed.step.answers:
                yield (
                    completed.position,
                    scheduled.query,
                    op.lower(
                        self._answers[
                            self._lookback_of[scheduled.query]
                        ]
                    ),
                )
            # Lines 30-34: store the partial, advance currPos.
            self._partials[self._curr_pos] = new_partial
            self._curr_pos += 1
            if self._curr_pos == w_size:
                self._curr_pos = 0
