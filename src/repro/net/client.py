"""Sync and async client libraries for the aggregation server.

Both clients speak the frame protocol of :mod:`repro.net.protocol`
over one TCP connection with strictly ordered request/reply matching,
and share the same resilience policy:

* **connect timeout** — connection establishment past the deadline
  raises :class:`~repro.errors.ClientTimeoutError`;
* **request timeout** — a reply not arriving in time raises
  :class:`~repro.errors.ClientTimeoutError` (the connection is then
  desynchronised and should be closed);
* **bounded retry with exponential backoff** — ``RETRY`` replies (the
  server's admission control shedding load) are retried up to
  ``max_retries`` times with doubling backoff; exhaustion raises
  :class:`~repro.errors.ServerOverloadedError`.

:meth:`AggregationClient.submit_batches` pipelines: every batch is
written before any reply is read, which is what makes a single client
able to saturate (and observe shedding from) the server's admission
budget.  Shed batches are retried one at a time afterwards unless
``retry_shed=False``, in which case the per-batch accepted counts
report ``0`` for shed batches and the caller decides.

Tracing: pass ``trace_id=`` (mint one with
:func:`~repro.telemetry.mint_trace_id`) to ``submit``/``submit_batch``
/``poll`` and the id rides the frame's protocol-v2 header through the
server's whole pipeline; the id carried by the most recent reply is
readable from ``last_reply_trace_id`` — for an ANSWERS reply that is
the trace of the submission whose record closed the newest answer's
window.  Untraced requests keep emitting v1 frames, so tracing is
strictly opt-in on the wire.
"""

from __future__ import annotations

import asyncio
import socket
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import (
    ClientTimeoutError,
    ProtocolError,
    ServerOverloadedError,
    ServiceError,
)
from repro.net.protocol import (
    FrameDecoder,
    FrameType,
    decode_answers,
    encode_frame,
    pack_column,
)

_RECV_CHUNK = 64 * 1024


def _backoff_delay(
    attempt: int, base: float, maximum: float
) -> float:
    """Deterministic exponential backoff: ``base * 2**attempt``, capped."""
    return min(maximum, base * (2**attempt))


def _raise_reply_error(payload: Any) -> None:
    """Turn an ERROR reply payload into the matching exception."""
    if isinstance(payload, dict):
        name = payload.get("error", "ServiceError")
        message = payload.get("message", repr(payload))
    else:  # pragma: no cover - defensive against foreign servers
        name, message = "ServiceError", repr(payload)
    if name == "ProtocolError":
        raise ProtocolError(f"server rejected the request: {message}")
    raise ServiceError(f"server error ({name}): {message}")


class AggregationClient:
    """Blocking TCP client for :class:`~repro.net.server.AggregationServer`.

    Args:
        host: Server address.
        port: Server port.
        connect_timeout: Seconds allowed for connection establishment.
        request_timeout: Seconds allowed per request round-trip
            (``None`` waits forever).
        max_retries: RETRY replies absorbed per request before
            :class:`~repro.errors.ServerOverloadedError`.
        backoff_base: First retry delay, in seconds (doubles each time).
        backoff_max: Upper bound on a single retry delay.
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 5.0,
        request_timeout: Optional[float] = 30.0,
        max_retries: int = 8,
        backoff_base: float = 0.02,
        backoff_max: float = 1.0,
    ):
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except socket.timeout as exc:
            raise ClientTimeoutError(
                f"connecting to {host}:{port} exceeded "
                f"{connect_timeout} seconds"
            ) from exc
        self._sock.settimeout(request_timeout)
        self._decoder = FrameDecoder()
        self._frames: List[Any] = []
        self._closed = False
        #: Trace id carried by the most recent reply frame (``None``
        #: for v1 replies / untraced requests).
        self.last_reply_trace_id: Optional[int] = None

    # -- low-level I/O ----------------------------------------------

    def send_frame(
        self,
        frame_type: FrameType,
        payload: Any,
        trace_id: Optional[int] = None,
        event_time: Optional[float] = None,
    ) -> None:
        """Write one request frame without waiting for its reply."""
        self._sock.sendall(
            encode_frame(frame_type, payload, trace_id, event_time)
        )

    def read_reply(self) -> Tuple[FrameType, Any]:
        """Read the next reply frame (in request order)."""
        while not self._frames:
            try:
                data = self._sock.recv(_RECV_CHUNK)
            except socket.timeout as exc:
                raise ClientTimeoutError(
                    "request timed out waiting for a reply; the "
                    "connection is desynchronised and must be closed"
                ) from exc
            if not data:
                raise ConnectionError(
                    "server closed the connection mid-request"
                )
            self._decoder.feed(data)
            self._frames.extend(self._decoder.frames_traced())
        frame = self._frames.pop(0)
        self.last_reply_trace_id = frame.trace_id
        return frame.frame_type, frame.payload

    def _request(
        self,
        frame_type: FrameType,
        payload: Any,
        trace_id: Optional[int] = None,
        event_time: Optional[float] = None,
    ) -> Tuple[FrameType, Any]:
        """One request/reply round-trip with RETRY backoff."""
        for attempt in range(self.max_retries + 1):
            self.send_frame(frame_type, payload, trace_id, event_time)
            reply_type, reply = self.read_reply()
            if reply_type is not FrameType.RETRY:
                if reply_type is FrameType.ERROR:
                    _raise_reply_error(reply)
                return reply_type, reply
            if attempt == self.max_retries:
                break
            time.sleep(
                _suggested_delay(
                    reply, attempt, self.backoff_base, self.backoff_max
                )
            )
        raise ServerOverloadedError(
            f"request shed {self.max_retries + 1} times; "
            "the server is saturated"
        )

    # -- public API -------------------------------------------------

    def submit(
        self, key: Any, value: Any, trace_id: Optional[int] = None
    ) -> int:
        """Submit one keyed record; returns the accepted count (1)."""
        _, reply = self._request(
            FrameType.SUBMIT, (key, value), trace_id
        )
        return reply.get("accepted", 0)

    def submit_batch(
        self,
        records: Iterable[Tuple[Any, Any]],
        trace_id: Optional[int] = None,
    ) -> int:
        """Submit many records in one frame; returns the accepted count."""
        batch = [tuple(record) for record in records]
        _, reply = self._request(
            FrameType.SUBMIT_BATCH, batch, trace_id
        )
        return reply.get("accepted", 0)

    def submit_column(
        self,
        key: Any,
        values: Iterable[Any],
        trace_id: Optional[int] = None,
    ) -> int:
        """Submit one key's value column in a single packed frame.

        Homogeneous int64/float64 columns travel as one packed byte
        blob (8 bytes per record, no per-record tags or tuples) and
        decode server-side into a zero-copy typed view feeding the
        router's single-lookup column path; anything else falls back
        to the tagged object-column encoding, which is semantically
        identical.  Returns the accepted count.
        """
        column = list(values)
        if not column:
            return 0
        packed = pack_column(column)
        payload = (
            (key, *packed) if packed is not None else (key, "o", column)
        )
        _, reply = self._request(
            FrameType.SUBMIT_COLUMN, payload, trace_id
        )
        return reply.get("accepted", 0)

    def submit_event(
        self,
        key: Any,
        value: Any,
        timestamp: float,
        trace_id: Optional[int] = None,
    ) -> int:
        """Submit one event-timestamped record (``"time"``-mode server).

        The timestamp rides the protocol-v3 event-time header field —
        this is the only request that emits v3 framing, so a client
        that never calls it stays wire-compatible with pre-v3 servers.
        Returns the accepted count (1).  A record behind the server's
        watermark raises
        :class:`~repro.errors.ServiceError` under the service's
        ``"raise"`` late policy.
        """
        _, reply = self._request(
            FrameType.SUBMIT_EVENT,
            (key, value),
            trace_id,
            float(timestamp),
        )
        return reply.get("accepted", 0)

    def submit_event_batch(
        self,
        records: Iterable[Tuple[Any, float, Any]],
        trace_id: Optional[int] = None,
    ) -> int:
        """Submit ``(key, timestamp, value)`` triples in one frame.

        Timestamps travel in the payload, so the frame itself needs no
        v3 header field.  Returns the accepted count.
        """
        batch = [
            (key, float(timestamp), value)
            for key, timestamp, value in records
        ]
        _, reply = self._request(
            FrameType.SUBMIT_EVENT_BATCH, batch, trace_id
        )
        return reply.get("accepted", 0)

    def submit_batches(
        self,
        batches: Sequence[Iterable[Tuple[Any, Any]]],
        retry_shed: bool = True,
    ) -> List[int]:
        """Pipeline many SUBMIT_BATCH frames, then read all replies.

        All frames are written before any reply is read, so the server
        sees the burst at once — its admission budget, not this
        client's pacing, decides what is shed.  Returns per-batch
        accepted counts (``0`` where the server shed and
        ``retry_shed`` is off); shed batches are re-submitted
        sequentially with backoff when ``retry_shed`` is on.
        """
        prepared = [
            [tuple(record) for record in batch] for batch in batches
        ]
        for batch in prepared:
            self.send_frame(FrameType.SUBMIT_BATCH, batch)
        accepted: List[int] = []
        shed_indexes: List[int] = []
        for index in range(len(prepared)):
            reply_type, reply = self.read_reply()
            if reply_type is FrameType.RETRY:
                shed_indexes.append(index)
                accepted.append(0)
            elif reply_type is FrameType.ERROR:
                _raise_reply_error(reply)
            else:
                accepted.append(reply.get("accepted", 0))
        if retry_shed:
            for index in shed_indexes:
                accepted[index] = self.submit_batch(prepared[index])
        return accepted

    def poll(
        self, trace_id: Optional[int] = None
    ) -> List[Tuple[Any, ...]]:
        """Answers released since any client's last poll.

        After the call, ``last_reply_trace_id`` holds the trace of the
        submission whose record closed the newest traced answer's
        window (or this request's own ``trace_id`` when none were).
        """
        _, reply = self._request(FrameType.POLL, None, trace_id)
        return decode_answers(reply)

    def stats(self) -> Dict[str, Any]:
        """Server + service stats snapshot (see ``docs/serving.md``)."""
        _, reply = self._request(FrameType.STATS, None)
        return reply

    def drain(self) -> Tuple[List[Tuple[Any, ...]], Dict[str, Any]]:
        """Flush the service; returns (remaining answers, final stats)."""
        _, reply = self._request(FrameType.DRAIN, None)
        return decode_answers(reply.get("answers", [])), reply

    def close(self) -> None:
        """Send CLOSE (best effort) and release the socket; idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self.send_frame(FrameType.CLOSE, None)
            self.read_reply()
        except (OSError, ConnectionError, ClientTimeoutError):
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "AggregationClient":
        """Context entry: the connected client."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context exit: close the connection."""
        self.close()


def _suggested_delay(
    reply: Any, attempt: int, base: float, maximum: float
) -> float:
    """Backoff delay, honouring the server's ``retry_after`` hint."""
    delay = _backoff_delay(attempt, base, maximum)
    if isinstance(reply, dict):
        hint = reply.get("retry_after")
        if isinstance(hint, (int, float)) and hint > 0:
            delay = max(delay, float(min(hint, maximum)))
    return delay


class AsyncAggregationClient:
    """Asyncio twin of :class:`AggregationClient`.

    Construct via :meth:`connect`; the policy knobs match the sync
    client.  All request methods are coroutines; replies are matched
    to requests by order, so concurrent callers must serialise their
    round-trips (or use separate connections).
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request_timeout: Optional[float],
        max_retries: int,
        backoff_base: float,
        backoff_max: float,
    ):
        self._reader = reader
        self._writer = writer
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self._decoder = FrameDecoder()
        self._frames: List[Any] = []
        self._closed = False
        #: Trace id carried by the most recent reply frame.
        self.last_reply_trace_id: Optional[int] = None

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        connect_timeout: float = 5.0,
        request_timeout: Optional[float] = 30.0,
        max_retries: int = 8,
        backoff_base: float = 0.02,
        backoff_max: float = 1.0,
    ) -> "AsyncAggregationClient":
        """Open a connection, enforcing ``connect_timeout``."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), connect_timeout
            )
        except asyncio.TimeoutError as exc:
            raise ClientTimeoutError(
                f"connecting to {host}:{port} exceeded "
                f"{connect_timeout} seconds"
            ) from exc
        return cls(
            reader,
            writer,
            request_timeout,
            max_retries,
            backoff_base,
            backoff_max,
        )

    # -- low-level I/O ----------------------------------------------

    async def send_frame(
        self,
        frame_type: FrameType,
        payload: Any,
        trace_id: Optional[int] = None,
        event_time: Optional[float] = None,
    ) -> None:
        """Write one request frame without waiting for its reply."""
        self._writer.write(
            encode_frame(frame_type, payload, trace_id, event_time)
        )
        await self._writer.drain()

    async def read_reply(self) -> Tuple[FrameType, Any]:
        """Read the next reply frame (in request order)."""
        while not self._frames:
            try:
                data = await asyncio.wait_for(
                    self._reader.read(_RECV_CHUNK),
                    self.request_timeout,
                )
            except asyncio.TimeoutError as exc:
                raise ClientTimeoutError(
                    "request timed out waiting for a reply; the "
                    "connection is desynchronised and must be closed"
                ) from exc
            if not data:
                raise ConnectionError(
                    "server closed the connection mid-request"
                )
            self._decoder.feed(data)
            self._frames.extend(self._decoder.frames_traced())
        frame = self._frames.pop(0)
        self.last_reply_trace_id = frame.trace_id
        return frame.frame_type, frame.payload

    async def _request(
        self,
        frame_type: FrameType,
        payload: Any,
        trace_id: Optional[int] = None,
        event_time: Optional[float] = None,
    ) -> Tuple[FrameType, Any]:
        for attempt in range(self.max_retries + 1):
            await self.send_frame(
                frame_type, payload, trace_id, event_time
            )
            reply_type, reply = await self.read_reply()
            if reply_type is not FrameType.RETRY:
                if reply_type is FrameType.ERROR:
                    _raise_reply_error(reply)
                return reply_type, reply
            if attempt == self.max_retries:
                break
            await asyncio.sleep(
                _suggested_delay(
                    reply, attempt, self.backoff_base, self.backoff_max
                )
            )
        raise ServerOverloadedError(
            f"request shed {self.max_retries + 1} times; "
            "the server is saturated"
        )

    # -- public API -------------------------------------------------

    async def submit(
        self, key: Any, value: Any, trace_id: Optional[int] = None
    ) -> int:
        """Submit one keyed record; returns the accepted count (1)."""
        _, reply = await self._request(
            FrameType.SUBMIT, (key, value), trace_id
        )
        return reply.get("accepted", 0)

    async def submit_batch(
        self,
        records: Iterable[Tuple[Any, Any]],
        trace_id: Optional[int] = None,
    ) -> int:
        """Submit many records in one frame; returns the accepted count."""
        batch = [tuple(record) for record in records]
        _, reply = await self._request(
            FrameType.SUBMIT_BATCH, batch, trace_id
        )
        return reply.get("accepted", 0)

    async def submit_column(
        self,
        key: Any,
        values: Iterable[Any],
        trace_id: Optional[int] = None,
    ) -> int:
        """Submit one key's value column in a single packed frame.

        See :meth:`AggregationClient.submit_column`; the packing and
        fallback rules are identical.
        """
        column = list(values)
        if not column:
            return 0
        packed = pack_column(column)
        payload = (
            (key, *packed) if packed is not None else (key, "o", column)
        )
        _, reply = await self._request(
            FrameType.SUBMIT_COLUMN, payload, trace_id
        )
        return reply.get("accepted", 0)

    async def submit_event(
        self,
        key: Any,
        value: Any,
        timestamp: float,
        trace_id: Optional[int] = None,
    ) -> int:
        """Submit one event-timestamped record (v3 framing).

        See :meth:`AggregationClient.submit_event`.
        """
        _, reply = await self._request(
            FrameType.SUBMIT_EVENT,
            (key, value),
            trace_id,
            float(timestamp),
        )
        return reply.get("accepted", 0)

    async def submit_event_batch(
        self,
        records: Iterable[Tuple[Any, float, Any]],
        trace_id: Optional[int] = None,
    ) -> int:
        """Submit ``(key, timestamp, value)`` triples in one frame."""
        batch = [
            (key, float(timestamp), value)
            for key, timestamp, value in records
        ]
        _, reply = await self._request(
            FrameType.SUBMIT_EVENT_BATCH, batch, trace_id
        )
        return reply.get("accepted", 0)

    async def poll(
        self, trace_id: Optional[int] = None
    ) -> List[Tuple[Any, ...]]:
        """Answers released since any client's last poll."""
        _, reply = await self._request(FrameType.POLL, None, trace_id)
        return decode_answers(reply)

    async def stats(self) -> Dict[str, Any]:
        """Server + service stats snapshot (see ``docs/serving.md``)."""
        _, reply = await self._request(FrameType.STATS, None)
        return reply

    async def drain(
        self,
    ) -> Tuple[List[Tuple[Any, ...]], Dict[str, Any]]:
        """Flush the service; returns (remaining answers, final stats)."""
        _, reply = await self._request(FrameType.DRAIN, None)
        return decode_answers(reply.get("answers", [])), reply

    async def close(self) -> None:
        """Send CLOSE (best effort) and release the stream; idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            await self.send_frame(FrameType.CLOSE, None)
            await self.read_reply()
        except (OSError, ConnectionError, ClientTimeoutError):
            pass
        finally:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def __aenter__(self) -> "AsyncAggregationClient":
        """Async-context entry: the connected client."""
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        """Async-context exit: close the connection."""
        await self.close()
