"""Network serving layer: the sharded service behind a socket.

The scale-out story of the ROADMAP needs a real ingress: this package
puts :class:`~repro.service.service.AggregationService` behind a TCP
socket with a length-prefixed binary wire protocol, an asyncio server
with admission control (bounded in-flight records/bytes, ``block`` or
``shed``-with-RETRY policies), and sync + async client libraries with
timeouts and bounded retry-with-backoff.  The protocol spec and
deployment notes live in ``docs/serving.md``.

Public surface:

* :mod:`~repro.net.protocol` — frame codec
  (:class:`FrameType`, :func:`encode_frame`, :class:`FrameDecoder`,
  value codec, answer marshalling).
* :mod:`~repro.net.server` — :class:`AggregationServer`,
  :class:`AdmissionBudget`, :class:`ServerThread`.
* :mod:`~repro.net.client` — :class:`AggregationClient`,
  :class:`AsyncAggregationClient`.
"""

from repro.net.client import AggregationClient, AsyncAggregationClient
from repro.net.protocol import (
    LEGACY_PROTOCOL_VERSION,
    MAGIC,
    MAX_PAYLOAD_BYTES,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    Frame,
    FrameDecoder,
    FrameType,
    decode_answers,
    decode_value,
    encode_answers,
    encode_frame,
    encode_value,
    pack_column,
    try_decode_frame,
    try_decode_frame_traced,
)
from repro.net.server import (
    ADMISSION_POLICIES,
    AdmissionBudget,
    AggregationServer,
    ServerThread,
)

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "LEGACY_PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "MAX_PAYLOAD_BYTES",
    "Frame",
    "FrameType",
    "FrameDecoder",
    "encode_value",
    "decode_value",
    "encode_frame",
    "pack_column",
    "try_decode_frame",
    "try_decode_frame_traced",
    "encode_answers",
    "decode_answers",
    "AggregationServer",
    "AdmissionBudget",
    "ADMISSION_POLICIES",
    "ServerThread",
    "AggregationClient",
    "AsyncAggregationClient",
]
