"""Asyncio TCP server putting the sharded service behind a socket.

:class:`AggregationServer` multiplexes any number of client
connections onto one :class:`~repro.service.service.AggregationService`
through the thread-safe
:class:`~repro.service.gateway.ServiceGateway` seam.  Each connection
runs two coroutines:

* a **reader** that decodes frames off the socket and makes the
  admission decision the moment a SUBMIT/SUBMIT_BATCH is decoded, and
* a **processor** that executes the admitted requests strictly in
  arrival order (service calls run on a thread-pool executor, since
  ``block`` backpressure may sleep) and writes one reply per request —
  so clients can pipeline requests and still match replies by order.

Admission control bounds the records and bytes that have been decoded
but not yet acknowledged, globally and optionally per connection.
Under the ``block`` policy an exhausted budget pauses the reader —
TCP flow control then pushes back on the client, mirroring the
service's own lossless ``block`` backpressure.  Under ``shed`` the
request's records are dropped immediately and the client gets a
``RETRY`` reply (in order), mirroring ``drop``-style load shedding
with exact shed counts.

STATS replies carry throughput, a
:class:`~repro.metrics.stats.Reservoir`-sampled submit-latency
summary, and accepted/shed/poison counters next to the service's own
live snapshot; see ``docs/serving.md`` for the full payload schema.

Observability: every server owns a :class:`~repro.telemetry.Telemetry`
hub (or shares one passed in) and attaches it to the wrapped service,
so one registry collects per-stage latency histograms across the whole
path — decode, admission, submit (the executor-side fold), shard fold,
merge, and reply.  Requests whose frames carry a protocol-v2 trace id
additionally get per-stage span records under that id; the id is
echoed on replies, propagated into the service (router → shard →
merge), and attributed to the answers it produced, so a POLL reply
carries the trace of the submission that closed its windows.  Traces
slower than the hub's threshold land in the slow-op log, surfaced via
STATS under ``"telemetry"`` and via :meth:`AggregationServer.render_metrics`
(Prometheus text format; see ``docs/observability.md``).
"""

from __future__ import annotations

import asyncio
import math
import struct
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ProtocolError, ReproError, ServiceError
from repro.kernels import column_view
from repro.metrics import Reservoir, maybe_summary
from repro.net.protocol import (
    FrameType,
    encode_answers,
    encode_frame,
    try_decode_frame_traced,
)
from repro.service.gateway import ServiceGateway
from repro.service.service import AggregationService, ServiceResult
from repro.telemetry import Telemetry

#: Admission policies for an exhausted in-flight budget: ``block``
#: pauses the connection's reader (lossless; TCP pushes back on the
#: client), ``shed`` answers RETRY and drops the request's records.
ADMISSION_POLICIES = ("block", "shed")

_READ_CHUNK = 64 * 1024


class AdmissionBudget:
    """In-flight records/bytes budget shared by one event loop.

    ``None`` limits are unlimited.  All methods must run on the owning
    event loop; :meth:`try_acquire` is synchronous (the loop is the
    mutual exclusion), :meth:`acquire`/:meth:`release` are coroutines
    so blocked acquirers can be woken.
    """

    def __init__(
        self,
        max_records: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ):
        self.max_records = max_records
        self.max_bytes = max_bytes
        #: Records currently admitted but not yet acknowledged.
        self.records = 0
        #: Payload bytes currently admitted but not yet acknowledged.
        self.bytes = 0
        self._condition = asyncio.Condition()

    def _fits(self, records: int, nbytes: int) -> bool:
        if (
            self.max_records is not None
            and self.records + records > self.max_records
            and self.records > 0
        ):
            return False
        if (
            self.max_bytes is not None
            and self.bytes + nbytes > self.max_bytes
            and self.bytes > 0
        ):
            return False
        return not self._over_absolute(records, nbytes)

    def _over_absolute(self, records: int, nbytes: int) -> bool:
        # A request larger than the whole budget is admitted only on
        # an empty budget (otherwise it could never proceed at all).
        if self.records == 0 and self.bytes == 0:
            return False
        return (
            self.max_records is not None
            and records > self.max_records
        ) or (self.max_bytes is not None and nbytes > self.max_bytes)

    def try_acquire(self, records: int, nbytes: int) -> bool:
        """Take the budget now, or report ``False`` without waiting."""
        if not self._fits(records, nbytes):
            return False
        self.records += records
        self.bytes += nbytes
        return True

    async def acquire(self, records: int, nbytes: int) -> None:
        """Wait until the budget fits, then take it."""
        async with self._condition:
            await self._condition.wait_for(
                lambda: self._fits(records, nbytes)
            )
            self.records += records
            self.bytes += nbytes

    async def release(self, records: int, nbytes: int) -> None:
        """Return budget and wake blocked acquirers."""
        async with self._condition:
            self.records -= records
            self.bytes -= nbytes
            self._condition.notify_all()


class _Connection:
    """Per-connection accounting and optional private budget."""

    def __init__(
        self,
        connection_id: int,
        budget: Optional[AdmissionBudget],
    ):
        self.connection_id = connection_id
        self.budget = budget
        self.accepted_records = 0
        self.shed_records = 0


class AggregationServer:
    """TCP front end for a (sharded) aggregation service.

    Args:
        service: The service to expose — an
            :class:`~repro.service.service.AggregationService` (wrapped
            in a fresh gateway) or a pre-built
            :class:`~repro.service.gateway.ServiceGateway`.
        host: Bind address.
        port: Bind port; ``0`` picks an ephemeral port, readable from
            :attr:`port` after :meth:`start`.
        max_inflight_records: Global admission budget, in records.
        max_inflight_bytes: Global admission budget, in frame bytes.
        per_connection_records: Optional per-connection record budget.
        per_connection_bytes: Optional per-connection byte budget.
        admission_policy: ``"block"`` (pause reads, lossless) or
            ``"shed"`` (drop + RETRY reply).
        retry_after: Backoff hint, in seconds, carried in RETRY replies.
        executor_workers: Thread-pool size for (possibly blocking)
            service calls.
        latency_capacity: Reservoir size for submit-latency sampling.
        telemetry: The :class:`~repro.telemetry.Telemetry` hub to
            observe into; a fresh hub is created when ``None``.  The
            hub is attached to the wrapped service, so one registry
            carries the full decode → admission → fold → merge → reply
            stage breakdown.
        slow_threshold: Seconds above which a finished trace lands in
            the slow-op log (used only for the default hub).
    """

    def __init__(
        self,
        service: Union[AggregationService, ServiceGateway],
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight_records: Optional[int] = 65536,
        max_inflight_bytes: Optional[int] = 32 * 1024 * 1024,
        per_connection_records: Optional[int] = None,
        per_connection_bytes: Optional[int] = None,
        admission_policy: str = "shed",
        retry_after: float = 0.05,
        executor_workers: int = 4,
        latency_capacity: int = 1024,
        telemetry: Optional[Telemetry] = None,
        slow_threshold: float = 0.050,
    ):
        if admission_policy not in ADMISSION_POLICIES:
            raise ServiceError(
                f"unknown admission policy {admission_policy!r}; "
                f"expected one of {ADMISSION_POLICIES}"
            )
        self.gateway = (
            service
            if isinstance(service, ServiceGateway)
            else ServiceGateway(service)
        )
        self.host = host
        self._requested_port = port
        self.admission_policy = admission_policy
        self.retry_after = retry_after
        self._per_connection = (
            per_connection_records,
            per_connection_bytes,
        )
        self._budget = AdmissionBudget(
            max_inflight_records, max_inflight_bytes
        )
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers,
            thread_name_prefix="repro-net",
        )
        self._latency = Reservoir(capacity=latency_capacity, seed=0)
        self._server: Optional[asyncio.AbstractServer] = None
        self._connection_tasks: set = set()
        self._next_connection_id = 0
        self._draining = False
        self._drain_result: Optional[ServiceResult] = None
        self._started_at = time.perf_counter()
        # Counters (event-loop thread only).
        self.connections_total = 0
        self.accepted_records = 0
        self.accepted_batches = 0
        self.shed_requests = 0
        self.shed_records = 0
        self.answers_served = 0
        self.protocol_errors = 0
        #: The telemetry hub every stage observes into.
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(slow_threshold=slow_threshold)
        )
        self.gateway.attach_telemetry(self.telemetry)
        registry = self.telemetry.registry
        self._decode_hist = registry.histogram(
            "repro_net_decode_seconds",
            "Per-frame wire decode latency",
        )
        self._admission_hist = registry.histogram(
            "repro_net_admission_seconds",
            "Per-request admission-control latency (includes budget "
            "waits under the block policy)",
        )
        self._submit_hist = registry.histogram(
            "repro_net_submit_seconds",
            "Executor-side service submit latency per request",
        )
        self._reply_hist = registry.histogram(
            "repro_net_reply_seconds",
            "Reply encode-and-flush latency per request",
        )
        self._frames_counter = registry.counter(
            "repro_net_frames_total", "Frames decoded off the wire"
        )
        self._traced_counter = registry.counter(
            "repro_net_traced_requests_total",
            "Requests whose frame carried a v2 trace id",
        )
        self._inflight_gauge = registry.gauge(
            "repro_net_inflight_records",
            "Records admitted but not yet acknowledged",
        )

    # -- lifecycle --------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ServiceError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self._started_at = time.perf_counter()

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral pick)."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve until cancelled (convenience for scripts)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def drain(self, timeout: float = 60.0) -> ServiceResult:
        """Stop admitting records, flush the service, keep serving.

        After a drain the server still answers POLL/STATS/DRAIN (DRAIN
        is idempotent) but SUBMITs get an ERROR reply.  Returns the
        service's final :class:`~repro.service.service.ServiceResult`.
        """
        self._draining = True
        if self._drain_result is None:
            loop = asyncio.get_running_loop()
            self._drain_result = await loop.run_in_executor(
                self._executor, lambda: self.gateway.close(timeout)
            )
        return self._drain_result

    async def stop(self) -> None:
        """Stop accepting, close connections, and release resources.

        The underlying service is drained if it is still open (use
        :meth:`drain` first to observe the result), then the executor
        is shut down.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(
                *self._connection_tasks, return_exceptions=True
            )
        if not self.gateway.closed:
            await self.drain()
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "AggregationServer":
        """Async-context entry: start and return the server."""
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        """Async-context exit: stop the server."""
        await self.stop()

    # -- connection handling ----------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        self._connection_tasks.add(task)
        self._next_connection_id += 1
        self.connections_total += 1
        per_records, per_bytes = self._per_connection
        connection = _Connection(
            self._next_connection_id,
            AdmissionBudget(per_records, per_bytes)
            if per_records is not None or per_bytes is not None
            else None,
        )
        queue: asyncio.Queue = asyncio.Queue()
        processor = asyncio.create_task(
            self._process_requests(queue, writer, connection)
        )
        try:
            await self._read_requests(reader, queue, connection)
        except asyncio.CancelledError:
            processor.cancel()
            raise
        finally:
            if not processor.cancelled():
                await queue.put(("eof", None, 0, None))
                try:
                    await processor
                except asyncio.CancelledError:
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass
            self._connection_tasks.discard(task)

    async def _read_requests(
        self,
        reader: asyncio.StreamReader,
        queue: asyncio.Queue,
        connection: _Connection,
    ) -> None:
        tracer = self.telemetry.tracer
        buffer = bytearray()
        while True:
            data = await reader.read(_READ_CHUNK)
            if not data:
                return
            buffer += data
            offset = 0
            while True:
                decode_started = time.perf_counter()
                try:
                    decoded = try_decode_frame_traced(buffer, offset)
                except ProtocolError as error:
                    self.protocol_errors += 1
                    await queue.put(
                        ("protocol_error", str(error), 0, None)
                    )
                    return
                if decoded is None:
                    break
                frame, next_offset = decoded
                decode_seconds = (
                    time.perf_counter() - decode_started
                )
                self._decode_hist.observe(decode_seconds)
                self._frames_counter.inc()
                frame_type = frame.frame_type
                trace_id = frame.trace_id
                if trace_id is not None:
                    self._traced_counter.inc()
                    tracer.record(trace_id, "decode", decode_seconds)
                nbytes = next_offset - offset
                offset = next_offset
                admit_started = time.perf_counter()
                item = await self._admit(
                    connection, frame_type, frame.payload, nbytes,
                    trace_id, frame.event_time,
                )
                admission_seconds = (
                    time.perf_counter() - admit_started
                )
                if item[0] in ("submit", "shed"):
                    self._admission_hist.observe(admission_seconds)
                    tracer.record(
                        trace_id, "admission", admission_seconds
                    )
                await queue.put(item)
                if frame_type is FrameType.CLOSE:
                    return
            if offset:
                del buffer[:offset]

    async def _admit(
        self,
        connection: _Connection,
        frame_type: FrameType,
        payload: Any,
        nbytes: int,
        trace_id: Optional[int],
        event_time: Optional[float] = None,
    ) -> Tuple[str, Any, int, Optional[int]]:
        """Turn one decoded frame into a queued work item.

        Admission control runs here, at decode time, so a pipelined
        burst is bounded (or shed) even while earlier requests are
        still being folded.
        """
        if frame_type not in (
            FrameType.SUBMIT,
            FrameType.SUBMIT_BATCH,
            FrameType.SUBMIT_COLUMN,
            FrameType.SUBMIT_EVENT,
            FrameType.SUBMIT_EVENT_BATCH,
        ):
            return ("request", (frame_type, payload), 0, trace_id)
        try:
            if frame_type is FrameType.SUBMIT_COLUMN:
                kind = "submit_column"
                work: Any = _normalize_column(payload)
                count = len(work[1])
            elif frame_type in (
                FrameType.SUBMIT_EVENT,
                FrameType.SUBMIT_EVENT_BATCH,
            ):
                kind = "submit_events"
                work = _normalize_events(frame_type, payload, event_time)
                count = len(work)
            else:
                kind = "submit"
                work = _normalize_records(frame_type, payload)
                count = len(work)
        except ProtocolError as error:
            return ("bad_request", str(error), 0, trace_id)
        if self._draining or self.gateway.closed:
            return ("rejected", "server is draining", 0, trace_id)
        if self.admission_policy == "block":
            await self._budget.acquire(count, nbytes)
            if connection.budget is not None:
                await connection.budget.acquire(count, nbytes)
            self._inflight_gauge.set(self._budget.records)
            return (kind, work, nbytes, trace_id)
        if not self._budget.try_acquire(count, nbytes):
            return self._shed(connection, count, trace_id)
        if connection.budget is not None and not (
            connection.budget.try_acquire(count, nbytes)
        ):
            await self._budget.release(count, nbytes)
            return self._shed(connection, count, trace_id)
        self._inflight_gauge.set(self._budget.records)
        return (kind, work, nbytes, trace_id)

    def _shed(
        self,
        connection: _Connection,
        count: int,
        trace_id: Optional[int],
    ) -> Tuple[str, Any, int, Optional[int]]:
        self.shed_requests += 1
        self.shed_records += count
        connection.shed_records += count
        return ("shed", count, 0, trace_id)

    async def _process_requests(
        self,
        queue: asyncio.Queue,
        writer: asyncio.StreamWriter,
        connection: _Connection,
    ) -> None:
        """Execute queued requests in order, one reply per request."""
        loop = asyncio.get_running_loop()
        while True:
            kind, value, nbytes, trace_id = await queue.get()
            if kind == "eof":
                return
            if kind == "protocol_error":
                await self._reply(
                    writer,
                    FrameType.ERROR,
                    {"error": "ProtocolError", "message": value},
                )
                return
            if kind == "shed":
                await self._reply(
                    writer,
                    FrameType.RETRY,
                    {
                        "reason": "admission budget exhausted",
                        "retry_after": self.retry_after,
                        "shed_records": value,
                    },
                    trace_id,
                )
                self.telemetry.tracer.finish(trace_id)
                continue
            if kind in ("bad_request", "rejected"):
                await self._reply(
                    writer,
                    FrameType.ERROR,
                    {"error": "ServiceError", "message": value},
                    trace_id,
                )
                self.telemetry.tracer.finish(trace_id)
                continue
            if kind == "submit":
                records = value
                await self._handle_submit(
                    loop,
                    writer,
                    connection,
                    lambda: self.gateway.submit_many(records, trace_id),
                    len(records),
                    nbytes,
                    trace_id,
                )
                continue
            if kind == "submit_events":
                records = value
                await self._handle_submit(
                    loop,
                    writer,
                    connection,
                    lambda: self.gateway.submit_events(
                        records, trace_id
                    ),
                    len(records),
                    nbytes,
                    trace_id,
                )
                continue
            if kind == "submit_column":
                key, column = value
                await self._handle_submit(
                    loop,
                    writer,
                    connection,
                    lambda: self.gateway.submit_column(
                        key, column, trace_id
                    ),
                    len(column),
                    nbytes,
                    trace_id,
                )
                continue
            frame_type, payload = value
            if frame_type is FrameType.CLOSE:
                await self._reply(
                    writer, FrameType.OK, {"closed": True}, trace_id
                )
                return
            try:
                await self._handle_request(
                    loop, writer, frame_type, trace_id
                )
            except ReproError as error:
                await self._reply(
                    writer,
                    FrameType.ERROR,
                    {
                        "error": type(error).__name__,
                        "message": str(error),
                    },
                    trace_id,
                )

    async def _handle_submit(
        self,
        loop: asyncio.AbstractEventLoop,
        writer: asyncio.StreamWriter,
        connection: _Connection,
        submit: Callable[[], int],
        count: int,
        nbytes: int,
        trace_id: Optional[int],
    ) -> None:
        started = time.perf_counter()
        try:
            await loop.run_in_executor(self._executor, submit)
        except ReproError as error:
            await self._reply(
                writer,
                FrameType.ERROR,
                {"error": type(error).__name__, "message": str(error)},
                trace_id,
            )
            return
        finally:
            await self._budget.release(count, nbytes)
            if connection.budget is not None:
                await connection.budget.release(count, nbytes)
            self._inflight_gauge.set(self._budget.records)
        submit_seconds = time.perf_counter() - started
        self._latency.add(submit_seconds)
        self._submit_hist.observe(submit_seconds)
        self.telemetry.tracer.record(
            trace_id, "submit", submit_seconds
        )
        self.accepted_records += count
        self.accepted_batches += 1
        connection.accepted_records += count
        await self._reply(
            writer, FrameType.OK, {"accepted": count}, trace_id
        )

    async def _handle_request(
        self,
        loop: asyncio.AbstractEventLoop,
        writer: asyncio.StreamWriter,
        frame_type: FrameType,
        trace_id: Optional[int],
    ) -> None:
        tracer = self.telemetry.tracer
        if frame_type is FrameType.POLL:
            traced = await loop.run_in_executor(
                self._executor, self.gateway.poll_traced
            )
            answers = [answer for answer, _ in traced]
            self.answers_served += len(answers)
            # The reply carries the trace of the submission whose
            # record closed the newest answer's window, falling back
            # to the POLL's own trace id for empty/untraced results.
            answer_traces = [
                trace for _, trace in traced if trace is not None
            ]
            reply_trace = (
                answer_traces[-1] if answer_traces else trace_id
            )
            await self._reply(
                writer,
                FrameType.ANSWERS,
                encode_answers(answers),
                reply_trace,
            )
            # Answer traces end here: the answers they caused have
            # been handed back, closing the submit → reply loop.
            for finished in dict.fromkeys(answer_traces):
                tracer.finish(finished)
            if trace_id is not None and trace_id not in answer_traces:
                tracer.finish(trace_id)
            return
        if frame_type is FrameType.STATS:
            snapshot = await loop.run_in_executor(
                self._executor, self.gateway.snapshot
            )
            await self._reply(
                writer,
                FrameType.STATS_REPLY,
                self.stats_payload(snapshot),
                trace_id,
            )
            tracer.finish(trace_id)
            return
        if frame_type is FrameType.DRAIN:
            result = await self.drain()
            self.answers_served += len(result.answers)
            await self._reply(
                writer,
                FrameType.OK,
                {
                    "answers": encode_answers(result.answers),
                    "per_key": {
                        key: encode_answers(rows)
                        for key, rows in result.per_key.items()
                    },
                    "stats": _final_stats(result),
                },
                trace_id,
            )
            tracer.finish(trace_id)
            return
        # A reply-typed frame from a client is a protocol violation.
        raise ServiceError(
            f"unexpected frame type {frame_type.name} from client"
        )

    async def _reply(
        self,
        writer: asyncio.StreamWriter,
        frame_type: FrameType,
        payload: Any,
        trace_id: Optional[int] = None,
    ) -> None:
        # Replies carry a trace id only when the request did: a v2
        # reply to a v1 request would break old decoders.
        started = time.perf_counter()
        writer.write(encode_frame(frame_type, payload, trace_id))
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        reply_seconds = time.perf_counter() - started
        self._reply_hist.observe(reply_seconds)
        self.telemetry.tracer.record(
            trace_id, "reply", reply_seconds
        )

    # -- stats ------------------------------------------------------

    def stats_payload(
        self, service_snapshot: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """The STATS reply payload (see ``docs/serving.md``)."""
        uptime = time.perf_counter() - self._started_at
        summary = maybe_summary(self._latency.values)
        return {
            "server": {
                "uptime_seconds": uptime,
                "connections_total": self.connections_total,
                "active_connections": len(self._connection_tasks),
                "accepted_records": self.accepted_records,
                "accepted_batches": self.accepted_batches,
                "shed_requests": self.shed_requests,
                "shed_records": self.shed_records,
                "answers_served": self.answers_served,
                "protocol_errors": self.protocol_errors,
                "inflight_records": self._budget.records,
                "inflight_bytes": self._budget.bytes,
                "admission_policy": self.admission_policy,
                "draining": self._draining,
                "throughput_rps": (
                    self.accepted_records / uptime
                    if uptime > 0
                    else 0.0
                ),
                "submit_latency": (
                    {
                        "count": summary.count,
                        "minimum": summary.minimum,
                        "p25": summary.p25,
                        "median": summary.median,
                        "mean": summary.mean,
                        "p75": summary.p75,
                        "maximum": summary.maximum,
                        "sampled_of": self._latency.seen,
                    }
                    if summary is not None
                    else None
                ),
            },
            "service": (
                service_snapshot
                if service_snapshot is not None
                else self.gateway.snapshot()
            ),
            "telemetry": self.telemetry.snapshot(),
        }

    def render_metrics(self) -> str:
        """The Prometheus text exposition of the server's hub.

        Includes the service-side instruments (shard fold, merge)
        because the hub is attached to the wrapped service; safe to
        call from any thread.
        """
        self._inflight_gauge.set(self._budget.records)
        return self.telemetry.render_text()


def _normalize_records(
    frame_type: FrameType, payload: Any
) -> List[Tuple[Any, Any]]:
    """Validate a SUBMIT/SUBMIT_BATCH payload into ``(key, value)`` pairs."""
    if frame_type is FrameType.SUBMIT:
        pairs: Any = [payload]
    else:
        pairs = payload
    if not isinstance(pairs, (list, tuple)):
        raise ProtocolError(
            f"{frame_type.name} payload must be a sequence of "
            f"(key, value) pairs, got {type(payload).__name__}"
        )
    records: List[Tuple[Any, Any]] = []
    for pair in pairs:
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise ProtocolError(
                f"{frame_type.name} record must be a (key, value) "
                f"pair, got {pair!r}"
            )
        records.append((pair[0], pair[1]))
    return records


def _normalize_events(
    frame_type: FrameType, payload: Any, event_time: Optional[float]
) -> List[Tuple[Any, float, Any]]:
    """Validate event frames into ``(key, timestamp, value)`` triples.

    ``SUBMIT_EVENT`` carries its timestamp in the v3 header field and
    a ``(key, value)`` payload; ``SUBMIT_EVENT_BATCH`` carries triples
    in the payload (any framing version).
    """
    if frame_type is FrameType.SUBMIT_EVENT:
        if event_time is None:
            raise ProtocolError(
                "SUBMIT_EVENT requires the protocol-v3 event-time "
                "header field"
            )
        if not math.isfinite(event_time):
            # A NaN timestamp passes every downstream comparison
            # (including "timestamp < origin") and would wedge the
            # service's reorder buffer forever; reject it at the wire.
            raise ProtocolError(
                f"event timestamp must be finite, got {event_time!r}"
            )
        if not isinstance(payload, (list, tuple)) or len(payload) != 2:
            raise ProtocolError(
                f"SUBMIT_EVENT payload must be a (key, value) pair, "
                f"got {payload!r}"
            )
        return [(payload[0], event_time, payload[1])]
    if not isinstance(payload, (list, tuple)):
        raise ProtocolError(
            "SUBMIT_EVENT_BATCH payload must be a sequence of "
            f"(key, timestamp, value) triples, got "
            f"{type(payload).__name__}"
        )
    records: List[Tuple[Any, float, Any]] = []
    for row in payload:
        if not isinstance(row, (list, tuple)) or len(row) != 3:
            raise ProtocolError(
                "SUBMIT_EVENT_BATCH record must be a "
                f"(key, timestamp, value) triple, got {row!r}"
            )
        key, timestamp, value = row
        if isinstance(timestamp, bool) or not isinstance(
            timestamp, (int, float)
        ):
            raise ProtocolError(
                f"event timestamp must be a number, got {timestamp!r}"
            )
        if not math.isfinite(timestamp):
            raise ProtocolError(
                f"event timestamp must be finite, got {timestamp!r}"
            )
        records.append((key, float(timestamp), value))
    return records


def _normalize_column(payload: Any) -> Tuple[Any, Any]:
    """Validate a SUBMIT_COLUMN payload into ``(key, values)``.

    Packed numeric columns (kind ``"q"``/``"d"``) come back as a
    zero-copy typed ``memoryview`` over the payload bytes — no
    per-record decode loop; the ``"o"`` fallback kind carries a plain
    list of tagged values.
    """
    if not isinstance(payload, (list, tuple)) or len(payload) != 3:
        raise ProtocolError(
            "SUBMIT_COLUMN payload must be a (key, kind, body) "
            f"triple, got {payload!r}"
        )
    key, kind, body = payload
    if kind in ("q", "d"):
        if not isinstance(body, (bytes, bytearray)):
            raise ProtocolError(
                f"packed column body must be bytes, got "
                f"{type(body).__name__}"
            )
        if len(body) % 8:
            raise ProtocolError(
                f"packed column of {len(body)} bytes is not a "
                "multiple of 8"
            )
        if sys.byteorder != "little":  # pragma: no cover - LE hosts
            count = len(body) // 8
            return key, list(
                struct.unpack(f"<{count}{kind}", bytes(body))
            )
        return key, column_view(bytes(body), kind)
    if kind == "o":
        if not isinstance(body, (list, tuple)):
            raise ProtocolError(
                f"object column body must be a sequence, got "
                f"{type(body).__name__}"
            )
        return key, list(body)
    raise ProtocolError(
        f"unknown column kind {kind!r} (expected 'q', 'd', or 'o')"
    )


def _final_stats(result: ServiceResult) -> Dict[str, Any]:
    """Wire-friendly subset of a final :class:`ServiceResult`'s stats."""
    stats = result.stats
    return {
        "records_submitted": stats.records_submitted,
        "records_processed": stats.records_processed,
        "dropped_records": stats.dropped_records,
        "answers_emitted": stats.answers_emitted,
        "elapsed_seconds": stats.elapsed_seconds,
        "dead_letters": stats.dead_letters,
        "late_records": stats.late_records,
        "failed_shards": list(stats.failed_shards),
        "degraded": stats.degraded,
        "transport": stats.transport,
    }


class ServerThread:
    """Run an :class:`AggregationServer` on a dedicated loop thread.

    The bridge that lets synchronous code (examples, tests, the sync
    client) own a live server: :meth:`start` blocks until the server
    is accepting (so :attr:`port` is resolvable), :meth:`stop` shuts
    the loop down and joins the thread.

    Args:
        server: A constructed (not yet started) server.  Its asyncio
            primitives bind to the thread's loop on first use, so it
            must not have been started elsewhere.
    """

    def __init__(self, server: AggregationServer):
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._stop_requested: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> "ServerThread":
        """Start the loop thread; returns once the port is bound."""
        if self._thread is not None:
            raise ServiceError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-net-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServiceError(
                f"server failed to start within {timeout} seconds"
            )
        if self._startup_error is not None:
            raise ServiceError(
                f"server failed to start: {self._startup_error!r}"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as error:  # pragma: no cover - bind races
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        await self._stop_requested.wait()
        await self.server.stop()

    @property
    def port(self) -> int:
        """The server's bound port (valid after :meth:`start`)."""
        return self.server.port

    def drain(self, timeout: float = 60.0) -> ServiceResult:
        """Drain the service from outside the loop thread."""
        if self._loop is None:
            raise ServiceError("server thread is not running")
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(timeout), self._loop
        )
        return future.result(timeout + 10.0)

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the server and join the loop thread; idempotent."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop_requested is not None:
            try:
                self._loop.call_soon_threadsafe(
                    self._stop_requested.set
                )
            except RuntimeError:
                pass  # loop already closed (startup failure path)
        self._thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "ServerThread":
        """Context entry: start the thread."""
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context exit: stop the thread."""
        self.stop()
