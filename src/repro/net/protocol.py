"""Length-prefixed binary wire protocol for the network serving layer.

One frame per request or reply.  Version 1 framing::

    0        2        3        4            8
    +--------+--------+--------+------------+----------------+
    | magic  | version| type   | length (BE)| payload ...    |
    | 2 B    | 1 B    | 1 B    | 4 B        | length bytes   |
    +--------+--------+--------+------------+----------------+

Version 2 adds a fixed trace-id field between header and payload::

    0        2        3        4            8                16
    +--------+--------+--------+------------+----------------+---------+
    | magic  | version| type   | length (BE)| trace id (BE)  | payload |
    | 2 B    | 1 B    | 1 B    | 4 B        | 8 B            | len B   |
    +--------+--------+--------+------------+----------------+---------+

Version 3 adds a fixed event-time field (big-endian f64 seconds) after
the trace id, carrying a record's event timestamp out-of-band so the
payload codec never has to disambiguate it from record values::

    0        2        3        4            8          16         24
    +--------+--------+--------+------------+----------+----------+---------+
    | magic  | version| type   | length (BE)| trace id | evt time | payload |
    | 2 B    | 1 B    | 1 B    | 4 B        | 8 B      | f64 (BE) | len B   |
    +--------+--------+--------+------------+----------+----------+---------+

``magic`` is ``b"SD"`` (SlickDeque), ``version`` is one of
:data:`SUPPORTED_VERSIONS`, ``type`` is one of :class:`FrameType`, and
the payload is one value in the tagged binary encoding of
:func:`encode_value` (None, bools, ints of any size, floats, strings,
bytes, lists, tuples, and string-or-scalar-keyed dicts).  The v2
trace id correlates a request with the work it causes downstream (see
:mod:`repro.telemetry.trace`); 0 means "no trace" and decodes as
``None``.  :func:`encode_frame` emits the *minimal* version for what
it is asked to carry — v1 when there is no trace id, v2 when there is
— so untraced traffic is byte-identical to protocol version 1 and old
peers keep interoperating; the decoder accepts both versions either
way.  Requests and replies share the framing; a request's reply is the
next reply frame on the connection, so clients may pipeline freely.

Anything the codec cannot interpret — bad magic, unsupported version,
unknown frame type or value tag, declared lengths that exceed
:data:`MAX_PAYLOAD_BYTES` or run past the payload — raises
:class:`~repro.errors.ProtocolError`.  Incomplete input is *not* an
error: the streaming :class:`FrameDecoder` simply waits for more
bytes, which is what lets the server read frames off a TCP stream
chunk by chunk.
"""

from __future__ import annotations

import enum
import struct
import sys
from typing import (
    Any,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ProtocolError

#: Frame preamble identifying this protocol on the wire.
MAGIC = b"SD"

#: Current protocol version (v2 added the optional trace-id header
#: field, v3 the event-time field).  :func:`encode_frame` still emits
#: the *minimal* version for what a frame carries — v1 bytes for plain
#: frames, v2 for traced ones — so the bump is invisible to peers that
#: never send event time.
PROTOCOL_VERSION = 2

#: Version carrying the event-time header field.
EVENT_TIME_PROTOCOL_VERSION = 3

#: The newest version *before* the trace-id field existed.
LEGACY_PROTOCOL_VERSION = 1

#: Versions this side decodes.
SUPPORTED_VERSIONS = frozenset({1, 2, 3})

#: Frame header: magic(2) + version(1) + type(1) + payload length(4).
HEADER = struct.Struct(">2sBBI")

#: v2 trace-id field, following the base header (0 = no trace).
_TRACE_FIELD = struct.Struct(">Q")

#: v3 event-time field (f64 seconds), following the trace id.
_EVENT_FIELD = struct.Struct(">d")

#: Largest trace id the 8-byte wire field can carry.
MAX_TRACE_ID = 2**64 - 1

#: Hard upper bound on a single frame's payload (16 MiB).  Guards the
#: server against a hostile or corrupt length field committing it to
#: an unbounded read.
MAX_PAYLOAD_BYTES = 16 * 1024 * 1024


class FrameType(enum.IntEnum):
    """Request (< 0x80) and reply (>= 0x80) frame types."""

    #: One keyed record: payload ``(key, value)``.
    SUBMIT = 0x01
    #: Many keyed records: payload ``[(key, value), ...]``.
    SUBMIT_BATCH = 0x02
    #: Collect answers released since the last poll: payload ``None``.
    POLL = 0x03
    #: Server + service instrumentation snapshot: payload ``None``.
    STATS = 0x04
    #: Flush the service and return every remaining answer: ``None``.
    DRAIN = 0x05
    #: End this connection (the server stays up): payload ``None``.
    CLOSE = 0x06
    #: One key's value column: payload ``(key, kind, body)`` where
    #: ``kind`` is ``"q"`` (body = packed little-endian int64s),
    #: ``"d"`` (packed float64s), or ``"o"`` (body = a list of tagged
    #: values, the fallback for non-numeric columns).  Packed columns
    #: decode server-side into a zero-copy typed view that feeds the
    #: router's single-lookup column path — no per-record tuples on
    #: the wire, no per-record decode loop on the server.
    SUBMIT_COLUMN = 0x07
    #: One event-timestamped record: payload ``(key, value)``, with
    #: the event timestamp in the v3 header field.
    SUBMIT_EVENT = 0x08
    #: Many event-timestamped records: payload
    #: ``[(key, timestamp, value), ...]`` (timestamps in-payload; the
    #: v3 header field is unused and the frame may travel as v1/v2).
    SUBMIT_EVENT_BATCH = 0x09

    #: Success without answers: payload ``{"accepted": n}``-style dict.
    OK = 0x81
    #: Answers released: payload ``[(position, (range, slide), value)]``.
    ANSWERS = 0x82
    #: Stats snapshot: payload dict (see ``docs/serving.md``).
    STATS_REPLY = 0x83
    #: Admission control shed the request; retry after backoff.
    RETRY = 0x84
    #: The request failed; payload ``{"error": ..., "message": ...}``.
    ERROR = 0x85


#: Frame types a client may send.
REQUEST_TYPES = frozenset(
    {
        FrameType.SUBMIT,
        FrameType.SUBMIT_BATCH,
        FrameType.SUBMIT_COLUMN,
        FrameType.SUBMIT_EVENT,
        FrameType.SUBMIT_EVENT_BATCH,
        FrameType.POLL,
        FrameType.STATS,
        FrameType.DRAIN,
        FrameType.CLOSE,
    }
)

#: Frame types a server may send.
REPLY_TYPES = frozenset(
    {
        FrameType.OK,
        FrameType.ANSWERS,
        FrameType.STATS_REPLY,
        FrameType.RETRY,
        FrameType.ERROR,
    }
)

# -- value codec ----------------------------------------------------
#
# One-byte tag, then a fixed- or length-prefixed body.  Collections
# nest arbitrarily.  Ints outside signed-64 fall back to a
# length-prefixed two's-complement encoding so Python's bigints round
# trip exactly.

_TAG_NONE = 0x00
_TAG_TRUE = 0x01
_TAG_FALSE = 0x02
_TAG_INT64 = 0x03
_TAG_BIGINT = 0x04
_TAG_FLOAT = 0x05
_TAG_STR = 0x06
_TAG_BYTES = 0x07
_TAG_LIST = 0x08
_TAG_TUPLE = 0x09
_TAG_DICT = 0x0A

_INT64 = struct.Struct(">q")
_FLOAT64 = struct.Struct(">d")
_U32 = struct.Struct(">I")

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def encode_value(value: Any) -> bytes:
    """Encode one supported Python value to its tagged binary form.

    Supported: ``None``, ``bool``, ``int`` (any magnitude), ``float``,
    ``str``, ``bytes``, ``list``, ``tuple``, and ``dict`` (keys and
    values each themselves supported).  Anything else raises
    :class:`~repro.errors.ProtocolError` — the wire format is a closed
    set on purpose, so a server never unpickles arbitrary objects.
    """
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _encode_into(out: bytearray, value: Any) -> None:
    # bool must be tested before int (bool is an int subclass).
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, bool):  # pragma: no cover - numpy bools etc.
        out.append(_TAG_TRUE if value else _TAG_FALSE)
    elif isinstance(value, int):
        if _INT64_MIN <= value <= _INT64_MAX:
            out.append(_TAG_INT64)
            out += _INT64.pack(value)
        else:
            body = value.to_bytes(
                (value.bit_length() + 8) // 8, "big", signed=True
            )
            out.append(_TAG_BIGINT)
            out += _U32.pack(len(body))
            out += body
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out += _FLOAT64.pack(value)
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out.append(_TAG_STR)
        out += _U32.pack(len(body))
        out += body
    elif isinstance(value, (bytes, bytearray)):
        out.append(_TAG_BYTES)
        out += _U32.pack(len(value))
        out += bytes(value)
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST if isinstance(value, list) else _TAG_TUPLE)
        out += _U32.pack(len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        out += _U32.pack(len(value))
        for key, item in value.items():
            _encode_into(out, key)
            _encode_into(out, item)
    else:
        raise ProtocolError(
            f"cannot encode {type(value).__name__!s} on the wire; "
            "supported types are None/bool/int/float/str/bytes/"
            "list/tuple/dict"
        )


def decode_value(payload: bytes) -> Any:
    """Decode one tagged value, requiring the payload be fully consumed.

    Trailing bytes after the value are a framing bug (the length field
    promised exactly one value) and raise
    :class:`~repro.errors.ProtocolError`, as do truncated bodies and
    unknown tags.
    """
    value, offset = _decode_at(payload, 0)
    if offset != len(payload):
        raise ProtocolError(
            f"{len(payload) - offset} trailing bytes after payload value"
        )
    return value


def _need(payload: bytes, offset: int, count: int) -> None:
    if offset + count > len(payload):
        raise ProtocolError(
            f"truncated payload: needed {count} bytes at offset "
            f"{offset}, have {len(payload) - offset}"
        )


def _decode_at(payload: bytes, offset: int) -> Tuple[Any, int]:
    _need(payload, offset, 1)
    tag = payload[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT64:
        _need(payload, offset, 8)
        return _INT64.unpack_from(payload, offset)[0], offset + 8
    if tag == _TAG_BIGINT:
        _need(payload, offset, 4)
        size = _U32.unpack_from(payload, offset)[0]
        offset += 4
        _need(payload, offset, size)
        body = payload[offset : offset + size]
        return int.from_bytes(body, "big", signed=True), offset + size
    if tag == _TAG_FLOAT:
        _need(payload, offset, 8)
        return _FLOAT64.unpack_from(payload, offset)[0], offset + 8
    if tag in (_TAG_STR, _TAG_BYTES):
        _need(payload, offset, 4)
        size = _U32.unpack_from(payload, offset)[0]
        offset += 4
        _need(payload, offset, size)
        body = payload[offset : offset + size]
        offset += size
        if tag == _TAG_BYTES:
            return bytes(body), offset
        try:
            return body.decode("utf-8"), offset
        except UnicodeDecodeError as exc:
            raise ProtocolError(
                f"invalid UTF-8 in string body: {exc}"
            ) from exc
    if tag in (_TAG_LIST, _TAG_TUPLE):
        _need(payload, offset, 4)
        count = _U32.unpack_from(payload, offset)[0]
        offset += 4
        items: List[Any] = []
        for _ in range(count):
            item, offset = _decode_at(payload, offset)
            items.append(item)
        return (items if tag == _TAG_LIST else tuple(items)), offset
    if tag == _TAG_DICT:
        _need(payload, offset, 4)
        count = _U32.unpack_from(payload, offset)[0]
        offset += 4
        mapping = {}
        for _ in range(count):
            key, offset = _decode_at(payload, offset)
            item, offset = _decode_at(payload, offset)
            try:
                mapping[key] = item
            except TypeError as exc:
                # Corruption can rewrite a key's tag into a container
                # tag; an unhashable key is a framing error, not a bug.
                raise ProtocolError(f"unhashable dict key: {exc}") from exc
        return mapping, offset
    raise ProtocolError(f"unknown value tag 0x{tag:02x}")


# -- column packing -------------------------------------------------


def pack_column(values: Sequence[Any]) -> Optional[Tuple[str, bytes]]:
    """Pack a homogeneous numeric column for ``SUBMIT_COLUMN``.

    Returns ``(kind, body)`` — ``("q", <packed int64s>)`` or
    ``("d", <packed float64s>)`` — or ``None`` when the column is not
    eligible (mixed types, bools, ints outside int64, or a big-endian
    host, where native packing would not match the little-endian wire
    layout).  Eligibility intentionally matches the shm transport's
    columnar capability check (:func:`repro.service.transport.frame.
    encode_values`), so a column that packs here also rides the shard
    rings columnar end to end.
    """
    if sys.byteorder != "little":  # pragma: no cover - LE hosts only
        return None
    from repro.service.transport.frame import encode_values

    encoded = encode_values(values)
    if encoded is None:
        return None
    body, is_float = encoded
    return ("d" if is_float else "q", body)


# -- frame codec ----------------------------------------------------


class Frame(NamedTuple):
    """A decoded frame: type, payload, trace id, and event time."""

    frame_type: FrameType
    payload: Any
    trace_id: Optional[int]
    #: v3 event-time header field, ``None`` on v1/v2 frames.
    event_time: Optional[float] = None


def encode_frame(
    frame_type: FrameType,
    payload: Any = None,
    trace_id: Optional[int] = None,
    event_time: Optional[float] = None,
) -> bytes:
    """Frame one value as ``header [+ trace id [+ event time]] + payload``.

    The minimal version for the frame's content is emitted: v1 without
    a trace id — byte-identical to what this function produced before
    the trace field existed — v2 with one, and v3 only when an event
    timestamp must travel in the header.  Old peers therefore keep
    interoperating with clients that never send event-timestamped
    records.
    """
    body = encode_value(payload)
    if len(body) > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"payload of {len(body)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte frame limit"
        )
    if trace_id is not None and not 1 <= trace_id <= MAX_TRACE_ID:
        raise ProtocolError(
            f"trace id {trace_id!r} outside [1, 2**64 - 1] "
            "(0 is reserved for 'no trace')"
        )
    if event_time is not None:
        return (
            HEADER.pack(
                MAGIC,
                EVENT_TIME_PROTOCOL_VERSION,
                int(frame_type),
                len(body),
            )
            + _TRACE_FIELD.pack(trace_id or 0)
            + _EVENT_FIELD.pack(event_time)
            + body
        )
    if trace_id is None:
        return (
            HEADER.pack(
                MAGIC, LEGACY_PROTOCOL_VERSION, int(frame_type),
                len(body),
            )
            + body
        )
    return (
        HEADER.pack(
            MAGIC, PROTOCOL_VERSION, int(frame_type), len(body)
        )
        + _TRACE_FIELD.pack(trace_id)
        + body
    )


def try_decode_frame_traced(
    buffer: bytes, offset: int = 0
) -> Optional[Tuple[Frame, int]]:
    """Decode one frame starting at ``offset``, if fully buffered.

    Returns ``(frame, next_offset)``, or ``None`` when the buffer
    holds only a prefix of a frame (read more bytes and try again).
    Accepts every version in :data:`SUPPORTED_VERSIONS`: v1 frames
    decode with ``trace_id=None``, as do v2 frames carrying the
    reserved trace id 0.  Malformed bytes raise
    :class:`~repro.errors.ProtocolError`.
    """
    if len(buffer) - offset < HEADER.size:
        return None
    magic, version, type_byte, length = HEADER.unpack_from(
        buffer, offset
    )
    if magic != MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (expected {MAGIC!r})"
        )
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            f"unsupported protocol version {version} "
            f"(this side speaks {sorted(SUPPORTED_VERSIONS)})"
        )
    try:
        frame_type = FrameType(type_byte)
    except ValueError as exc:
        raise ProtocolError(
            f"unknown frame type 0x{type_byte:02x}"
        ) from exc
    if length > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte frame limit"
        )
    start = offset + HEADER.size
    trace_id: Optional[int] = None
    event_time: Optional[float] = None
    if version >= 2:
        if len(buffer) - start < _TRACE_FIELD.size:
            return None
        raw_trace = _TRACE_FIELD.unpack_from(buffer, start)[0]
        trace_id = raw_trace or None
        start += _TRACE_FIELD.size
    if version >= 3:
        if len(buffer) - start < _EVENT_FIELD.size:
            return None
        event_time = _EVENT_FIELD.unpack_from(buffer, start)[0]
        start += _EVENT_FIELD.size
    if len(buffer) - start < length:
        return None
    payload = decode_value(bytes(buffer[start : start + length]))
    return (
        Frame(frame_type, payload, trace_id, event_time),
        start + length,
    )


def try_decode_frame(
    buffer: bytes, offset: int = 0
) -> Optional[Tuple[FrameType, Any, int]]:
    """Decode one frame starting at ``offset``, if fully buffered.

    Returns ``(frame_type, payload, next_offset)``, or ``None`` when
    the buffer holds only a prefix of a frame (read more bytes and try
    again).  Trace ids are decoded and discarded — call
    :func:`try_decode_frame_traced` to keep them.  Malformed bytes
    raise :class:`~repro.errors.ProtocolError`.
    """
    decoded = try_decode_frame_traced(buffer, offset)
    if decoded is None:
        return None
    frame, next_offset = decoded
    return frame.frame_type, frame.payload, next_offset


class FrameDecoder:
    """Incremental frame decoder over a byte stream.

    Feed it whatever chunks the transport hands you; iterate
    :meth:`frames` for every complete frame.  Partial frames stay
    buffered across calls.  A malformed frame raises
    :class:`~repro.errors.ProtocolError` and poisons the decoder —
    after a framing error the stream offset is unknowable, so the
    connection must be torn down rather than resynchronised.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._poisoned = False

    def feed(self, data: bytes) -> None:
        """Append raw bytes received from the transport."""
        if self._poisoned:
            raise ProtocolError(
                "decoder previously hit a framing error; the stream "
                "offset is unknown and the connection must be closed"
            )
        self._buffer += data

    def frames(self) -> Iterator[Tuple[FrameType, Any]]:
        """Yield ``(frame_type, payload)`` for each buffered frame."""
        for frame in self.frames_traced():
            yield frame.frame_type, frame.payload

    def frames_traced(self) -> Iterator[Frame]:
        """Yield a :class:`Frame` (with trace id) per buffered frame."""
        offset = 0
        try:
            while True:
                decoded = try_decode_frame_traced(self._buffer, offset)
                if decoded is None:
                    break
                frame, offset = decoded
                yield frame
        except ProtocolError:
            self._poisoned = True
            raise
        finally:
            if offset:
                del self._buffer[:offset]

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet consumed by a complete frame."""
        return len(self._buffer)


# -- answer marshalling ---------------------------------------------
#
# Global-mode answers are (position, Query, value) triples; Query does
# not travel on the wire, its (range, slide, name) does.


def encode_answers(answers) -> List[Tuple[Any, ...]]:
    """Marshal engine/service answers into wire-friendly tuples.

    Each ``(position, query, value)`` triple becomes ``(position,
    (range_size, slide, name), value)``; per-key four-tuples keep the
    leading key.  Time-query answers marshal the query as the tagged
    4-tuple ``("time", range_seconds, slide_seconds, name)`` — count
    specs stay 3-tuples, so pre-v3 answer bytes are unchanged.
    """
    marshalled = []
    for answer in answers:
        *prefix, query, value = answer
        if hasattr(query, "range_seconds"):
            spec: Tuple[Any, ...] = (
                "time",
                query.range_seconds,
                query.slide_seconds,
                query.name,
            )
        else:
            spec = (query.range_size, query.slide, query.name)
        marshalled.append((*prefix, spec, value))
    return marshalled


def decode_answers(rows) -> List[Tuple[Any, ...]]:
    """Rebuild :class:`~repro.windows.query.Query` (or
    :class:`~repro.windows.timebased.TimeQuery`) objects client-side."""
    from repro.windows.query import Query
    from repro.windows.timebased import TimeQuery

    rebuilt = []
    for row in rows:
        *prefix, spec, value = row
        if (
            isinstance(spec, (list, tuple))
            and len(spec) == 4
            and spec[0] == "time"
        ):
            _, range_seconds, slide_seconds, name = spec
            rebuilt.append(
                (
                    *prefix,
                    TimeQuery(range_seconds, slide_seconds, name=name),
                    value,
                )
            )
            continue
        try:
            range_size, slide, name = spec
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                f"malformed query spec in answer row: {spec!r}"
            ) from exc
        rebuilt.append(
            (*prefix, Query(range_size, slide, name=name), value)
        )
    return rebuilt
