"""Algorithm registry: names → aggregator classes and capabilities.

The experiment harness, benches, and examples select algorithms by the
names the paper uses.  ``slickdeque`` dispatches on the operator's
invertibility via the core facade, exactly as the paper's system does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines import (
    BIntAggregator,
    BIntMultiAggregator,
    DABAAggregator,
    FlatFATAggregator,
    FlatFATMultiAggregator,
    FlatFITAggregator,
    FlatFITMultiAggregator,
    MultiQueryAggregator,
    NaiveAggregator,
    NaiveMultiAggregator,
    RecalcAggregator,
    RecalcMultiAggregator,
    SlidingAggregator,
    TwoStacksAggregator,
)
from repro.baselines.panes_inv import PanesInvAggregator
from repro.core import make_slickdeque, make_slickdeque_multi
from repro.errors import UnknownOperatorError
from repro.operators.base import AggregateOperator


@dataclass(frozen=True)
class AlgorithmSpec:
    """A named algorithm with its construction functions."""

    name: str
    #: Display name as used in the paper's figures.
    label: str
    single: Callable[[AggregateOperator, int], SlidingAggregator]
    multi: Optional[
        Callable[[AggregateOperator, Sequence[int]], MultiQueryAggregator]
    ]

    @property
    def supports_multi_query(self) -> bool:
        return self.multi is not None


_ALGORITHMS: Dict[str, AlgorithmSpec] = {}


def _register(spec: AlgorithmSpec) -> None:
    _ALGORITHMS[spec.name] = spec


_register(AlgorithmSpec("recalc", "Recalc", RecalcAggregator,
                        RecalcMultiAggregator))
_register(AlgorithmSpec("naive", "Naive", NaiveAggregator,
                        NaiveMultiAggregator))
_register(AlgorithmSpec("flatfat", "FlatFAT", FlatFATAggregator,
                        FlatFATMultiAggregator))
_register(AlgorithmSpec("bint", "B-Int", BIntAggregator,
                        BIntMultiAggregator))
_register(AlgorithmSpec("flatfit", "FlatFIT", FlatFITAggregator,
                        FlatFITMultiAggregator))
_register(AlgorithmSpec("twostacks", "TwoStacks", TwoStacksAggregator,
                        None))
_register(AlgorithmSpec("daba", "DABA", DABAAggregator, None))
_register(AlgorithmSpec("panes_inv", "Panes (Inv)", PanesInvAggregator,
                        None))
_register(AlgorithmSpec("slickdeque", "SlickDeque", make_slickdeque,
                        make_slickdeque_multi))


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up an algorithm spec by registry name.

    Raises:
        UnknownOperatorError: for unregistered names.
    """
    try:
        return _ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(_ALGORITHMS))
        raise UnknownOperatorError(
            f"unknown algorithm {name!r}; known algorithms: {known}"
        ) from None


def available_algorithms(multi_query: bool = False) -> List[str]:
    """Registered algorithm names, optionally multi-query-capable only.

    Order follows the paper's figures (Naive first, SlickDeque last);
    the Recalc oracle is excluded — it exists for testing, not
    comparison.
    """
    ordered = [
        "naive", "flatfat", "bint", "flatfit", "twostacks", "daba",
        "slickdeque",
    ]
    specs = [_ALGORITHMS[name] for name in ordered]
    if multi_query:
        specs = [spec for spec in specs if spec.supports_multi_query]
    return [spec.name for spec in specs]
