"""FlatFAT — Flat Fixed-sized Aggregator (paper Figure 4, [29]).

A pointer-less complete binary tree stored in a flat array.  Partials
are inserted into the leaves left-to-right; the leaves form a circular
array; each insert walks the tree bottom-up updating internal nodes
(``log₂(n)`` combines per slide).  Look-ups return the root for a
full-window query or aggregate "a minimum set of internal nodes that
covers the required range of leaves".

Capacity rounds up to the next power of two (Section 4.2: space
``2^⌈log n⌉ ... worst case 3n``).  Unwritten leaves hold the operator
identity so warm-up answers match the identity-padded semantics of
Algorithm 1.

Non-commutative operators are supported: range look-ups aggregate nodes
in leaf order, and a wrapped window is answered as the ordered
combination of its two linear segments.  The root shortcut is used only
when it is order-correct (commutative operator, or the window happens
to be aligned).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.baselines.base import MultiQueryAggregator, SlidingAggregator
from repro.operators.base import Agg, AggregateOperator


def _next_power_of_two(n: int) -> int:
    return 1 << (n - 1).bit_length() if n > 1 else 1


class _FlatTree:
    """The flat array tree shared by the single- and multi-query views."""

    def __init__(self, operator: AggregateOperator, window: int):
        self.operator = operator
        self.window = window
        self.capacity = _next_power_of_two(window)
        identity = operator.identity
        #: Heap layout: internal nodes 1..cap-1, leaves cap..2cap-1.
        self.nodes: List[Agg] = [identity] * (2 * self.capacity)
        self.written = 0

    @property
    def position(self) -> int:
        """Leaf slot of the most recent insert (valid once written>0)."""
        return (self.written - 1) % self.capacity

    def insert(self, agg: Agg) -> None:
        """Write the next leaf and update its ancestors bottom-up."""
        combine = self.operator.combine
        index = self.capacity + self.written % self.capacity
        self.nodes[index] = agg
        self.written += 1
        index >>= 1
        while index >= 1:
            self.nodes[index] = combine(
                self.nodes[2 * index], self.nodes[2 * index + 1]
            )
            index >>= 1

    def _segment(self, left: int, right: int) -> Agg:
        """Ordered aggregate of leaf slots ``left..right`` inclusive."""
        op = self.operator
        prefix = op.identity
        suffix = op.identity
        lo = left + self.capacity
        hi = right + self.capacity + 1
        while lo < hi:
            if lo & 1:
                prefix = op.combine(prefix, self.nodes[lo])
                lo += 1
            if hi & 1:
                hi -= 1
                suffix = op.combine(self.nodes[hi], suffix)
            lo >>= 1
            hi >>= 1
        return op.combine(prefix, suffix)

    def suffix_query(self, count: int) -> Agg:
        """Aggregate of the most recent ``count`` leaves, in time order."""
        op = self.operator
        if count <= 0:
            return op.identity
        end = self.position
        start = (end - count + 1) % self.capacity
        if count == self.capacity and (op.commutative or start == 0):
            # Full circular window: the root covers every leaf.  Leaf
            # order differs from time order unless start == 0, so the
            # shortcut additionally requires commutativity.
            return self.nodes[1]
        if start <= end:
            return self._segment(start, end)
        older = self._segment(start, self.capacity - 1)
        newer = self._segment(0, end)
        return op.combine(older, newer)

    def memory_words(self) -> int:
        """Paper Section 4.2: ``2^⌈log n⌉ · 2`` words for the flat tree."""
        return 2 * self.capacity


class FlatFATAggregator(SlidingAggregator):
    """Single-query FlatFAT."""

    supports_multi_query = True

    def __init__(self, operator: AggregateOperator, window: int):
        super().__init__(operator, window)
        self._tree = _FlatTree(operator, window)

    def push(self, value: Any) -> None:
        self._tree.insert(self.operator.lift(value))

    def query(self) -> Any:
        count = min(self._tree.written, self.window)
        return self.operator.lower(self._tree.suffix_query(count))

    def memory_words(self) -> int:
        return self._tree.memory_words()


class FlatFATMultiAggregator(MultiQueryAggregator):
    """Multi-query FlatFAT: one insert, one range look-up per range.

    Per Table 1 this is ``n·log(n)`` asymptotically in the
    max-multi-query environment.
    """

    def __init__(self, operator: AggregateOperator, ranges: Sequence[int]):
        super().__init__(operator, ranges)
        self._tree = _FlatTree(operator, self.window)

    def step(self, value: Any) -> Dict[int, Any]:
        op = self.operator
        self._tree.insert(op.lift(value))
        written = self._tree.written
        answers = {}
        for r in self.ranges:
            count = min(r, written, self.window)
            answers[r] = op.lower(self._tree.suffix_query(count))
        return answers

    def memory_words(self) -> int:
        return self._tree.memory_words()
