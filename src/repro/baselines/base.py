"""Final-aggregator interfaces shared by all compared algorithms.

The paper's evaluation drives every algorithm through the same loop: a
new partial aggregate arrives each slide, the expired one leaves, and
the answer(s) are produced (Section 5.1, "all query slides set to one
tuple").  Two interfaces capture that:

:class:`SlidingAggregator`
    Single-query FIFO window of ``window`` partials.  ``push`` inserts
    the newest value (auto-evicting the oldest once the window is
    full); ``query`` returns the aggregate of everything retained.
    During warm-up the answer covers only the values seen so far, which
    equals the paper's identity-padded semantics.

:class:`MultiQueryAggregator`
    The max-multi-query environment of Section 4.1: a set of ranges
    over one stream, every range answered each slide.  TwoStacks and
    DABA do not implement it ("neither TwoStacks nor DABA are known to
    support multi-query execution", Section 2.2).

Both interfaces expose ``memory_words()`` — the logical space measure
(values + aggregates + pointers, in machine words) that reproduces the
Section 4.2 space formulas for Exp 4.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable, List, Sequence

from repro.errors import InvalidQueryError
from repro.operators.base import Agg, AggregateOperator


def validate_window(window: int) -> int:
    """Check a window size in partials; return it."""
    if window < 1:
        raise InvalidQueryError(
            f"window must be at least 1 partial, got {window}"
        )
    return window


def validate_ranges(ranges: Sequence[int]) -> List[int]:
    """Check and dedupe a multi-query range set; return sorted desc.

    Descending order matches the shared-plan convention (Algorithm 2:
    queries "ordered descendingly by their range").
    """
    unique = sorted(set(ranges), reverse=True)
    if not unique:
        raise InvalidQueryError("range set must not be empty")
    if unique[-1] < 1:
        raise InvalidQueryError(
            f"ranges must be >= 1, got {unique[-1]}"
        )
    return unique


def fold_seeded(operator: AggregateOperator, aggs: Iterable[Agg]) -> Agg:
    """Fold aggregate values seeding with the first one.

    Uses ``len(aggs) - 1`` combines — the accounting the paper uses for
    Naive ("its complexity is n − 1 ... it simply iterates over all n
    partials and aggregates them").  Empty input yields the identity.
    """
    iterator = iter(aggs)
    try:
        acc = next(iterator)
    except StopIteration:
        return operator.identity
    for agg in iterator:
        acc = operator.combine(acc, agg)
    return acc


class SlidingAggregator(ABC):
    """Single-query FIFO sliding-window final aggregator."""

    #: Class-level capability flag mirroring the paper's Table in §2.2.
    supports_multi_query = False

    def __init__(self, operator: AggregateOperator, window: int):
        self.operator = operator
        self.window = validate_window(window)

    @abstractmethod
    def push(self, value: Any) -> None:
        """Insert a raw value; evict the oldest once the window is full."""

    @abstractmethod
    def query(self) -> Any:
        """The lowered aggregate over every retained value."""

    def push_many(self, values: Sequence[Any]) -> None:
        """Insert a batch of values in stream order (bulk ingestion).

        Semantically identical to pushing each value in turn — the
        retained window, the next :meth:`query` answer, and every
        future answer match the per-tuple path.  This default is the
        universal fallback (one bound-method loop); algorithms with an
        O(batch)-amortized formulation override it with batch kernels
        (see :mod:`repro.kernels` and ``docs/performance.md``).
        """
        push = self.push
        for value in values:
            push(value)

    def step(self, value: Any) -> Any:
        """One slide: push then query (the evaluation loop's body)."""
        self.push(value)
        return self.query()

    def run(self, values: Iterable[Any]) -> List[Any]:
        """Feed an entire stream, returning the answer per slide."""
        return [self.step(value) for value in values]

    @abstractmethod
    def memory_words(self) -> int:
        """Logical space in machine words (Section 4.2 accounting)."""

    def resize(self, window: int) -> None:
        """Change the window size in place (paper Section 3.1).

        "All of the compared approaches ... are able to handle such
        cases by performing dynamic resize operations."  Shrinking
        drops the oldest retained values immediately; growing keeps
        everything retained and simply admits more history from now
        on.  Not every algorithm implements it (the paper only asserts
        the *capability*); the default raises.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement dynamic resize"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(operator={self.operator.name!r}, "
            f"window={self.window})"
        )


class MultiQueryAggregator(ABC):
    """Multi-range final aggregator over a shared stream.

    Every registered range is answered on every slide, as in the
    paper's max-multi-query experiments (Exp 2).  Answers are keyed by
    range.
    """

    def __init__(self, operator: AggregateOperator, ranges: Sequence[int]):
        self.operator = operator
        self.ranges = validate_ranges(ranges)
        self.window = self.ranges[0]

    @abstractmethod
    def step(self, value: Any) -> Dict[int, Any]:
        """One slide: insert ``value``, answer every range."""

    def step_many(self, values: Sequence[Any]) -> List[Dict[int, Any]]:
        """Run a batch of slides, returning every per-slide answer map.

        Byte-identical to calling :meth:`step` per value; overrides
        amortize the per-slide bookkeeping over the batch (bound hot
        callables, vectorized lifts) without changing any answer.
        """
        step = self.step
        return [step(value) for value in values]

    def run(self, values: Iterable[Any]) -> List[Dict[int, Any]]:
        """Feed an entire stream, returning per-slide answer maps."""
        return [self.step(value) for value in values]

    @abstractmethod
    def memory_words(self) -> int:
        """Logical space in machine words (Section 4.2 accounting)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(operator={self.operator.name!r}, "
            f"ranges={len(self.ranges)}, window={self.window})"
        )
