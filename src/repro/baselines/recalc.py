"""From-scratch re-evaluation: the differential-testing oracle.

Not part of the paper's comparison — it is the "re-evaluation of the
entire window after each update" that incremental techniques exist to
avoid (Section 1).  Every other aggregator in this library is tested
against it, because its correctness is self-evident: keep the raw
window, fold it on every query.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Sequence

from repro.baselines.base import (
    MultiQueryAggregator,
    SlidingAggregator,
    validate_window,
)
from repro.operators.base import AggregateOperator


class RecalcAggregator(SlidingAggregator):
    """Single-query oracle: a raw deque folded per query."""

    supports_multi_query = True

    def __init__(self, operator: AggregateOperator, window: int):
        super().__init__(operator, window)
        self._values: deque = deque(maxlen=window)

    def push(self, value: Any) -> None:
        self._values.append(self.operator.lift(value))

    def query(self) -> Any:
        return self.operator.lower(self.operator.fold_aggs(self._values))

    def resize(self, window: int) -> None:
        self.window = validate_window(window)
        self._values = deque(self._values, maxlen=window)

    def memory_words(self) -> int:
        return self.window


class RecalcMultiAggregator(MultiQueryAggregator):
    """Multi-query oracle: fold the last ``r`` values per range."""

    def __init__(self, operator: AggregateOperator, ranges: Sequence[int]):
        super().__init__(operator, ranges)
        self._values: deque = deque(maxlen=self.window)

    def step(self, value: Any) -> Dict[int, Any]:
        op = self.operator
        self._values.append(op.lift(value))
        snapshot = list(self._values)
        answers = {}
        for r in self.ranges:
            tail = snapshot[-r:] if r <= len(snapshot) else snapshot
            answers[r] = op.lower(op.fold_aggs(tail))
        return answers

    def memory_words(self) -> int:
        return self.window
