"""Naive final aggregation (paper Figure 1, "Panes technique").

Partials live in a pre-allocated circular array; every query answer is
produced "by simply iterating over them and constructing the answer"
(Section 2.2).  Per Table 1 this costs exactly ``n − 1`` aggregate
operations per slide for a single query and ``n²/2 − n/2`` in the
max-multi-query environment, with space ``n`` — the baseline every
incremental technique is measured against.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

from repro.baselines.base import (
    MultiQueryAggregator,
    SlidingAggregator,
    fold_seeded,
)
from repro.kernels import as_sequence, kernel_for
from repro.operators.base import AggregateOperator
from repro.structures.circular_buffer import CircularBuffer


class NaiveAggregator(SlidingAggregator):
    """Single-query Naive: ring buffer + full fold per slide."""

    supports_multi_query = True

    def __init__(self, operator: AggregateOperator, window: int):
        super().__init__(operator, window)
        self._kernel = kernel_for(operator)
        self._partials = CircularBuffer(window, fill=operator.identity)

    def push(self, value: Any) -> None:
        self._partials.push(self.operator.lift(value))

    def push_many(self, values: Sequence[Any]) -> None:
        """Bulk push: lift the batch once, write it with slice ops.

        Naive keeps no incremental state — answers are derived at
        :meth:`query` time — so bulk ingestion is exactly a batched
        lift plus the ring's slice write; answers are bit-identical to
        per-tuple pushes in every domain.
        """
        values = as_sequence(values)
        if len(values):
            self._partials.push_many(self._kernel.lift_many(values))

    def query(self) -> Any:
        # Fold only what has actually been written: identical answers to
        # folding the identity-padded full ring, but the operation count
        # matches the paper's n − 1 only once the window is warm, which
        # is also how the paper's accounting treats steady state.
        count = len(self._partials)
        folded = fold_seeded(self.operator, self._partials.last(count))
        return self.operator.lower(folded)

    def resize(self, window: int) -> None:
        """Re-allocate the ring, keeping the newest retained partials."""
        from repro.baselines.base import validate_window

        new_window = validate_window(window)
        retained = list(
            self._partials.last(min(len(self._partials), new_window))
        )
        fresh = CircularBuffer(new_window, fill=self.operator.identity)
        for value in retained:
            fresh.push(value)
        self._partials = fresh
        self.window = new_window

    def memory_words(self) -> int:
        return self._partials.memory_words()


class NaiveMultiAggregator(MultiQueryAggregator):
    """Multi-query Naive: one full fold per registered range.

    Ranges share the single ring (space stays ``n`` "despite the number
    of registered queries", Section 4.2) but each answer iterates its
    whole range, yielding the quadratic per-slide cost of Table 1.
    """

    def __init__(self, operator: AggregateOperator, ranges: Sequence[int]):
        super().__init__(operator, ranges)
        self._partials = CircularBuffer(self.window, fill=operator.identity)

    def step(self, value: Any) -> Dict[int, Any]:
        op = self.operator
        self._partials.push(op.lift(value))
        written = len(self._partials)
        answers = {}
        for r in self.ranges:
            count = min(r, written)
            folded = fold_seeded(op, self._partials.last(count))
            answers[r] = op.lower(folded)
        return answers

    def memory_words(self) -> int:
        return self._partials.memory_words()
