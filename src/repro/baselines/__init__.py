"""The compared final-aggregation algorithms (paper Section 2.2).

Every algorithm of the paper's evaluation — Naive, FlatFAT, B-Int,
FlatFIT, TwoStacks, DABA — plus the from-scratch Recalc oracle used by
the test suite.  SlickDeque itself lives in :mod:`repro.core`.
"""

from repro.baselines.base import (
    MultiQueryAggregator,
    SlidingAggregator,
    fold_seeded,
    validate_ranges,
    validate_window,
)
from repro.baselines.bint import BIntAggregator, BIntMultiAggregator
from repro.baselines.daba import DABAAggregator
from repro.baselines.flatfat import FlatFATAggregator, FlatFATMultiAggregator
from repro.baselines.flatfit import FlatFITAggregator, FlatFITMultiAggregator
from repro.baselines.naive import NaiveAggregator, NaiveMultiAggregator
from repro.baselines.panes_inv import (
    PanesInvAggregator,
    SubtractOnEvictAggregator,
)
from repro.baselines.recalc import RecalcAggregator, RecalcMultiAggregator
from repro.baselines.twostacks import TwoStacksAggregator

__all__ = [
    "SlidingAggregator",
    "MultiQueryAggregator",
    "fold_seeded",
    "validate_window",
    "validate_ranges",
    "RecalcAggregator",
    "RecalcMultiAggregator",
    "NaiveAggregator",
    "NaiveMultiAggregator",
    "PanesInvAggregator",
    "SubtractOnEvictAggregator",
    "FlatFATAggregator",
    "FlatFATMultiAggregator",
    "BIntAggregator",
    "BIntMultiAggregator",
    "FlatFITAggregator",
    "FlatFITMultiAggregator",
    "TwoStacksAggregator",
    "DABAAggregator",
]
