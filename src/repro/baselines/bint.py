"""B-Int — Base Intervals (paper Figure 5, [5]).

A multi-level structure of dyadic intervals: level 0 holds intervals of
one partial, level ℓ intervals of ``2^ℓ`` partials, the top level one
interval of the maximum range.  Levels are circular.  A look-up
"determines the minimum number of intervals needed to represent the
desired range, and aggregates them" via greedy dyadic decomposition.

Per Section 4.1, B-Int "has been shown to have the same asymptotic time
complexity as FlatFAT, with B-Int being slower by a constant factor":
updates recompute every containing interval from its two children (two
reads and one combine per level), and greedy decomposition of an
arbitrary range touches up to ``2·log n`` intervals where FlatFAT's
two-sided segment walk touches the optimal set.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.baselines.base import MultiQueryAggregator, SlidingAggregator
from repro.operators.base import Agg, AggregateOperator


def _next_power_of_two(n: int) -> int:
    return 1 << (n - 1).bit_length() if n > 1 else 1


class _BaseIntervals:
    """The dyadic interval levels shared by both query modes."""

    def __init__(self, operator: AggregateOperator, window: int):
        self.operator = operator
        self.window = window
        self.capacity = _next_power_of_two(window)
        identity = operator.identity
        self.levels: List[List[Agg]] = []
        size = self.capacity
        while size >= 1:
            self.levels.append([identity] * size)
            size //= 2
        self.written = 0

    @property
    def position(self) -> int:
        return (self.written - 1) % self.capacity

    def insert(self, agg: Agg) -> None:
        """Write the next base interval; rebuild every ancestor level."""
        combine = self.operator.combine
        position = self.written % self.capacity
        self.levels[0][position] = agg
        self.written += 1
        index = position
        for level in range(1, len(self.levels)):
            index >>= 1
            below = self.levels[level - 1]
            self.levels[level][index] = combine(
                below[2 * index], below[2 * index + 1]
            )

    def _segment(self, left: int, right: int) -> Agg:
        """Greedy dyadic cover of positions ``left..right``, in order."""
        op = self.operator
        result = op.identity
        position = left
        remaining = right - left + 1
        while remaining > 0:
            # Largest dyadic block starting at `position` that fits.
            alignment = position & -position if position else self.capacity
            size = min(alignment, self.capacity)
            while size > remaining:
                size >>= 1
            level = size.bit_length() - 1
            result = op.combine(
                result, self.levels[level][position >> level]
            )
            position += size
            remaining -= size
        return result

    def suffix_query(self, count: int) -> Agg:
        """Aggregate of the most recent ``count`` base intervals."""
        op = self.operator
        if count <= 0:
            return op.identity
        end = self.position
        start = (end - count + 1) % self.capacity
        if start <= end:
            return self._segment(start, end)
        older = self._segment(start, self.capacity - 1)
        newer = self._segment(0, end)
        return op.combine(older, newer)

    def memory_words(self) -> int:
        """All interval levels: ``2·2^⌈log n⌉ − 1`` words (§4.2)."""
        return sum(len(level) for level in self.levels)


class BIntAggregator(SlidingAggregator):
    """Single-query B-Int."""

    supports_multi_query = True

    def __init__(self, operator: AggregateOperator, window: int):
        super().__init__(operator, window)
        self._intervals = _BaseIntervals(operator, window)

    def push(self, value: Any) -> None:
        self._intervals.insert(self.operator.lift(value))

    def query(self) -> Any:
        count = min(self._intervals.written, self.window)
        return self.operator.lower(self._intervals.suffix_query(count))

    def memory_words(self) -> int:
        return self._intervals.memory_words()


class BIntMultiAggregator(MultiQueryAggregator):
    """Multi-query B-Int: one insert, one decomposition per range."""

    def __init__(self, operator: AggregateOperator, ranges: Sequence[int]):
        super().__init__(operator, ranges)
        self._intervals = _BaseIntervals(operator, self.window)

    def step(self, value: Any) -> Dict[int, Any]:
        op = self.operator
        self._intervals.insert(op.lift(value))
        written = self._intervals.written
        answers = {}
        for r in self.ranges:
            count = min(r, written, self.window)
            answers[r] = op.lower(self._intervals.suffix_query(count))
        return answers

    def memory_words(self) -> int:
        return self._intervals.memory_words()
