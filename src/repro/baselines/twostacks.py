"""TwoStacks (paper [28], Section 2.2).

"An old trick from functional programming to implement a queue with two
stacks, F (front) and B (back), where all insertions push a value, val,
and an aggregation, agg, of everything below it onto B, and evictions
pop from F.  When F is empty, the algorithm flips B onto F, making it a
calculation heavy step that introduces latency spikes ...  To produce
the final aggregation, the tops of both the F and B stacks are
aggregated."

Aggregate direction (important for non-commutative operators):

* ``B`` holds newer elements; ``agg`` of an entry covers everything
  below it in B *plus itself* — a prefix toward newer values, so
  ``B.top.agg`` is the aggregate of the whole back, oldest-first.
* ``F`` holds older elements with the **oldest on top**; ``agg`` covers
  the entry and everything below it in F (newer values), so
  ``F.top.agg`` is the aggregate of the whole front, oldest-first.
* The answer is ``F.top.agg ⊕ B.top.agg`` (Table 1: amortized 3,
  worst-case n per slide).

TwoStacks "does not currently allow multi query processing"
(Section 4.1), so only the single-query interface exists.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.baselines.base import SlidingAggregator
from repro.errors import WindowStateError
from repro.kernels import as_sequence
from repro.operators.base import Agg, AggregateOperator


class TwoStacksAggregator(SlidingAggregator):
    """Single-query TwoStacks with explicit flip."""

    supports_multi_query = False

    def __init__(self, operator: AggregateOperator, window: int):
        super().__init__(operator, window)
        #: Stack entries are (val, agg); list end is the stack top.
        self._front: List[Tuple[Agg, Agg]] = []
        self._back: List[Tuple[Agg, Agg]] = []
        #: Number of flips performed, exposed for the latency analysis.
        self.flips = 0

    def __len__(self) -> int:
        return len(self._front) + len(self._back)

    def push(self, value: Any) -> None:
        if len(self) == self.window:
            self.evict()
        self._insert(self.operator.lift(value))

    def _insert(self, agg: Agg) -> None:
        if self._back:
            running = self.operator.combine(self._back[-1][1], agg)
        else:
            running = agg
        self._back.append((agg, running))

    def push_many(self, values: Sequence[Any]) -> None:
        """Bulk push: batch-amortized evictions between flips.

        Between two flips, evictions only pop F and insertions only
        grow B, so a run of ``m = min(len(F), remaining)`` slides is
        one ``del F[-m:]`` plus ``m`` appends to B with the running
        aggregate threaded locally.  Flips still happen at exactly the
        per-tuple points (F empty at an eviction) with B holding
        exactly the per-tuple entries, so the operation sequence — and
        every aggregate, including the ``flips`` counter the latency
        analysis reads — is identical to ``k`` single pushes.
        """
        values = as_sequence(values)
        k = len(values)
        if not k:
            return
        window = self.window
        front = self._front
        index = 0
        size = len(front) + len(self._back)
        if size < window:
            index = min(window - size, k)
            self._insert_many(values[:index])
        while index < k:
            if not front:
                self._flip()
            m = min(len(front), k - index)
            del front[-m:]
            self._insert_many(values[index:index + m])
            index += m

    def _insert_many(self, values: Sequence[Any]) -> None:
        lift = self.operator.lift
        combine = self.operator.combine
        back = self._back
        append = back.append
        if back:
            running = back[-1][1]
            for value in values:
                agg = lift(value)
                running = combine(running, agg)
                append((agg, running))
            return
        running = None
        for value in values:
            agg = lift(value)
            running = agg if running is None else combine(running, agg)
            append((agg, running))

    def evict(self) -> None:
        """Pop the oldest element, flipping B onto F when F is empty."""
        if not self._front:
            self._flip()
        if not self._front:
            raise WindowStateError("evict from an empty TwoStacks window")
        self._front.pop()

    def _flip(self) -> None:
        """Move every B entry onto F, rebuilding suffix aggregates.

        Pops B newest-first, so the oldest value lands on F's top; each
        pushed entry's agg covers it and everything below (newer) —
        ``val ⊕ previous_top``.  This is the n-operation latency spike
        the paper attributes to TwoStacks.
        """
        if not self._back:
            return
        self.flips += 1
        combine = self.operator.combine
        front = self._front
        while self._back:
            val, _ = self._back.pop()
            if front:
                front.append((val, combine(val, front[-1][1])))
            else:
                front.append((val, val))

    def query(self) -> Any:
        op = self.operator
        if self._front and self._back:
            agg = op.combine(self._front[-1][1], self._back[-1][1])
        elif self._front:
            agg = self._front[-1][1]
        elif self._back:
            agg = self._back[-1][1]
        else:
            agg = op.identity
        return op.lower(agg)

    def memory_words(self) -> int:
        """Both stacks hold (val, agg) pairs; combined never exceed n.

        Section 4.2: "both stacks combined can never have more than n
        nodes total ... which makes its space complexity 2n".  The
        pre-allocated capacity is charged, matching the paper's
        steady-state figure.
        """
        return 2 * self.window
