"""Panes (Inv) / Subtract-on-Evict — the invertible precursor (§2.2).

"Panes (Inv) [19] (or Pairs for Invertible (Differential) Aggregate
Queries) was proposed to efficiently process invertible aggregates,
and it works by maintaining a running aggregate (e.g. running Sum),
and invoking the inverse operation (e.g. Subtract) on every expiring
tuple.  This algorithm (with minor differences) was also proposed as
R-Int [5] and Subtract-on-Evict [28].  In this paper we extend this
approach into SlickDeque (Inv)."

Single-query SlickDeque (Inv) *is* this algorithm; the class below is
a documented alias so experiments can reference the historical name,
plus the lineage check the paper implies: the two are operation-for-
operation identical in a single-query run (asserted in the tests).
The multi-query ``answers`` map is the part SlickDeque adds.
"""

from __future__ import annotations

from repro.core.slickdeque_inv import SlickDequeInv


class PanesInvAggregator(SlickDequeInv):
    """Running-aggregate + subtract-on-evict (Panes (Inv) / R-Int).

    Identical execution to single-query SlickDeque (Inv): one ``⊕``
    with the arriving value, one ``⊖`` with the expiring one, a ring
    of ``n`` retained values.  Registered under ``"panes_inv"`` for
    experiments that want the historical baseline name; it has no
    multi-query form (that extension is SlickDeque's contribution).
    """

    supports_multi_query = False


#: The DEBS'17 name for the same technique.
SubtractOnEvictAggregator = PanesInvAggregator
