"""DABA — De-Amortized Bankers Algorithm (paper [28], Section 2.2).

DABA "was proposed as an alternative to TwoStacks that reduces the
latency spikes while maintaining high throughput ... us[ing] a principle
of the Functional Okasaki Aggregator to de-amortize the TwoStacks
algorithm", with worst-case constant operations per slide (Table 1:
amortized 5, worst case 8).

This module re-derives that behaviour from the description rather than
transcribing the DEBS'17 reference code (see DESIGN.md, "Known,
intentional deviations").  The construction de-amortizes the TwoStacks
flip with **in-place aggregate rewriting**, at most two rewrites per
slide, so no slide ever costs more than a constant number of ⊕:

* The window is ``front ++ frozen ++ merging ++ back``, oldest first.
  ``front`` holds ``(val, suffix_agg)`` entries consumed head-first;
  ``back`` is a TwoStacks-style list of ``(val, prefix_agg)`` entries;
  ``frozen`` is a previous back whose prefix aggregates are being
  rewritten backward into suffix aggregates; ``merging`` exists only
  during warm-up (below).
* **Steady state**: whenever nothing is frozen and
  ``front_live ≤ len(back) + 1``, the back freezes (its total is the
  top prefix aggregate, 0 ⊕) and the backward sweep starts.  The
  trigger fires with ``len(back) ≤ front_live + 1``, so the sweep
  always completes before the front drains; the drained front is then
  replaced by the converted frozen region — an O(1) swap.
* **Warm-up**: before the window fills there are no evictions, so the
  front stays empty and the frozen region cannot be consumed.  To keep
  the next-front large enough, the growing back is *merged* into the
  frozen region whenever ``len(back) ≥ len(frozen)`` and
  ``3·len(back) ≤ window``: the back's aggregates are swept into
  suffix form and every frozen aggregate is rewritten to
  ``agg ⊕ back_total`` — all in place.  The ``3·s ≤ n`` guard
  guarantees the last merge completes before the window fills, and
  leaves ``len(frozen) ≥ (n−1)/3`` so the first steady-state freeze is
  also schedulable.  (Merging two same-sized regions is exactly the
  doubling discipline of the Okasaki banker's method.)
* A query combines at most four region totals (≤ 3 ⊕), an insert
  costs ≤ 1 ⊕, rewrite work ≤ 2 ⊕, a merge completion ≤ 1 ⊕ — ≤ 7
  aggregate operations per slide, every slide (the paper reports 8 for
  DABA), amortized ≈ 5 in steady state.  Space is exactly one
  ``(val, agg)`` pair per window element plus chunk bookkeeping — the
  paper's ``2n + 4k + 4n/k`` with ``k = √n`` (§4.2).

:attr:`DABAAggregator.forced_finishes` counts schedule violations
(only reachable through direct ``evict`` misuse, never through
``push``/``step``); tests pin it to zero across window sizes.

DABA "does not currently support multi query processing"
(Section 4.1), so only the single-query interface exists.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Tuple

from repro.baselines.base import SlidingAggregator
from repro.errors import WindowStateError
from repro.operators.base import Agg, AggregateOperator


class DABAAggregator(SlidingAggregator):
    """Single-query DABA: worst-case constant aggregate ops per slide."""

    supports_multi_query = False

    def __init__(self, operator: AggregateOperator, window: int):
        super().__init__(operator, window)
        #: Front: (val, suffix_agg); entry _head is the oldest live
        #: element and its agg covers the whole remaining front.
        self._front: List[Tuple[Agg, Agg]] = []
        self._head = 0
        #: Back: (val, prefix_agg); the top carries the region total.
        self._back: List[Tuple[Agg, Agg]] = []
        #: Frozen: an ex-back being rewritten into suffix form.
        self._frozen: Optional[List[Tuple[Agg, Agg]]] = None
        self._frozen_total: Agg = None
        self._sweep = -1  # next frozen index to rewrite; <0 = converted
        #: Merging (warm-up only): an ex-back being folded into frozen.
        self._merging: Optional[List[Tuple[Agg, Agg]]] = None
        self._merging_total: Agg = None
        self._merge_p1 = -1  # merging suffix sweep cursor
        self._merge_p2 = -1  # frozen ⊕-total rewrite cursor
        #: Diagnostics: sweeps completed under pressure (expected 0).
        self.forced_finishes = 0
        #: Diagnostics: freezes triggered.
        self.rebuilds = 0

    # -- region sizes --------------------------------------------------------

    @property
    def _front_live(self) -> int:
        return len(self._front) - self._head

    def __len__(self) -> int:
        total = self._front_live + len(self._back)
        if self._frozen is not None:
            total += len(self._frozen)
        if self._merging is not None:
            total += len(self._merging)
        return total

    # -- public protocol -----------------------------------------------------

    def push(self, value: Any) -> None:
        if len(self) == self.window:
            self.evict()
        self._insert(self.operator.lift(value))
        self._maybe_freeze()
        self._maybe_merge()
        self._work(2)

    def query(self) -> Any:
        op = self.operator
        agg = None
        if self._front_live:
            agg = self._front[self._head][1]
        if self._frozen:
            agg = (
                self._frozen_total
                if agg is None
                else op.combine(agg, self._frozen_total)
            )
        if self._merging:
            agg = (
                self._merging_total
                if agg is None
                else op.combine(agg, self._merging_total)
            )
        if self._back:
            back_total = self._back[-1][1]
            agg = back_total if agg is None else op.combine(agg, back_total)
        return op.lower(op.identity if agg is None else agg)

    def evict(self) -> None:
        """Drop the oldest element in O(1) aggregate operations.

        Falls back to forced sweep completion only for callers that
        evict outside the ``push`` schedule (counted in
        :attr:`forced_finishes`); ``push`` itself never needs it.
        """
        if self._front_live:
            self._head += 1
            return
        if self._frozen is not None:
            if self._merging is not None or self._sweep >= 0:
                self.forced_finishes += 1
                self._work(None)
            self._swap()
        elif self._back:
            self.forced_finishes += 1
            self._maybe_freeze(force=True)
            self._work(None)
            self._swap()
        if not self._front_live:
            raise WindowStateError("evict from an empty DABA window")
        self._head += 1

    # -- internals -----------------------------------------------------------

    def _insert(self, agg: Agg) -> None:
        if self._back:
            running = self.operator.combine(self._back[-1][1], agg)
        else:
            running = agg
        self._back.append((agg, running))

    def _maybe_freeze(self, force: bool = False) -> None:
        """Steady state: turn the back into the converting frozen region."""
        if self._frozen is not None or not self._back:
            return
        if not force and self._front_live > len(self._back) + 1:
            return
        self.rebuilds += 1
        self._frozen = self._back
        self._frozen_total = self._back[-1][1]
        self._back = []
        last = len(self._frozen) - 1
        value = self._frozen[last][0]
        self._frozen[last] = (value, value)  # suffix of the newest = itself
        self._sweep = last - 1

    def _maybe_merge(self) -> None:
        """Warm-up: fold the grown back into the converted frozen region.

        Requires an empty front (no eviction pressure), a fully
        converted frozen region, and the ``3·len(back) ≤ window``
        completion guard derived in the module docstring.
        """
        if (
            self._front_live != 0
            or self._frozen is None
            or self._sweep >= 0
            or self._merging is not None
            or not self._back
            or len(self._back) < len(self._frozen)
            or 3 * len(self._back) > self.window
        ):
            return
        self._merging = self._back
        self._merging_total = self._back[-1][1]
        self._back = []
        last = len(self._merging) - 1
        value = self._merging[last][0]
        self._merging[last] = (value, value)
        self._merge_p1 = last - 1
        self._merge_p2 = len(self._frozen) - 1

    def _work(self, budget: Optional[int]) -> None:
        """Spend up to ``budget`` aggregate rewrites (all when ``None``)."""
        combine = self.operator.combine
        remaining = math.inf if budget is None else budget
        # Priority 1: the frozen region's own backward suffix sweep.
        frozen = self._frozen
        if frozen is not None and self._sweep >= 0:
            index = self._sweep
            while remaining > 0 and index >= 0:
                value = frozen[index][0]
                frozen[index] = (
                    value, combine(value, frozen[index + 1][1])
                )
                index -= 1
                remaining -= 1
            self._sweep = index
        # Priority 2: merge phase A — extend frozen suffixes over the
        # merging region (order-independent rewrites).
        merging = self._merging
        if merging is not None and remaining > 0 and self._merge_p2 >= 0:
            assert frozen is not None
            index = self._merge_p2
            total = self._merging_total
            while remaining > 0 and index >= 0:
                value, agg = frozen[index]
                frozen[index] = (value, combine(agg, total))
                index -= 1
                remaining -= 1
            self._merge_p2 = index
        # Priority 3: merge phase B — the merging region's own suffix
        # sweep, then splice it onto frozen (one ⊕ for the new total).
        if merging is not None and remaining > 0 and self._merge_p2 < 0:
            index = self._merge_p1
            while remaining > 0 and index >= 0:
                value = merging[index][0]
                merging[index] = (
                    value, combine(value, merging[index + 1][1])
                )
                index -= 1
                remaining -= 1
            self._merge_p1 = index
            if index < 0 and remaining > 0:
                assert frozen is not None
                frozen.extend(merging)
                self._frozen_total = combine(
                    self._frozen_total, self._merging_total
                )
                self._merging = None
                self._merging_total = None
                self._merge_p1 = -1
                self._merge_p2 = -1

    def _swap(self) -> None:
        """Promote the converted frozen region to be the new front."""
        assert self._frozen is not None and self._sweep < 0
        assert self._merging is None
        self._front = self._frozen
        self._head = 0
        self._frozen = None
        self._frozen_total = None

    def memory_words(self) -> int:
        """Logical footprint, chunked-queue accounting (Section 4.2).

        One (val, agg) pair per live element — every conversion is in
        place, nothing is double-buffered — plus four words per
        ``√n``-slot chunk: the paper's ``2n + 4k + 4n/k`` shape.
        """
        live = len(self)
        chunk = max(1, math.isqrt(self.window))
        chunks = -(-max(live, 1) // chunk) + 2  # two part-empty end chunks
        return 2 * live + 4 * chunks
