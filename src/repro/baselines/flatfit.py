"""FlatFIT — Flat and Fast Index Traverser (paper [26]).

FlatFIT "dynamically stor[es] the intermediate results and their
corresponding pointers, which indicate how far ahead FlatFIT can skip
in its calculation.  It uses two circular arrays, Pointers and
PartialInts, interconnected with their indices and a stack, Positions,
for keeping indices that are currently processed" (Section 2.2).

Implementation notes
--------------------
* ``vals[slot]`` holds the aggregate of the *span* starting at that
  slot's stream position and ending at ``ptrs[slot]``.
* Pointers are stored as **absolute stream positions** (monotonically
  increasing integers) instead of wrapped indices.  This removes all
  modular edge cases: a span is "reaching the head" exactly when its
  pointer equals the current position.  Slot layout is unchanged
  (position ``t`` lives in slot ``(t − 1) mod n``).
* Answering traverses the span chain from the window start, pushing
  visited slots onto the Positions stack, then accumulates suffix
  aggregates backwards, rewriting each visited slot to span all the way
  to the head (path compression).  Each answer costs ``chain − 1``
  combines, which produces the amortized-3 / worst-case-n profile of
  Table 1, including the periodic *window reset* latency spikes the
  paper attributes to FlatFIT.
* In the max-multi-query environment, ranges are answered in descending
  order; compression from the largest range collapses every later chain
  to a single span, matching the paper's "one or zero operations each".
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.baselines.base import MultiQueryAggregator, SlidingAggregator
from repro.operators.base import Agg, AggregateOperator


class _IndexTraverser:
    """Shared core: the two circular arrays plus the Positions stack."""

    def __init__(self, operator: AggregateOperator, window: int):
        self.operator = operator
        self.window = window
        identity = operator.identity
        self.vals: List[Agg] = [identity] * window
        # Virtual pre-writes: slot i was "written" at non-positive
        # position i + 1 − n, an identity-valued singleton span.  This
        # makes warm-up traversals structurally identical to steady
        # state, mirroring the initVal-filled arrays of Algorithm 1.
        self.ptrs: List[int] = [i + 1 - window for i in range(window)]
        self.current = 0  # absolute position of the newest value
        self.stack_high_water = 0

    def insert(self, agg: Agg) -> None:
        self.current += 1
        slot = (self.current - 1) % self.window
        self.vals[slot] = agg
        self.ptrs[slot] = self.current

    def answer(self, count: int) -> Agg:
        """Aggregate of the last ``count`` positions, with compression."""
        op = self.operator
        if count <= 0:
            return op.identity
        start = self.current - count + 1
        window = self.window
        vals = self.vals
        ptrs = self.ptrs

        # Phase 1: walk the span chain, stacking visited slots.
        positions: List[int] = []
        p = start
        while True:
            slot = (p - 1) % window
            positions.append(slot)
            end = ptrs[slot]
            if end >= self.current:
                break
            p = end + 1
        if len(positions) > self.stack_high_water:
            self.stack_high_water = len(positions)

        # Phase 2: accumulate suffix aggregates back-to-front and
        # path-compress every visited span to reach the head.
        acc = vals[positions[-1]]
        for slot in reversed(positions[:-1]):
            acc = op.combine(vals[slot], acc)
            vals[slot] = acc
            ptrs[slot] = self.current
        return acc

    def memory_words(self, queries: int = 1) -> int:
        """The §4.2 FlatFIT space bound: ``2n`` plus the stack.

        "FlatFIT needs two pre-allocated arrays of size n ... and a
        stack that can grow up to 2 values total in a single query
        environment and in a max-multi-query environment ...  in a
        general case ... the stack might have to store up to n/2 values
        (case with two queries) at most.  However, each additional
        query ... cuts the maximum stack memory consumption in half."

        The traversal chain this implementation materialises is
        transient scratch (a real FlatFIT reuses two cursor variables),
        so the paper's analytic stack bound is charged instead; the
        observed chain high-water stays available in
        :attr:`stack_high_water` for diagnostics.
        """
        if queries <= 1 or queries >= self.window:
            stack_bound = 2
        else:
            stack_bound = max(2, self.window >> (queries - 1))
        return 2 * self.window + stack_bound


class FlatFITAggregator(SlidingAggregator):
    """Single-query FlatFIT over the whole window."""

    supports_multi_query = True

    def __init__(self, operator: AggregateOperator, window: int):
        super().__init__(operator, window)
        self._core = _IndexTraverser(operator, window)

    def push(self, value: Any) -> None:
        self._core.insert(self.operator.lift(value))

    def query(self) -> Any:
        count = min(self._core.current, self.window)
        return self.operator.lower(self._core.answer(count))

    def memory_words(self) -> int:
        return self._core.memory_words()


class FlatFITMultiAggregator(MultiQueryAggregator):
    """Multi-query FlatFIT: descending ranges share one compression."""

    def __init__(self, operator: AggregateOperator, ranges: Sequence[int]):
        super().__init__(operator, ranges)
        self._core = _IndexTraverser(operator, self.window)

    def step(self, value: Any) -> Dict[int, Any]:
        op = self.operator
        self._core.insert(op.lift(value))
        answers = {}
        for r in self.ranges:  # validate_ranges sorted these descending
            count = min(r, self._core.current)
            answers[r] = op.lower(self._core.answer(count))
        return answers

    def memory_words(self) -> int:
        return self._core.memory_words(queries=len(self.ranges))
