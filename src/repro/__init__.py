"""repro — a reproduction of SlickDeque (Shein et al., EDBT 2018).

High-throughput, low-latency incremental sliding-window aggregation:
the SlickDeque algorithms (invertible and non-invertible processing),
every baseline the paper compares against (Naive, FlatFAT, B-Int,
FlatFIT, TwoStacks, DABA), the window/partial-aggregation substrate
(Panes, Pairs, Cutty, shared multi-query plans), a small stream engine,
synthetic DEBS12-style workloads, and the harness that regenerates each
figure and table of the paper's evaluation.

Quickstart::

    from repro import Query, SharedSlickDeque, get_operator

    acqs = [Query(range_size=6, slide=2), Query(range_size=8, slide=4)]
    engine = SharedSlickDeque(acqs, get_operator("max"))
    for position, query, answer in engine.run(stream_of_numbers):
        print(position, query.name, answer)

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.baselines import (
    BIntAggregator,
    DABAAggregator,
    FlatFATAggregator,
    FlatFITAggregator,
    MultiQueryAggregator,
    NaiveAggregator,
    RecalcAggregator,
    SlidingAggregator,
    TwoStacksAggregator,
)
from repro.core import (
    SharedSlickDeque,
    SlickDequeInv,
    SlickDequeInvMulti,
    SlickDequeNonInv,
    SlickDequeNonInvMulti,
    make_slickdeque,
    make_slickdeque_multi,
)
from repro.errors import (
    ClientTimeoutError,
    InvalidOperatorError,
    InvalidQueryError,
    LateRecordError,
    OutOfOrderError,
    PlanError,
    PoisonRecordError,
    ProtocolError,
    ReproError,
    ServerOverloadedError,
    ShardFailedError,
    TelemetryError,
    UnknownOperatorError,
    WindowStateError,
)
from repro.operators import (
    AggregateOperator,
    CountingOperator,
    InvertibleOperator,
    available_operators,
    get_operator,
)
from repro.registry import available_algorithms, get_algorithm
from repro.net import (
    AggregationClient,
    AggregationServer,
    AsyncAggregationClient,
    ServerThread,
)
from repro.service import (
    AggregationService,
    FaultInjector,
    ServiceGateway,
    ServiceResult,
)
from repro.stream.sink import DeadLetter, DeadLetterSink
from repro.telemetry import (
    MetricsRegistry,
    Telemetry,
    Tracer,
    mint_trace_id,
)
from repro.windows import (
    AcqSpec,
    CompatibleSharedEngine,
    Query,
    TimeQuery,
    TimeWindowEngine,
    build_shared_plan,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # operators
    "AggregateOperator",
    "InvertibleOperator",
    "CountingOperator",
    "get_operator",
    "available_operators",
    # queries and plans
    "Query",
    "build_shared_plan",
    "TimeQuery",
    "TimeWindowEngine",
    "AcqSpec",
    "CompatibleSharedEngine",
    # core
    "SlickDequeInv",
    "SlickDequeInvMulti",
    "SlickDequeNonInv",
    "SlickDequeNonInvMulti",
    "make_slickdeque",
    "make_slickdeque_multi",
    "SharedSlickDeque",
    # baselines
    "SlidingAggregator",
    "MultiQueryAggregator",
    "RecalcAggregator",
    "NaiveAggregator",
    "FlatFATAggregator",
    "BIntAggregator",
    "FlatFITAggregator",
    "TwoStacksAggregator",
    "DABAAggregator",
    # registry
    "get_algorithm",
    "available_algorithms",
    # sharded service
    "AggregationService",
    "ServiceGateway",
    "ServiceResult",
    "FaultInjector",
    "DeadLetter",
    "DeadLetterSink",
    # network serving layer
    "AggregationServer",
    "ServerThread",
    "AggregationClient",
    "AsyncAggregationClient",
    # telemetry
    "MetricsRegistry",
    "Telemetry",
    "Tracer",
    "mint_trace_id",
    # errors
    "ReproError",
    "InvalidQueryError",
    "InvalidOperatorError",
    "WindowStateError",
    "OutOfOrderError",
    "LateRecordError",
    "PlanError",
    "UnknownOperatorError",
    "PoisonRecordError",
    "ShardFailedError",
    "ProtocolError",
    "ServerOverloadedError",
    "ClientTimeoutError",
    "TelemetryError",
]
