"""Thread-safe submit/poll seam over :class:`AggregationService`.

:class:`AggregationService` is single-threaded by design: its router,
merger, and transport bookkeeping are plain Python state.  The network
serving layer, however, drives the service from executor threads of an
asyncio event loop (service calls can block — ``block`` backpressure
waits for shard-queue capacity — so they must not run on the loop
itself).  :class:`ServiceGateway` is the seam between the two worlds:
every entry point takes one re-entrant lock, so any number of threads
(or one event loop with a thread-pool executor) can share a service
without interleaving its internals mid-operation.

The gateway adds no policy of its own — admission control, shedding,
and retries live in :mod:`repro.net.server` — but it does keep the
cheap counters a STATS reply needs (records/batches submitted through
it, poison-quarantine count) so the server can report without closing
the service.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ServiceError
from repro.service.service import AggregationService, ServiceResult


class ServiceGateway:
    """Serialise concurrent access to one :class:`AggregationService`.

    Args:
        service: The wrapped (open) service.  The gateway owns its
            lifecycle from here on: close it through
            :meth:`close`/:meth:`abort`, not directly.
    """

    def __init__(self, service: AggregationService):
        self._service = service
        self._lock = threading.RLock()
        self._closed = False
        self._result: Optional[ServiceResult] = None
        self._records_submitted = 0
        self._batches_submitted = 0

    # -- ingestion --------------------------------------------------

    def submit(
        self, key: Any, value: Any, trace_id: Optional[int] = None
    ) -> int:
        """Ingest one keyed record; returns 1 (records accepted)."""
        return self.submit_many([(key, value)], trace_id)

    def submit_many(
        self,
        records: Iterable[Tuple[Any, Any]],
        trace_id: Optional[int] = None,
    ) -> int:
        """Ingest ``(key, value)`` pairs atomically w.r.t. other callers.

        Returns the number of records handed to the service.  Blocks
        while the service's own backpressure blocks; callers that must
        not stall (event loops) should invoke this from an executor
        thread.  ``trace_id`` attributes the whole batch to one
        telemetry trace.
        """
        batch = list(records)
        with self._lock:
            self._require_open()
            self._service.submit_many(batch, trace_id)
            self._records_submitted += len(batch)
            self._batches_submitted += 1
        return len(batch)

    def submit_event(
        self,
        key: Any,
        value: Any,
        timestamp: float,
        trace_id: Optional[int] = None,
    ) -> int:
        """Ingest one event-timestamped record (``"time"`` mode)."""
        return self.submit_events([(key, timestamp, value)], trace_id)

    def submit_events(
        self,
        records: Iterable[Tuple[Any, float, Any]],
        trace_id: Optional[int] = None,
    ) -> int:
        """Ingest ``(key, timestamp, value)`` triples atomically.

        Returns the number of records handed to the service.  Raises
        :class:`~repro.errors.LateRecordError` under the service's
        ``"raise"`` late policy; under ``"drop"``/``"side_output"``
        late records are still counted as submitted here (the service
        accounts for them in its late-record counters).
        """
        batch = list(records)
        with self._lock:
            self._require_open()
            self._service.submit_events(batch, trace_id)
            self._records_submitted += len(batch)
            self._batches_submitted += 1
        return len(batch)

    def submit_column(
        self,
        key: Any,
        values: Iterable[Any],
        trace_id: Optional[int] = None,
    ) -> int:
        """Ingest a column of values for one key (bulk fast path).

        Returns the number of records handed to the service.  The
        column rides the router's single-lookup path end to end, so a
        ``SUBMIT_COLUMNS`` wire request never pays per-record routing.
        """
        column = list(values)
        if not column:
            return 0
        with self._lock:
            self._require_open()
            self._service.submit_column(key, column, trace_id)
            self._records_submitted += len(column)
            self._batches_submitted += 1
        return len(column)

    # -- answers ----------------------------------------------------

    def poll(self) -> List[Any]:
        """Answers released since the last poll (any caller's poll)."""
        with self._lock:
            self._require_open()
            return self._service.poll()

    def poll_traced(self) -> List[Tuple[Any, Optional[int]]]:
        """Released answers paired with their submission trace ids."""
        with self._lock:
            self._require_open()
            return self._service.poll_traced()

    # -- telemetry --------------------------------------------------

    def attach_telemetry(self, telemetry: Any) -> None:
        """Point the wrapped service at a telemetry hub (see service)."""
        with self._lock:
            self._service.attach_telemetry(telemetry)

    # -- introspection ----------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Cheap live-stats view (no flush, no worker shutdown).

        Keys: ``records_submitted`` / ``batches_submitted`` (through
        this gateway), ``mode``, ``num_shards``, ``dead_letters``
        (poison-quarantine count so far), ``failed_shards``,
        ``transport`` (live data-plane counters — plane name, frame
        mix, encode/ring-wait/decode seconds), ``event_time`` (the
        watermark/lateness snapshot in ``"time"`` mode, else ``None``),
        and ``closed``.
        """
        with self._lock:
            service = self._service
            return {
                "records_submitted": self._records_submitted,
                "batches_submitted": self._batches_submitted,
                "mode": service.mode,
                "num_shards": service.num_shards,
                "dead_letters": len(service.dead_letters),
                "failed_shards": sorted(service.failed_shards()),
                "transport": service.transport_stats(),
                "event_time": service.event_time_stats(),
                "closed": self._closed,
            }

    @property
    def closed(self) -> bool:
        """Whether the underlying service has been closed or aborted."""
        with self._lock:
            return self._closed

    # -- shutdown ---------------------------------------------------

    def close(self, timeout: float = 60.0) -> ServiceResult:
        """Flush and close the service; idempotent.

        The first call drains the service and caches its
        :class:`~repro.service.service.ServiceResult`; later calls
        return the same result, so a DRAIN race between two
        connections cannot double-close the service.
        """
        with self._lock:
            if self._result is not None:
                return self._result
            if self._closed:
                raise ServiceError(
                    "service was aborted; no result to return"
                )
            self._closed = True
            self._result = self._service.close(timeout)
            return self._result

    def abort(self) -> None:
        """Hard-stop the service, abandoning in-flight work."""
        with self._lock:
            if self._result is not None or self._closed:
                self._closed = True
                return
            self._closed = True
            self._service.abort()

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceError(
                "gateway is closed (service drained or aborted)"
            )
