"""Worker lifecycle: spawning, backpressure, failure detection, recovery.

The supervisor owns one worker process per shard, connected by a
bounded inbound queue (batches) and an unbounded outbound queue
(outputs).  Its responsibilities:

* **Backpressure** — a full inbound queue triggers the configured
  policy: ``block`` (lossless, waits for capacity), ``drop`` (sheds the
  batch's records, ships the empty frame so watermarks and sequence
  numbers stay intact), or ``sample`` (ships a deterministically
  thinned batch).  Dropped records are counted exactly, per shard.
* **At-least-once delivery with idempotent effects** — every shipped
  batch is retained until *two* worker checkpoint generations cover it;
  shard outputs double as acknowledgements.  What was actually shipped
  (post-shedding) is what is retained, so a replay reproduces
  byte-identical outputs.
* **Recovery** — a worker that exits without being asked to is
  respawned from its last checkpoint (or from scratch), its retained
  batches are re-enqueued in order, and the merge layer's idempotency
  absorbs any duplicate outputs.  Checkpoints are CRC32-verified before
  being trusted: a corrupt current generation falls back to the
  previous one (retention keeps exactly enough batches to replay from
  there); when both generations are corrupt the shard is failed rather
  than silently restarted with missing history.
* **Stall detection** — workers heartbeat while idle and before each
  batch.  A shard with outstanding work that has been silent longer
  than ``stall_timeout`` is wedged (as opposed to slow — slow shards
  keep heartbeating between batches): its process is killed and
  recovered like a crash.
* **Restart budget** — each recovery consumes one unit of
  ``max_restarts`` and is preceded by an exponential backoff.  A shard
  that exhausts the budget becomes **failed**: its worker is torn
  down for good, records routed to it are shed to the dead-letter
  queue, and the failure is reported upward (the service marks the
  shard's keys degraded) instead of being retried forever.

Fault injection threads through the optional ``injector``
(:class:`~repro.service.chaos.FaultInjector`): kills after chosen
batches, kills at spawn, checkpoint bit-flips, and queue-put delays
all fire from the hooks here.

:class:`InlineTransport` is the process-free twin used by fast
deterministic tests: same interface, shards run in the caller's
process.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ServiceError, ShardFailedError
from repro.metrics.stats import Reservoir
from repro.service.partition import (
    BACKPRESSURE_POLICIES,
    Batch,
    drop_records,
    thin_batch,
)
from repro.service.shard import (
    STOP,
    ShardConfig,
    ShardHeartbeat,
    ShardOutput,
    ShardState,
    ShardStopped,
    shard_main,
)
from repro.stream.checkpoint import CheckpointError, verify
from repro.stream.sink import DeadLetter

#: Seconds between liveness checks while waiting on a full queue.
_PUT_TIMEOUT = 0.05

#: Retained batch-latency samples per shard (reservoir capacity).
_LATENCY_SAMPLES = 1024

#: Upper bound on one exponential-backoff sleep before a respawn.
_BACKOFF_CAP = 2.0


def _context():
    """The multiprocessing context: ``fork`` when available.

    Fork keeps worker startup cheap and lets non-picklable operators
    run (checkpointing still requires picklability); platforms without
    it (Windows) fall back to the default start method.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class WorkerHandle:
    """Bookkeeping for one shard worker."""

    def __init__(self, config: ShardConfig):
        self.config = config
        self.process: Optional[Any] = None
        self.in_queue: Optional[Any] = None
        self.out_queue: Optional[Any] = None
        #: Batches shipped but not yet covered by two checkpoint
        #: generations (the fallback generation must stay replayable).
        self.retained: List[Batch] = []
        self.snapshot: Optional[bytes] = None
        self.snapshot_seq = 0
        #: Previous checkpoint generation (last known good fallback).
        self.prev_snapshot: Optional[bytes] = None
        self.prev_snapshot_seq = 0
        self.acked_seq = 0
        #: Highest batch sequence number shipped toward the worker.
        self.shipped_seq = 0
        self.stop_sent = False
        self.stopped = False
        #: The shard exhausted its restart budget (terminal).
        self.failed = False
        #: Human-readable reason the shard failed, when it did.
        self.failure_reason = ""
        #: Monotonic time of the last message (output/heartbeat) seen.
        self.last_message = time.monotonic()
        #: Ship timestamps per in-flight sequence number.
        self.enqueue_times: Dict[int, float] = {}
        # Stats accumulators (fresh acknowledgements only).
        self.records = 0
        self.batches = 0
        self.busy_seconds = 0.0
        self.checkpoints = 0
        self.restores = 0
        self.dropped = 0
        self.stalls = 0
        self.corrupt_checkpoints = 0
        #: Bounded uniform sample of ship-to-ack latencies; seeded per
        #: shard so runs are reproducible.
        self.latencies = Reservoir(
            _LATENCY_SAMPLES, seed=config.shard_id
        )


class Supervisor:
    """Process transport: one worker per shard, with fault recovery.

    Args:
        configs: One :class:`ShardConfig` per shard, index-aligned.
        queue_capacity: Bound of each shard's inbound queue, in
            batches; this is where backpressure originates.
        backpressure: ``"block"``, ``"drop"`` or ``"sample"``.
        injector: Optional fault injector (tests only); its hooks fire
            at spawn, ship, and checkpoint-absorb time.
        max_restarts: Recoveries allowed per shard before it is
            declared failed.  ``0`` fails a shard on its first crash.
        restart_backoff: Base of the exponential pre-respawn sleep
            (``restart_backoff * 2**(restores-1)``, capped); ``0``
            respawns immediately.
        stall_timeout: Seconds of worker silence (with work
            outstanding) before the worker is declared wedged and
            recovered; ``0`` disables stall detection.
        on_shard_failed: Callback ``(shard_id, reason)`` invoked once
            when a shard exhausts its budget (or loses both checkpoint
            generations).
    """

    def __init__(
        self,
        configs: List[ShardConfig],
        queue_capacity: int = 8,
        backpressure: str = "block",
        injector: Optional[Any] = None,
        max_restarts: int = 5,
        restart_backoff: float = 0.05,
        stall_timeout: float = 10.0,
        on_shard_failed: Optional[Callable[[int, str], None]] = None,
    ):
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ServiceError(
                f"unknown backpressure policy {backpressure!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        if queue_capacity < 1:
            raise ServiceError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        if max_restarts < 0:
            raise ServiceError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        self._ctx = _context()
        self._queue_capacity = queue_capacity
        self._backpressure = backpressure
        self._injector = injector
        self._max_restarts = max_restarts
        self._restart_backoff = restart_backoff
        self._stall_timeout = stall_timeout
        self._on_shard_failed = on_shard_failed
        self._pending_outputs: List[ShardOutput] = []
        self._pending_letters: List[DeadLetter] = []
        self.handles = [WorkerHandle(config) for config in configs]
        for handle in self.handles:
            self._spawn(handle, initial_snapshot=None, replay=())

    # -- spawning and recovery -------------------------------------

    def _spawn(self, handle, initial_snapshot, replay) -> None:
        config = handle.config
        if self._injector is not None:
            config = self._injector.worker_config(config)
        handle.in_queue = self._ctx.Queue(maxsize=self._queue_capacity)
        handle.out_queue = self._ctx.Queue()
        handle.process = self._ctx.Process(
            target=shard_main,
            args=(
                config,
                handle.in_queue,
                handle.out_queue,
                initial_snapshot,
            ),
            daemon=True,
            name=f"repro-shard-{handle.config.shard_id}",
        )
        handle.process.start()
        handle.last_message = time.monotonic()
        if self._injector is not None:
            self._injector.on_spawned(
                handle.process, handle.config.shard_id
            )
        for batch in replay:
            if handle.failed:  # budget exhausted mid-replay
                return
            self._put(handle, batch)
        if handle.stop_sent and not handle.failed:
            self._put(handle, STOP)

    def _recover(self, handle: WorkerHandle) -> None:
        """Respawn a dead worker from its checkpoint and replay.

        Consumes one unit of the restart budget; exhausting it (or
        losing both checkpoint generations to corruption) fails the
        shard instead of respawning.
        """
        self._drain_handle(handle)  # salvage outputs already produced
        self._discard_queues(handle)
        if handle.restores >= self._max_restarts:
            self._fail(
                handle,
                f"restart budget of {self._max_restarts} exhausted",
            )
            return
        handle.restores += 1
        if self._restart_backoff:
            time.sleep(
                min(
                    self._restart_backoff * 2 ** (handle.restores - 1),
                    _BACKOFF_CAP,
                )
            )
        handle.enqueue_times.clear()
        initial_snapshot, complete = self._select_snapshot(handle)
        if not complete:
            self._fail(
                handle,
                "both checkpoint generations are corrupt; the batches "
                "needed to rebuild the shard state are gone",
            )
            return
        self._spawn(
            handle,
            initial_snapshot=initial_snapshot,
            replay=list(handle.retained),
        )

    def _select_snapshot(self, handle: WorkerHandle):
        """The newest trustworthy checkpoint generation for recovery.

        Returns ``(snapshot_bytes_or_None, complete)`` where
        ``complete`` says whether a fresh/fallback start plus the
        retained batches reconstructs the full shard history.  The
        current generation is CRC-verified first; a corrupt one falls
        back to the previous generation (retention keeps every batch
        after it, so the replay is complete).
        """
        if handle.snapshot is None:
            return None, True  # never checkpointed: replay covers all
        try:
            verify(handle.snapshot)
            return handle.snapshot, True
        except CheckpointError:
            handle.corrupt_checkpoints += 1
        if handle.prev_snapshot is None:
            # The only generation was corrupt, but it was the *first*
            # checkpoint: retention still reaches back to genesis.
            return None, handle.prev_snapshot_seq == 0
        try:
            verify(handle.prev_snapshot)
            return handle.prev_snapshot, True
        except CheckpointError:
            handle.corrupt_checkpoints += 1
        return None, False

    def _fail(self, handle: WorkerHandle, reason: str) -> None:
        """Give up on a shard: tear it down and shed its backlog."""
        if handle.failed:
            return
        handle.failed = True
        handle.stopped = True
        handle.failure_reason = reason
        process = handle.process
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=5.0)
        self._discard_queues(handle)
        error = ShardFailedError(
            f"shard {handle.config.shard_id} failed: {reason}"
        )
        # Un-acknowledged records will never be processed: quarantine
        # them so accounting stays exact and callers can inspect them.
        for batch in handle.retained:
            if batch.seq <= handle.acked_seq:
                continue
            self._shed_batch(handle, batch, error)
        handle.retained = []
        handle.enqueue_times.clear()
        if self._on_shard_failed is not None:
            self._on_shard_failed(handle.config.shard_id, reason)

    def _shed_batch(
        self, handle: WorkerHandle, batch: Batch, error: ShardFailedError
    ) -> None:
        reason = repr(error)
        self._pending_letters.extend(
            DeadLetter(
                key=key,
                value=value,
                position=position,
                shard_id=handle.config.shard_id,
                error=reason,
            )
            for position, key, value in zip(
                batch.positions, batch.keys, batch.values
            )
        )

    def _discard_queues(self, handle: WorkerHandle) -> None:
        for q in (handle.in_queue, handle.out_queue):
            if q is not None:
                q.close()
                q.cancel_join_thread()
        handle.in_queue = None
        handle.out_queue = None

    def _check(self, handle: WorkerHandle) -> None:
        """Recover ``handle`` if its process died or wedged."""
        process = handle.process
        if handle.stopped or process is None:
            return
        if not process.is_alive():
            if handle.stop_sent and process.exitcode == 0:
                # Clean exit; ShardStopped may still be queued.
                return
            self._recover(handle)
            return
        if self._stall_timeout and self._expecting_progress(handle):
            silent_for = time.monotonic() - handle.last_message
            if silent_for > self._stall_timeout:
                # Alive but silent with work outstanding: wedged.  A
                # slow shard would have heartbeat within the timeout.
                handle.stalls += 1
                if self._injector is not None:
                    self._injector.on_stall_killed(
                        handle.config.shard_id
                    )
                process.kill()
                process.join(timeout=5.0)
                self._recover(handle)

    def _expecting_progress(self, handle: WorkerHandle) -> bool:
        """Whether silence from this worker indicates a problem."""
        return handle.shipped_seq > handle.acked_seq or (
            handle.stop_sent and not handle.stopped
        )

    # -- shipping with backpressure --------------------------------

    def _put(self, handle: WorkerHandle, message: Any) -> None:
        """Blocking put that survives (and triggers) worker recovery."""
        if self._injector is not None:
            delay = self._injector.put_delay(handle.config.shard_id)
            if delay:
                time.sleep(delay)
        while True:
            if handle.failed:
                if isinstance(message, Batch):
                    self._shed_batch(
                        handle,
                        message,
                        ShardFailedError(
                            f"shard {handle.config.shard_id} failed: "
                            f"{handle.failure_reason}"
                        ),
                    )
                return
            try:
                handle.in_queue.put(message, timeout=_PUT_TIMEOUT)
                return
            except queue_module.Full:
                self._check(handle)

    def ship(self, batch: Batch) -> None:
        """Deliver one batch under the configured backpressure policy."""
        handle = self.handles[batch.shard]
        if handle.failed:
            self._shed_batch(
                handle,
                batch,
                ShardFailedError(
                    f"shard {batch.shard} failed: "
                    f"{handle.failure_reason}"
                ),
            )
            return
        try:
            handle.in_queue.put_nowait(batch)
        except queue_module.Full:
            if self._backpressure == "drop":
                batch, dropped = drop_records(batch)
                handle.dropped += dropped
            elif self._backpressure == "sample":
                batch, dropped = thin_batch(batch)
                handle.dropped += dropped
            self._put(handle, batch)
            if handle.failed:
                return
        # Retain exactly what was shipped so replays are identical.
        handle.retained.append(batch)
        handle.shipped_seq = max(handle.shipped_seq, batch.seq)
        handle.enqueue_times[batch.seq] = time.perf_counter()
        if self._injector is not None:
            self._injector.on_shipped(
                handle.process, batch.shard, batch.seq
            )

    # -- draining outputs ------------------------------------------

    def _absorb(self, handle: WorkerHandle, message: Any) -> None:
        handle.last_message = time.monotonic()
        if isinstance(message, ShardHeartbeat):
            return
        if isinstance(message, ShardStopped):
            if message.error is None and handle.stop_sent:
                handle.stopped = True
            # An errored stop is followed by a nonzero exit; _check
            # recovers the worker once the process object reports dead.
            return
        output: ShardOutput = message
        self._pending_outputs.append(output)
        if output.seq > handle.acked_seq:
            handle.acked_seq = output.seq
            handle.records += output.records
            handle.batches += 1
            handle.busy_seconds += output.busy_seconds
            shipped_at = handle.enqueue_times.pop(output.seq, None)
            if shipped_at is not None:
                handle.latencies.add(
                    time.perf_counter() - shipped_at
                )
        if output.snapshot is not None and output.seq > handle.snapshot_seq:
            data = output.snapshot
            if self._injector is not None:
                data = self._injector.on_checkpoint(
                    handle.config.shard_id, data
                )
            handle.prev_snapshot = handle.snapshot
            handle.prev_snapshot_seq = handle.snapshot_seq
            handle.snapshot = data
            handle.snapshot_seq = output.seq
            handle.checkpoints += 1
            # Keep one extra generation of batches: if the new
            # checkpoint turns out corrupt, the previous one plus
            # these batches still reconstructs the full history.
            handle.retained = [
                b
                for b in handle.retained
                if b.seq > handle.prev_snapshot_seq
            ]
            output.snapshot = None  # merged layers never need the bytes

    def _drain_handle(self, handle: WorkerHandle) -> None:
        out_queue = handle.out_queue
        if out_queue is None:
            return
        while True:
            try:
                message = out_queue.get_nowait()
            except queue_module.Empty:
                return
            except (EOFError, OSError):  # pragma: no cover - torn pipe
                return
            self._absorb(handle, message)

    def poll(self) -> List[ShardOutput]:
        """Drain worker outputs, recovering any dead workers en route."""
        for handle in self.handles:
            self._drain_handle(handle)
            self._check(handle)
        outputs = self._pending_outputs
        self._pending_outputs = []
        return outputs

    def take_dead_letters(self) -> List[DeadLetter]:
        """Dead letters quarantined by the supervisor since last taken.

        These cover records shed because their shard failed; poison
        records travel on :attr:`ShardOutput.dead_letters` instead.
        """
        letters = self._pending_letters
        self._pending_letters = []
        return letters

    # -- shutdown ---------------------------------------------------

    def stop(self) -> None:
        """Ask every worker to finish its queue and exit."""
        for handle in self.handles:
            if not handle.stop_sent:
                handle.stop_sent = True
                if not handle.failed:
                    self._put(handle, STOP)

    def drain_until_stopped(self, timeout: float = 60.0) -> List[ShardOutput]:
        """Collect outputs until every worker confirmed its stop.

        Failed shards count as stopped (their backlog has been shed to
        the dead-letter queue), so one failed shard never blocks the
        rest of the service from draining.

        Raises:
            ServiceError: when a worker fails to stop within
                ``timeout`` seconds (after recoveries).
        """
        deadline = time.monotonic() + timeout
        outputs: List[ShardOutput] = []
        while True:
            outputs.extend(self.poll())
            if all(handle.stopped for handle in self.handles):
                break
            if time.monotonic() > deadline:
                raise ServiceError(
                    "shard workers did not stop within "
                    f"{timeout} seconds"
                )
            time.sleep(0.002)
        for handle in self.handles:
            process = handle.process
            if process is not None:
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - stuck
                    process.terminate()
                    process.join(timeout=5.0)
            self._discard_queues(handle)
        return outputs

    def terminate(self) -> None:
        """Hard-kill every worker (abandoning in-flight work)."""
        for handle in self.handles:
            process = handle.process
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            self._discard_queues(handle)
            handle.stopped = True


class InlineTransport:
    """Run every shard synchronously in the caller's process.

    The deterministic twin of :class:`Supervisor` used by property
    tests and debugging: identical interface and identical results for
    the partition/merge math, with no queues, processes, checkpoints or
    backpressure (nothing is ever dropped, no shard can crash — though
    poison records are still quarantined by the shard computation
    itself).
    """

    def __init__(
        self,
        configs: List[ShardConfig],
        queue_capacity: int = 8,
        backpressure: str = "block",
        injector: Optional[Any] = None,
        max_restarts: int = 5,
        restart_backoff: float = 0.05,
        stall_timeout: float = 10.0,
        on_shard_failed: Optional[Callable[[int, str], None]] = None,
    ):
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ServiceError(
                f"unknown backpressure policy {backpressure!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        self.handles = [WorkerHandle(config) for config in configs]
        self._states = [ShardState(config) for config in configs]
        self._pending: List[ShardOutput] = []

    def ship(self, batch: Batch) -> None:
        """Process one batch immediately."""
        handle = self.handles[batch.shard]
        started = time.perf_counter()
        output = self._states[batch.shard].process(batch)
        output.busy_seconds = time.perf_counter() - started
        handle.acked_seq = output.seq
        handle.records += output.records
        handle.batches += 1
        handle.busy_seconds += output.busy_seconds
        self._pending.append(output)

    def poll(self) -> List[ShardOutput]:
        """Return outputs produced since the last poll."""
        outputs = self._pending
        self._pending = []
        return outputs

    def take_dead_letters(self) -> List[DeadLetter]:
        """Always empty: inline shards cannot fail, only quarantine."""
        return []

    def stop(self) -> None:
        """Mark every (synchronous) shard as stopped."""
        for handle in self.handles:
            handle.stop_sent = True
            handle.stopped = True

    def drain_until_stopped(self, timeout: float = 60.0) -> List[ShardOutput]:
        """Return any remaining outputs (always already complete)."""
        return self.poll()

    def terminate(self) -> None:
        """No processes to kill; marks shards stopped."""
        self.stop()
