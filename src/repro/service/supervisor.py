"""Worker lifecycle: spawning, backpressure, failure detection, recovery.

The supervisor owns one worker process per shard.  On the ``shm`` data
plane (the default where supported) batches travel as columnar frames
over per-shard shared-memory rings
(:mod:`repro.service.transport`), with bounded queues kept for control
traffic, oversized spills, and platforms without shared memory; on the
``pickle`` plane everything travels on the queues, as it originally
did.  Either way both directions are bounded — a slow merger
backpressures the workers instead of growing an unbounded outbound
backlog.  Its responsibilities:

* **Backpressure** — a full inbound queue triggers the configured
  policy: ``block`` (lossless, waits for capacity), ``drop`` (sheds the
  batch's records, ships the empty frame so watermarks and sequence
  numbers stay intact), or ``sample`` (ships a deterministically
  thinned batch).  Dropped records are counted exactly, per shard.
* **At-least-once delivery with idempotent effects** — every shipped
  batch is retained until *two* worker checkpoint generations cover it;
  shard outputs double as acknowledgements.  What was actually shipped
  (post-shedding) is what is retained, so a replay reproduces
  byte-identical outputs.
* **Recovery** — a worker that exits without being asked to is
  respawned from its last checkpoint (or from scratch), its retained
  batches are re-enqueued in order, and the merge layer's idempotency
  absorbs any duplicate outputs.  Checkpoints are CRC32-verified before
  being trusted: a corrupt current generation falls back to the
  previous one (retention keeps exactly enough batches to replay from
  there); when both generations are corrupt the shard is failed rather
  than silently restarted with missing history.
* **Stall detection** — workers heartbeat while idle and before each
  batch.  A shard with outstanding work that has been silent longer
  than ``stall_timeout`` is wedged (as opposed to slow — slow shards
  keep heartbeating between batches): its process is killed and
  recovered like a crash.
* **Restart budget** — each recovery consumes one unit of
  ``max_restarts`` and is preceded by an exponential backoff.  A shard
  that exhausts the budget becomes **failed**: its worker is torn
  down for good, records routed to it are shed to the dead-letter
  queue, and the failure is reported upward (the service marks the
  shard's keys degraded) instead of being retried forever.

Fault injection threads through the optional ``injector``
(:class:`~repro.service.chaos.FaultInjector`): kills after chosen
batches, kills at spawn, checkpoint bit-flips, and queue-put delays
all fire from the hooks here.

:class:`InlineTransport` is the process-free twin used by fast
deterministic tests: same interface, shards run in the caller's
process.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import (
    ServiceError,
    ShardFailedError,
    TornFrameError,
    TransportError,
)
from repro.metrics.stats import Reservoir
from repro.service.partition import (
    BACKPRESSURE_POLICIES,
    Batch,
    drop_records,
    thin_batch,
)
from repro.service.shard import (
    STOP,
    ShardConfig,
    ShardHeartbeat,
    ShardOutput,
    ShardState,
    ShardStopped,
    shard_main,
)
from repro.service.transport import resolve_data_plane
from repro.service.transport.frame import (
    FrameKind,
    decode_frame,
    encode_control_frame,
)
from repro.service.transport.shm import ShardChannel
from repro.stream.checkpoint import CheckpointError, verify
from repro.stream.sink import DeadLetter

#: Seconds between liveness checks while waiting on a full queue.
_PUT_TIMEOUT = 0.05

#: Sleep between liveness checks while waiting on a full ring (rings
#: drain in sub-millisecond strides, so the wait polls much hotter
#: than the queue path).
_RING_WAIT_SLEEP = 0.001

#: Retained batch-latency samples per shard (reservoir capacity).
_LATENCY_SAMPLES = 1024

#: Upper bound on one exponential-backoff sleep before a respawn.
_BACKOFF_CAP = 2.0

#: Default per-ring capacity of the shm data plane, in bytes.
DEFAULT_RING_CAPACITY = 1 << 20


def _context():
    """The multiprocessing context: ``fork`` when available.

    Fork keeps worker startup cheap and lets non-picklable operators
    run (checkpointing still requires picklability); platforms without
    it (Windows) fall back to the default start method.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class WorkerHandle:
    """Bookkeeping for one shard worker."""

    def __init__(self, config: ShardConfig):
        self.config = config
        self.process: Optional[Any] = None
        self.in_queue: Optional[Any] = None
        self.out_queue: Optional[Any] = None
        #: Shared-memory ring pair (``None`` on the pickle plane).
        self.channel: Optional[ShardChannel] = None
        #: Batches shipped but not yet covered by two checkpoint
        #: generations (the fallback generation must stay replayable).
        self.retained: List[Batch] = []
        self.snapshot: Optional[bytes] = None
        self.snapshot_seq = 0
        #: Previous checkpoint generation (last known good fallback).
        self.prev_snapshot: Optional[bytes] = None
        self.prev_snapshot_seq = 0
        self.acked_seq = 0
        #: Highest slice watermark the worker has acknowledged —
        #: monotone (shard outputs echo max(batch, state) watermarks),
        #: feeding the service's watermark-lag gauge.
        self.watermark = 0
        #: Highest batch sequence number shipped toward the worker.
        self.shipped_seq = 0
        self.stop_sent = False
        self.stopped = False
        #: The shard exhausted its restart budget (terminal).
        self.failed = False
        #: Human-readable reason the shard failed, when it did.
        self.failure_reason = ""
        #: Monotonic time of the last message (output/heartbeat) seen.
        self.last_message = time.monotonic()
        #: Ship timestamps per in-flight sequence number.
        self.enqueue_times: Dict[int, float] = {}
        # Stats accumulators (fresh acknowledgements only).
        self.records = 0
        self.batches = 0
        self.busy_seconds = 0.0
        self.checkpoints = 0
        self.restores = 0
        self.dropped = 0
        self.stalls = 0
        self.corrupt_checkpoints = 0
        # Transport accounting (shm plane; zero on the pickle plane).
        self.frames_columnar = 0
        self.frames_pickled = 0
        self.frames_spilled = 0
        self.encode_seconds = 0.0
        self.ring_wait_seconds = 0.0
        self.decode_seconds = 0.0
        #: Bounded uniform sample of ship-to-ack latencies; seeded per
        #: shard so runs are reproducible.
        self.latencies = Reservoir(
            _LATENCY_SAMPLES, seed=config.shard_id
        )


class Supervisor:
    """Process transport: one worker per shard, with fault recovery.

    Args:
        configs: One :class:`ShardConfig` per shard, index-aligned.
        queue_capacity: Bound of each shard's inbound queue, in
            batches; this is where backpressure originates.
        backpressure: ``"block"``, ``"drop"`` or ``"sample"``.
        injector: Optional fault injector (tests only); its hooks fire
            at spawn, ship, and checkpoint-absorb time.
        max_restarts: Recoveries allowed per shard before it is
            declared failed.  ``0`` fails a shard on its first crash.
        restart_backoff: Base of the exponential pre-respawn sleep
            (``restart_backoff * 2**(restores-1)``, capped); ``0``
            respawns immediately.
        stall_timeout: Seconds of worker silence (with work
            outstanding) before the worker is declared wedged and
            recovered; ``0`` disables stall detection.
        on_shard_failed: Callback ``(shard_id, reason)`` invoked once
            when a shard exhausts its budget (or loses both checkpoint
            generations).
        data_plane: ``"auto"`` (shm where supported, else pickle),
            ``"shm"`` (require the shared-memory plane), or
            ``"pickle"`` (force the legacy queue transport).
        ring_capacity: Per-ring byte capacity of the shm plane; larger
            rings absorb deeper bursts before backpressure engages.
    """

    def __init__(
        self,
        configs: List[ShardConfig],
        queue_capacity: int = 8,
        backpressure: str = "block",
        injector: Optional[Any] = None,
        max_restarts: int = 5,
        restart_backoff: float = 0.05,
        stall_timeout: float = 10.0,
        on_shard_failed: Optional[Callable[[int, str], None]] = None,
        data_plane: str = "auto",
        ring_capacity: int = DEFAULT_RING_CAPACITY,
    ):
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ServiceError(
                f"unknown backpressure policy {backpressure!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        if queue_capacity < 1:
            raise ServiceError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        if max_restarts < 0:
            raise ServiceError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        if ring_capacity < 64:
            raise ServiceError(
                f"ring_capacity must be >= 64 bytes, got {ring_capacity}"
            )
        self._ctx = _context()
        self._queue_capacity = queue_capacity
        #: Outbound queues are bounded too (a slow merger backpressures
        #: workers instead of growing an unbounded backlog), but looser
        #: than inbound: outputs are smaller than batches, and the
        #: supervisor drains them while it waits for inbound capacity.
        self._out_capacity = max(16, queue_capacity * 4)
        self.data_plane = resolve_data_plane(data_plane)
        self._ring_capacity = ring_capacity
        self._backpressure = backpressure
        self._injector = injector
        #: Optional ``(stage, seconds)`` callback the service binds for
        #: transport telemetry (stages: encode / ring_wait / decode).
        self.transport_observer: Optional[Callable[[str, float], None]] = None
        self._max_restarts = max_restarts
        self._restart_backoff = restart_backoff
        self._stall_timeout = stall_timeout
        self._on_shard_failed = on_shard_failed
        self._pending_outputs: List[ShardOutput] = []
        self._pending_letters: List[DeadLetter] = []
        self.handles = [WorkerHandle(config) for config in configs]
        for handle in self.handles:
            self._spawn(handle, initial_snapshot=None, replay=())

    # -- spawning and recovery -------------------------------------

    def _spawn(self, handle, initial_snapshot, replay) -> None:
        config = handle.config
        if self._injector is not None:
            config = self._injector.worker_config(config)
        handle.in_queue = self._ctx.Queue(maxsize=self._queue_capacity)
        handle.out_queue = self._ctx.Queue(maxsize=self._out_capacity)
        endpoint = None
        if self.data_plane == "shm":
            # Fresh rings every (re)spawn: a crashed worker's rings may
            # hold a half-consumed frame and are never reused.
            handle.channel = ShardChannel(
                handle.config.shard_id, self._ring_capacity
            )
            endpoint = handle.channel.endpoint()
        handle.process = self._ctx.Process(
            target=shard_main,
            args=(
                config,
                handle.in_queue,
                handle.out_queue,
                initial_snapshot,
                endpoint,
            ),
            daemon=True,
            name=f"repro-shard-{handle.config.shard_id}",
        )
        handle.process.start()
        handle.last_message = time.monotonic()
        if self._injector is not None:
            self._injector.on_spawned(
                handle.process, handle.config.shard_id
            )
        for batch in replay:
            if handle.failed:  # budget exhausted mid-replay
                return
            self._put(handle, batch)
        if handle.stop_sent and not handle.failed:
            self._put(handle, STOP)

    def _recover(self, handle: WorkerHandle) -> None:
        """Respawn a dead worker from its checkpoint and replay.

        Consumes one unit of the restart budget; exhausting it (or
        losing both checkpoint generations to corruption) fails the
        shard instead of respawning.
        """
        self._drain_handle(handle)  # salvage outputs already produced
        self._discard_queues(handle)
        if handle.restores >= self._max_restarts:
            self._fail(
                handle,
                f"restart budget of {self._max_restarts} exhausted",
            )
            return
        handle.restores += 1
        if self._restart_backoff:
            time.sleep(
                min(
                    self._restart_backoff * 2 ** (handle.restores - 1),
                    _BACKOFF_CAP,
                )
            )
        handle.enqueue_times.clear()
        initial_snapshot, complete = self._select_snapshot(handle)
        if not complete:
            self._fail(
                handle,
                "both checkpoint generations are corrupt; the batches "
                "needed to rebuild the shard state are gone",
            )
            return
        self._spawn(
            handle,
            initial_snapshot=initial_snapshot,
            replay=list(handle.retained),
        )

    def _select_snapshot(self, handle: WorkerHandle):
        """The newest trustworthy checkpoint generation for recovery.

        Returns ``(snapshot_bytes_or_None, complete)`` where
        ``complete`` says whether a fresh/fallback start plus the
        retained batches reconstructs the full shard history.  The
        current generation is CRC-verified first; a corrupt one falls
        back to the previous generation (retention keeps every batch
        after it, so the replay is complete).
        """
        if handle.snapshot is None:
            return None, True  # never checkpointed: replay covers all
        try:
            verify(handle.snapshot)
            return handle.snapshot, True
        except CheckpointError:
            handle.corrupt_checkpoints += 1
        if handle.prev_snapshot is None:
            # The only generation was corrupt, but it was the *first*
            # checkpoint: retention still reaches back to genesis.
            return None, handle.prev_snapshot_seq == 0
        try:
            verify(handle.prev_snapshot)
            return handle.prev_snapshot, True
        except CheckpointError:
            handle.corrupt_checkpoints += 1
        return None, False

    def _fail(self, handle: WorkerHandle, reason: str) -> None:
        """Give up on a shard: tear it down and shed its backlog."""
        if handle.failed:
            return
        handle.failed = True
        handle.stopped = True
        handle.failure_reason = reason
        process = handle.process
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=5.0)
        self._discard_queues(handle)
        error = ShardFailedError(
            f"shard {handle.config.shard_id} failed: {reason}"
        )
        # Un-acknowledged records will never be processed: quarantine
        # them so accounting stays exact and callers can inspect them.
        for batch in handle.retained:
            if batch.seq <= handle.acked_seq:
                continue
            self._shed_batch(handle, batch, error)
        handle.retained = []
        handle.enqueue_times.clear()
        if self._on_shard_failed is not None:
            self._on_shard_failed(handle.config.shard_id, reason)

    def _shed_batch(
        self, handle: WorkerHandle, batch: Batch, error: ShardFailedError
    ) -> None:
        reason = repr(error)
        self._pending_letters.extend(
            DeadLetter(
                key=key,
                value=value,
                position=position,
                shard_id=handle.config.shard_id,
                error=reason,
            )
            for position, key, value in zip(
                batch.positions, batch.keys, batch.values
            )
        )

    def _discard_queues(self, handle: WorkerHandle) -> None:
        for q in (handle.in_queue, handle.out_queue):
            if q is not None:
                q.close()
                q.cancel_join_thread()
        handle.in_queue = None
        handle.out_queue = None
        channel = handle.channel
        if channel is not None:
            handle.channel = None
            channel.close()
            channel.unlink()

    def _check(self, handle: WorkerHandle) -> None:
        """Recover ``handle`` if its process died or wedged."""
        process = handle.process
        if handle.stopped or process is None:
            return
        if not process.is_alive():
            if handle.stop_sent and process.exitcode == 0:
                # Clean exit; ShardStopped may still be queued.
                return
            self._recover(handle)
            return
        if self._stall_timeout and self._expecting_progress(handle):
            silent_for = time.monotonic() - handle.last_message
            if silent_for > self._stall_timeout:
                # Alive but silent with work outstanding: wedged.  A
                # slow shard would have heartbeat within the timeout.
                handle.stalls += 1
                if self._injector is not None:
                    self._injector.on_stall_killed(
                        handle.config.shard_id
                    )
                process.kill()
                process.join(timeout=5.0)
                self._recover(handle)

    def _expecting_progress(self, handle: WorkerHandle) -> bool:
        """Whether silence from this worker indicates a problem."""
        return handle.shipped_seq > handle.acked_seq or (
            handle.stop_sent and not handle.stopped
        )

    # -- shipping with backpressure --------------------------------

    def _put(self, handle: WorkerHandle, message: Any) -> None:
        """Blocking put that survives (and triggers) worker recovery.

        While waiting for inbound capacity the supervisor keeps
        draining the worker's outputs — with both directions bounded,
        a worker blocked on a full outbound path and a supervisor
        blocked on a full inbound one would otherwise deadlock.
        """
        if self._injector is not None:
            delay = self._injector.put_delay(handle.config.shard_id)
            if delay:
                time.sleep(delay)
        while True:
            if handle.failed:
                if isinstance(message, Batch):
                    self._shed_batch(
                        handle,
                        message,
                        ShardFailedError(
                            f"shard {handle.config.shard_id} failed: "
                            f"{handle.failure_reason}"
                        ),
                    )
                return
            if handle.channel is not None:
                if self._shm_send(handle, message):
                    return
                # Ring torn down mid-send (worker recovery replaced the
                # channel, or the shard failed): retry wholesale
                # against the fresh incarnation.
                continue
            try:
                handle.in_queue.put(message, timeout=_PUT_TIMEOUT)
                return
            except queue_module.Full:
                self._drain_handle(handle)
                self._check(handle)

    # -- shm plane ---------------------------------------------------

    def _encode_batch(self, handle: WorkerHandle, batch: Batch) -> bytes:
        """Encode one batch on the handle's channel, with accounting."""
        started = time.perf_counter()
        frame, columnar = handle.channel.encode_batch(batch)
        elapsed = time.perf_counter() - started
        handle.encode_seconds += elapsed
        if columnar:
            handle.frames_columnar += 1
        else:
            handle.frames_pickled += 1
        if self.transport_observer is not None:
            self.transport_observer("encode", elapsed)
        return frame

    def _data_frames(self, handle: WorkerHandle, frame: bytes) -> List[bytes]:
        """The ring frames to write for one encoded batch frame.

        Normally ``[frame]``; the fault injector's torn-write and
        stale-sequence schedules substitute corrupted or duplicated
        frames here.
        """
        if self._injector is None:
            return [frame]
        on_data_frame = getattr(self._injector, "on_data_frame", None)
        if on_data_frame is None:
            return [frame]
        return on_data_frame(handle.config.shard_id, frame)

    def _shm_send(self, handle: WorkerHandle, message: Any) -> bool:
        """Deliver one message over the shm plane, blocking on space.

        Returns ``False`` when the channel was replaced (worker
        recovery) or the shard failed mid-send; the caller restarts
        against the handle's current state.
        """
        channel = handle.channel
        shard_id = handle.config.shard_id
        if isinstance(message, Batch):
            # Respect the per-shard in-flight batch bound (see
            # ``_shm_try_ship``) before committing ring space: the
            # block policy waits here, draining so acks can arrive.
            waited_since = None
            while (
                message.seq - handle.acked_seq > self._queue_capacity
            ):
                if waited_since is None:
                    waited_since = time.perf_counter()
                self._drain_handle(handle)
                self._check(handle)
                if handle.failed or handle.channel is not channel:
                    return False
                time.sleep(_RING_WAIT_SLEEP)
            if waited_since is not None:
                waited = time.perf_counter() - waited_since
                handle.ring_wait_seconds += waited
                if self.transport_observer is not None:
                    self.transport_observer("ring_wait", waited)
            frame = self._encode_batch(handle, message)
            if len(frame) > channel.data_ring.max_payload:
                # Too large for the ring: the payload travels on the
                # queue, a SPILL marker holds its place in ring order.
                handle.frames_spilled += 1
                while True:
                    try:
                        handle.in_queue.put(message, timeout=_PUT_TIMEOUT)
                        break
                    except queue_module.Full:
                        self._drain_handle(handle)
                        self._check(handle)
                        if handle.failed or handle.channel is not channel:
                            return False
                frames = [
                    encode_control_frame(
                        FrameKind.SPILL, shard_id, message.seq
                    )
                ]
            else:
                frames = self._data_frames(handle, frame)
        else:  # STOP
            frames = [encode_control_frame(FrameKind.STOP, shard_id)]
        ring = channel.data_ring
        for frame in frames:
            started = None
            while not ring.try_write(frame):
                if started is None:
                    started = time.perf_counter()
                self._drain_handle(handle)
                self._check(handle)
                if handle.failed or handle.channel is not channel:
                    return False
                time.sleep(_RING_WAIT_SLEEP)
            if started is not None:
                waited = time.perf_counter() - started
                handle.ring_wait_seconds += waited
                if self.transport_observer is not None:
                    self.transport_observer("ring_wait", waited)
        return True

    def _shm_try_ship(self, handle: WorkerHandle, batch: Batch) -> bool:
        """Non-blocking shm delivery; ``False`` signals backpressure."""
        if self._injector is not None and getattr(
            self._injector, "has_data_frame_fault", lambda _s: False
        )(handle.config.shard_id):
            # A torn/stale frame is scheduled for this shard: take the
            # blocking writer so the injected frame group lands (and
            # survives any recovery it provokes) atomically.
            self._put(handle, batch)
            return True
        # ``queue_capacity`` bounds in-flight *batches* per shard on
        # both planes — the ring's byte capacity alone would let a
        # fast producer run thousands of batches ahead of a slow
        # worker, which is exactly the situation the drop/sample
        # policies exist to surface.  The bound is phrased per-seq
        # (ship N only once N - capacity is acked) so replayed batches
        # at or below the ack horizon always pass.
        self._drain_result_ring(handle)
        if batch.seq - handle.acked_seq > self._queue_capacity:
            return False
        channel = handle.channel
        frame = self._encode_batch(handle, batch)
        if len(frame) > channel.data_ring.max_payload:
            # Oversized batches take the blocking spill path directly:
            # shedding a batch for being large (rather than for the
            # worker being behind) is not what drop/sample mean.
            self._put(handle, batch)
            return True
        return channel.data_ring.try_write(frame)

    def ship(self, batch: Batch) -> None:
        """Deliver one batch under the configured backpressure policy."""
        handle = self.handles[batch.shard]
        if handle.failed:
            self._shed_batch(
                handle,
                batch,
                ShardFailedError(
                    f"shard {batch.shard} failed: "
                    f"{handle.failure_reason}"
                ),
            )
            return
        if handle.channel is not None:
            delivered = self._shm_try_ship(handle, batch)
        else:
            try:
                handle.in_queue.put_nowait(batch)
                delivered = True
            except queue_module.Full:
                delivered = False
        if not delivered:
            if self._backpressure == "drop":
                batch, dropped = drop_records(batch)
                handle.dropped += dropped
            elif self._backpressure == "sample":
                batch, dropped = thin_batch(batch)
                handle.dropped += dropped
            self._put(handle, batch)
        if handle.failed:
            return
        # Retain exactly what was shipped so replays are identical.
        handle.retained.append(batch)
        handle.shipped_seq = max(handle.shipped_seq, batch.seq)
        handle.enqueue_times[batch.seq] = time.perf_counter()
        if self._injector is not None:
            self._injector.on_shipped(
                handle.process, batch.shard, batch.seq
            )

    # -- draining outputs ------------------------------------------

    def _absorb(self, handle: WorkerHandle, message: Any) -> None:
        handle.last_message = time.monotonic()
        if isinstance(message, ShardHeartbeat):
            return
        if isinstance(message, ShardStopped):
            if message.error is None and handle.stop_sent:
                # Every result-ring write happened-before the worker
                # queued this stop message, but this poll's ring pass
                # ran before the queue pass — drain once more so a
                # final output that landed in between is not stranded
                # when drain_until_stopped breaks.
                self._drain_result_ring(handle)
                handle.stopped = True
            # An errored stop is followed by a nonzero exit; _check
            # recovers the worker once the process object reports dead.
            return
        output: ShardOutput = message
        self._pending_outputs.append(output)
        if output.watermark > handle.watermark:
            handle.watermark = output.watermark
        if output.seq > handle.acked_seq:
            handle.acked_seq = output.seq
            handle.records += output.records
            handle.batches += 1
            handle.busy_seconds += output.busy_seconds
            decode_seconds = getattr(output, "transport_seconds", 0.0)
            if decode_seconds:
                handle.decode_seconds += decode_seconds
                if self.transport_observer is not None:
                    self.transport_observer("decode", decode_seconds)
            shipped_at = handle.enqueue_times.pop(output.seq, None)
            if shipped_at is not None:
                handle.latencies.add(
                    time.perf_counter() - shipped_at
                )
        if output.snapshot is not None and output.seq > handle.snapshot_seq:
            data = output.snapshot
            if self._injector is not None:
                data = self._injector.on_checkpoint(
                    handle.config.shard_id, data
                )
            handle.prev_snapshot = handle.snapshot
            handle.prev_snapshot_seq = handle.snapshot_seq
            handle.snapshot = data
            handle.snapshot_seq = output.seq
            handle.checkpoints += 1
            # Keep one extra generation of batches: if the new
            # checkpoint turns out corrupt, the previous one plus
            # these batches still reconstructs the full history.
            handle.retained = [
                b
                for b in handle.retained
                if b.seq > handle.prev_snapshot_seq
            ]
            output.snapshot = None  # merged layers never need the bytes

    def _drain_handle(self, handle: WorkerHandle) -> None:
        self._drain_result_ring(handle)
        out_queue = handle.out_queue
        if out_queue is None:
            return
        while True:
            try:
                message = out_queue.get_nowait()
            except queue_module.Empty:
                return
            except (EOFError, OSError):  # pragma: no cover - torn pipe
                return
            self._absorb(handle, message)

    def _drain_result_ring(self, handle: WorkerHandle) -> None:
        """Absorb every output currently on the shard's result ring.

        A torn frame here means the worker died mid-write: draining
        stops (the rest of the ring cannot be trusted) and the regular
        liveness check recovers the shard with fresh rings.
        """
        channel = handle.channel
        if channel is None:
            return
        ring = channel.result_ring
        while True:
            try:
                view = ring.try_read()
            except TransportError:
                # Torn record, or a frame left uncommitted by an
                # earlier torn decode: the ring is done for.
                break
            if view is None:
                return
            try:
                decoded = decode_frame(view)
            except TornFrameError:
                # Leave the frame uncommitted; the ring is discarded
                # wholesale when the worker is recovered.
                break
            if decoded.kind is FrameKind.SPILL:
                ring.commit()
                if not self._absorb_spilled_output(handle):
                    break
            else:
                payload = decoded.payload
                ring.commit()
                self._absorb(handle, payload)

    def _absorb_spilled_output(self, handle: WorkerHandle) -> bool:
        """Wait out the queue delivery of one ring-spilled output.

        The worker queued the output *before* writing its SPILL marker,
        but the queue's feeder thread may still be flushing it when the
        marker becomes visible in shared memory; block briefly until it
        lands, giving up only if the worker died (recovery replays the
        batch anyway).
        """
        out_queue = handle.out_queue
        while True:
            try:
                message = out_queue.get(timeout=_PUT_TIMEOUT)
            except queue_module.Empty:
                process = handle.process
                if process is None or not process.is_alive():
                    return False
                continue
            except (EOFError, OSError):  # pragma: no cover - torn pipe
                return False
            self._absorb(handle, message)
            if isinstance(message, ShardOutput):
                return True

    def poll(self) -> List[ShardOutput]:
        """Drain worker outputs, recovering any dead workers en route."""
        for handle in self.handles:
            self._drain_handle(handle)
            self._check(handle)
        outputs = self._pending_outputs
        self._pending_outputs = []
        return outputs

    def take_dead_letters(self) -> List[DeadLetter]:
        """Dead letters quarantined by the supervisor since last taken.

        These cover records shed because their shard failed; poison
        records travel on :attr:`ShardOutput.dead_letters` instead.
        """
        letters = self._pending_letters
        self._pending_letters = []
        return letters

    # -- transport introspection -------------------------------------

    def ring_occupancy(self) -> List[float]:
        """Per-shard ring occupancy as a capacity fraction (shm plane).

        The fuller of a shard's two rings; ``0.0`` for discarded
        channels and on the pickle plane.
        """
        return [
            handle.channel.occupancy_ratio()
            if handle.channel is not None
            else 0.0
            for handle in self.handles
        ]

    def transport_stats(self) -> Dict[str, Any]:
        """Aggregate data-plane accounting across every shard."""
        return {
            "data_plane": self.data_plane,
            "frames_columnar": sum(
                h.frames_columnar for h in self.handles
            ),
            "frames_pickled": sum(
                h.frames_pickled for h in self.handles
            ),
            "frames_spilled": sum(
                h.frames_spilled for h in self.handles
            ),
            "encode_seconds": sum(
                h.encode_seconds for h in self.handles
            ),
            "ring_wait_seconds": sum(
                h.ring_wait_seconds for h in self.handles
            ),
            "decode_seconds": sum(
                h.decode_seconds for h in self.handles
            ),
        }

    # -- shutdown ---------------------------------------------------

    def stop(self) -> None:
        """Ask every worker to finish its queue and exit."""
        for handle in self.handles:
            if not handle.stop_sent:
                handle.stop_sent = True
                if not handle.failed:
                    self._put(handle, STOP)

    def drain_until_stopped(self, timeout: float = 60.0) -> List[ShardOutput]:
        """Collect outputs until every worker confirmed its stop.

        Failed shards count as stopped (their backlog has been shed to
        the dead-letter queue), so one failed shard never blocks the
        rest of the service from draining.

        Raises:
            ServiceError: when a worker fails to stop within
                ``timeout`` seconds (after recoveries).
        """
        deadline = time.monotonic() + timeout
        outputs: List[ShardOutput] = []
        while True:
            outputs.extend(self.poll())
            if all(handle.stopped for handle in self.handles):
                break
            if time.monotonic() > deadline:
                raise ServiceError(
                    "shard workers did not stop within "
                    f"{timeout} seconds"
                )
            time.sleep(0.002)
        for handle in self.handles:
            process = handle.process
            if process is not None:
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - stuck
                    process.terminate()
                    process.join(timeout=5.0)
            self._discard_queues(handle)
        return outputs

    def terminate(self) -> None:
        """Hard-kill every worker (abandoning in-flight work)."""
        for handle in self.handles:
            process = handle.process
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            self._discard_queues(handle)
            handle.stopped = True


class InlineTransport:
    """Run every shard synchronously in the caller's process.

    The deterministic twin of :class:`Supervisor` used by property
    tests and debugging: identical interface and identical results for
    the partition/merge math, with no queues, processes, checkpoints or
    backpressure (nothing is ever dropped, no shard can crash — though
    poison records are still quarantined by the shard computation
    itself).
    """

    def __init__(
        self,
        configs: List[ShardConfig],
        queue_capacity: int = 8,
        backpressure: str = "block",
        injector: Optional[Any] = None,
        max_restarts: int = 5,
        restart_backoff: float = 0.05,
        stall_timeout: float = 10.0,
        on_shard_failed: Optional[Callable[[int, str], None]] = None,
        data_plane: str = "auto",
        ring_capacity: int = DEFAULT_RING_CAPACITY,
    ):
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ServiceError(
                f"unknown backpressure policy {backpressure!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        self.data_plane = "inline"
        self.transport_observer: Optional[
            Callable[[str, float], None]
        ] = None
        self.handles = [WorkerHandle(config) for config in configs]
        self._states = [ShardState(config) for config in configs]
        self._pending: List[ShardOutput] = []

    def ship(self, batch: Batch) -> None:
        """Process one batch immediately."""
        handle = self.handles[batch.shard]
        started = time.perf_counter()
        output = self._states[batch.shard].process(batch)
        output.busy_seconds = time.perf_counter() - started
        handle.acked_seq = output.seq
        if output.watermark > handle.watermark:
            handle.watermark = output.watermark
        handle.records += output.records
        handle.batches += 1
        handle.busy_seconds += output.busy_seconds
        self._pending.append(output)

    def poll(self) -> List[ShardOutput]:
        """Return outputs produced since the last poll."""
        outputs = self._pending
        self._pending = []
        return outputs

    def take_dead_letters(self) -> List[DeadLetter]:
        """Always empty: inline shards cannot fail, only quarantine."""
        return []

    def ring_occupancy(self) -> List[float]:
        """Always zero: the inline transport has no rings."""
        return [0.0] * len(self.handles)

    def transport_stats(self) -> Dict[str, Any]:
        """Zeroed accounting (no process transport in play)."""
        return {
            "data_plane": "inline",
            "frames_columnar": 0,
            "frames_pickled": 0,
            "frames_spilled": 0,
            "encode_seconds": 0.0,
            "ring_wait_seconds": 0.0,
            "decode_seconds": 0.0,
        }

    def stop(self) -> None:
        """Mark every (synchronous) shard as stopped."""
        for handle in self.handles:
            handle.stop_sent = True
            handle.stopped = True

    def drain_until_stopped(self, timeout: float = 60.0) -> List[ShardOutput]:
        """Return any remaining outputs (always already complete)."""
        return self.poll()

    def terminate(self) -> None:
        """No processes to kill; marks shards stopped."""
        self.stop()
