"""Worker lifecycle: spawning, backpressure, failure detection, recovery.

The supervisor owns one worker process per shard, connected by a
bounded inbound queue (batches) and an unbounded outbound queue
(outputs).  Three responsibilities live here:

* **Backpressure** — a full inbound queue triggers the configured
  policy: ``block`` (lossless, waits for capacity), ``drop`` (sheds the
  batch's records, ships the empty frame so watermarks and sequence
  numbers stay intact), or ``sample`` (ships a deterministically
  thinned batch).  Dropped records are counted exactly, per shard.
* **At-least-once delivery with idempotent effects** — every shipped
  batch is retained until a worker checkpoint covers it; shard outputs
  double as acknowledgements.  What was actually shipped (post-shedding)
  is what is retained, so a replay reproduces byte-identical outputs.
* **Recovery** — a worker that exits without being asked to is
  respawned from its last checkpoint (or from scratch), its retained
  batches are re-enqueued in order, and the merge layer's idempotency
  absorbs any duplicate outputs.

:class:`InlineTransport` is the process-free twin used by fast
deterministic tests: same interface, shards run in the caller's
process.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from typing import Any, Dict, List, Optional

from repro.errors import ServiceError
from repro.service.partition import (
    BACKPRESSURE_POLICIES,
    Batch,
    drop_records,
    thin_batch,
)
from repro.service.shard import (
    STOP,
    ShardConfig,
    ShardOutput,
    ShardState,
    ShardStopped,
    shard_main,
)

#: Seconds between liveness checks while waiting on a full queue.
_PUT_TIMEOUT = 0.05


def _context():
    """The multiprocessing context: ``fork`` when available.

    Fork keeps worker startup cheap and lets non-picklable operators
    run (checkpointing still requires picklability); platforms without
    it (Windows) fall back to the default start method.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class WorkerHandle:
    """Bookkeeping for one shard worker."""

    def __init__(self, config: ShardConfig):
        self.config = config
        self.process: Optional[Any] = None
        self.in_queue: Optional[Any] = None
        self.out_queue: Optional[Any] = None
        #: Batches shipped but not yet covered by a checkpoint.
        self.retained: List[Batch] = []
        self.snapshot: Optional[bytes] = None
        self.snapshot_seq = 0
        self.acked_seq = 0
        self.stop_sent = False
        self.stopped = False
        #: Ship timestamps per in-flight sequence number.
        self.enqueue_times: Dict[int, float] = {}
        # Stats accumulators (fresh acknowledgements only).
        self.records = 0
        self.batches = 0
        self.busy_seconds = 0.0
        self.checkpoints = 0
        self.restores = 0
        self.dropped = 0
        self.latencies: List[float] = []


class Supervisor:
    """Process transport: one worker per shard, with fault recovery.

    Args:
        configs: One :class:`ShardConfig` per shard, index-aligned.
        queue_capacity: Bound of each shard's inbound queue, in
            batches; this is where backpressure originates.
        backpressure: ``"block"``, ``"drop"`` or ``"sample"``.
    """

    def __init__(
        self,
        configs: List[ShardConfig],
        queue_capacity: int = 8,
        backpressure: str = "block",
    ):
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ServiceError(
                f"unknown backpressure policy {backpressure!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        if queue_capacity < 1:
            raise ServiceError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        self._ctx = _context()
        self._queue_capacity = queue_capacity
        self._backpressure = backpressure
        self._pending_outputs: List[ShardOutput] = []
        self.handles = [WorkerHandle(config) for config in configs]
        for handle in self.handles:
            self._spawn(handle, initial_snapshot=None, replay=())

    # -- spawning and recovery -------------------------------------

    def _spawn(self, handle, initial_snapshot, replay) -> None:
        handle.in_queue = self._ctx.Queue(maxsize=self._queue_capacity)
        handle.out_queue = self._ctx.Queue()
        handle.process = self._ctx.Process(
            target=shard_main,
            args=(
                handle.config,
                handle.in_queue,
                handle.out_queue,
                initial_snapshot,
            ),
            daemon=True,
            name=f"repro-shard-{handle.config.shard_id}",
        )
        handle.process.start()
        for batch in replay:
            self._put(handle, batch)
        if handle.stop_sent:
            self._put(handle, STOP)

    def _recover(self, handle: WorkerHandle) -> None:
        """Respawn a dead worker from its checkpoint and replay."""
        self._drain_handle(handle)  # salvage outputs already produced
        self._discard_queues(handle)
        handle.restores += 1
        handle.enqueue_times.clear()
        self._spawn(
            handle,
            initial_snapshot=handle.snapshot,
            replay=list(handle.retained),
        )

    def _discard_queues(self, handle: WorkerHandle) -> None:
        for q in (handle.in_queue, handle.out_queue):
            if q is not None:
                q.close()
                q.cancel_join_thread()
        handle.in_queue = None
        handle.out_queue = None

    def _check(self, handle: WorkerHandle) -> None:
        """Recover ``handle`` if its process died unexpectedly."""
        process = handle.process
        if handle.stopped or process is None or process.is_alive():
            return
        if handle.stop_sent and process.exitcode == 0:
            # Clean exit; the ShardStopped message may still be queued.
            return
        self._recover(handle)

    # -- shipping with backpressure --------------------------------

    def _put(self, handle: WorkerHandle, message: Any) -> None:
        """Blocking put that survives (and triggers) worker recovery."""
        while True:
            try:
                handle.in_queue.put(message, timeout=_PUT_TIMEOUT)
                return
            except queue_module.Full:
                self._check(handle)

    def ship(self, batch: Batch) -> None:
        """Deliver one batch under the configured backpressure policy."""
        handle = self.handles[batch.shard]
        try:
            handle.in_queue.put_nowait(batch)
        except queue_module.Full:
            if self._backpressure == "drop":
                batch, dropped = drop_records(batch)
                handle.dropped += dropped
            elif self._backpressure == "sample":
                batch, dropped = thin_batch(batch)
                handle.dropped += dropped
            self._put(handle, batch)
        # Retain exactly what was shipped so replays are identical.
        handle.retained.append(batch)
        handle.enqueue_times[batch.seq] = time.perf_counter()

    # -- draining outputs ------------------------------------------

    def _absorb(self, handle: WorkerHandle, message: Any) -> None:
        if isinstance(message, ShardStopped):
            if message.error is None and handle.stop_sent:
                handle.stopped = True
            # An errored stop is followed by a nonzero exit; _check
            # recovers the worker once the process object reports dead.
            return
        output: ShardOutput = message
        self._pending_outputs.append(output)
        if output.seq > handle.acked_seq:
            handle.acked_seq = output.seq
            handle.records += output.records
            handle.batches += 1
            handle.busy_seconds += output.busy_seconds
            shipped_at = handle.enqueue_times.pop(output.seq, None)
            if shipped_at is not None:
                handle.latencies.append(
                    time.perf_counter() - shipped_at
                )
        if output.snapshot is not None and output.seq > handle.snapshot_seq:
            handle.snapshot = output.snapshot
            handle.snapshot_seq = output.seq
            handle.checkpoints += 1
            handle.retained = [
                b for b in handle.retained if b.seq > output.seq
            ]
            output.snapshot = None  # merged layers never need the bytes

    def _drain_handle(self, handle: WorkerHandle) -> None:
        out_queue = handle.out_queue
        if out_queue is None:
            return
        while True:
            try:
                message = out_queue.get_nowait()
            except queue_module.Empty:
                return
            except (EOFError, OSError):  # pragma: no cover - torn pipe
                return
            self._absorb(handle, message)

    def poll(self) -> List[ShardOutput]:
        """Drain worker outputs, recovering any dead workers en route."""
        for handle in self.handles:
            self._drain_handle(handle)
            self._check(handle)
        outputs = self._pending_outputs
        self._pending_outputs = []
        return outputs

    # -- shutdown ---------------------------------------------------

    def stop(self) -> None:
        """Ask every worker to finish its queue and exit."""
        for handle in self.handles:
            if not handle.stop_sent:
                handle.stop_sent = True
                self._put(handle, STOP)

    def drain_until_stopped(self, timeout: float = 60.0) -> List[ShardOutput]:
        """Collect outputs until every worker confirmed its stop.

        Raises:
            ServiceError: when a worker fails to stop within
                ``timeout`` seconds (after recoveries).
        """
        deadline = time.monotonic() + timeout
        outputs: List[ShardOutput] = []
        while True:
            outputs.extend(self.poll())
            if all(handle.stopped for handle in self.handles):
                break
            if time.monotonic() > deadline:
                raise ServiceError(
                    "shard workers did not stop within "
                    f"{timeout} seconds"
                )
            time.sleep(0.002)
        for handle in self.handles:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():  # pragma: no cover - stuck
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            self._discard_queues(handle)
        return outputs

    def terminate(self) -> None:
        """Hard-kill every worker (abandoning in-flight work)."""
        for handle in self.handles:
            process = handle.process
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            self._discard_queues(handle)
            handle.stopped = True


class InlineTransport:
    """Run every shard synchronously in the caller's process.

    The deterministic twin of :class:`Supervisor` used by property
    tests and debugging: identical interface and identical results for
    the partition/merge math, with no queues, processes, checkpoints or
    backpressure (nothing is ever dropped).
    """

    def __init__(
        self,
        configs: List[ShardConfig],
        queue_capacity: int = 8,
        backpressure: str = "block",
    ):
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ServiceError(
                f"unknown backpressure policy {backpressure!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        self.handles = [WorkerHandle(config) for config in configs]
        self._states = [ShardState(config) for config in configs]
        self._pending: List[ShardOutput] = []

    def ship(self, batch: Batch) -> None:
        """Process one batch immediately."""
        handle = self.handles[batch.shard]
        started = time.perf_counter()
        output = self._states[batch.shard].process(batch)
        output.busy_seconds = time.perf_counter() - started
        handle.acked_seq = output.seq
        handle.records += output.records
        handle.batches += 1
        handle.busy_seconds += output.busy_seconds
        self._pending.append(output)

    def poll(self) -> List[ShardOutput]:
        """Return outputs produced since the last poll."""
        outputs = self._pending
        self._pending = []
        return outputs

    def stop(self) -> None:
        """Mark every (synchronous) shard as stopped."""
        for handle in self.handles:
            handle.stop_sent = True
            handle.stopped = True

    def drain_until_stopped(self, timeout: float = 60.0) -> List[ShardOutput]:
        """Return any remaining outputs (always already complete)."""
        return self.poll()

    def terminate(self) -> None:
        """No processes to kill; marks shards stopped."""
        self.stop()
