"""Global-position slice arithmetic for the sharded service.

The shared plan (:mod:`repro.windows.plan`) expresses partial-aggregate
boundaries as edge offsets inside one composite cycle.  A single-process
engine walks those edges implicitly, one tuple at a time; a sharded
execution cannot, because each shard only sees a *subset* of the global
stream.  :class:`SliceClock` turns the plan's periodic edge pattern into
random-access arithmetic over global 1-based stream positions, so

* the router can stamp every shipped batch with a **watermark** (how
  many slices the positions shipped so far have fully closed),
* a shard can assign any of its records to its slice by global position
  alone, and
* the merger can recover each slice's end position (the position the
  single-process engine would report answers at).

Slice indices are 0-based and global: index ``k`` covers the ``k``-th
edge-delimited stretch of the whole stream, across all cycles.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.windows.plan import PlanStep, SharedPlan


class SliceClock:
    """Random-access mapping between stream positions and plan slices.

    Args:
        plan: The shared execution plan whose edge pattern to expand.
    """

    def __init__(self, plan: SharedPlan):
        self.plan = plan
        self._cycle = plan.cycle_length
        self._edges = plan.edges  # ascending offsets in 1..cycle_length
        self._per_cycle = len(plan.edges)

    @property
    def slices_per_cycle(self) -> int:
        """Number of slices in one composite cycle."""
        return self._per_cycle

    def slices_closed_by(self, position: int) -> int:
        """How many slices end at positions ``<= position``.

        This is the router's watermark: once every record with a global
        position up to ``position`` has been shipped, exactly this many
        slices can be finalised.
        """
        full_cycles, remainder = divmod(position, self._cycle)
        return (
            full_cycles * self._per_cycle
            + bisect_right(self._edges, remainder)
        )

    def slice_of(self, position: int) -> int:
        """0-based index of the slice containing stream ``position``."""
        return self.slices_closed_by(position - 1)

    def end_position(self, index: int) -> int:
        """1-based stream position of the last tuple in slice ``index``."""
        cycle_number, within = divmod(index, self._per_cycle)
        return cycle_number * self._cycle + self._edges[within]

    def step_of(self, index: int) -> PlanStep:
        """The plan step that closes slice ``index``."""
        return self.plan.steps[index % self._per_cycle]
