"""The sharded aggregation service facade.

:class:`AggregationService` glues the subsystem together: a
:class:`~repro.service.partition.Router` frames keyed records into
micro-batches, a transport (process-backed
:class:`~repro.service.supervisor.Supervisor` or in-process
:class:`~repro.service.supervisor.InlineTransport`) runs the shard
pipelines, and a merge layer turns shard outputs into answers —
globally merged for mergeable operators, per key otherwise.

Usage::

    from repro import AggregationService, Query, get_operator

    service = AggregationService(
        [Query(8, 4), Query(6, 2)], get_operator("sum"), num_shards=4
    )
    for key, value in keyed_stream:
        service.submit(key, value)
        for position, query, answer in service.poll():
            ...
    result = service.close()     # remaining answers + stats

In global mode the emitted ``(position, query, answer)`` triples are
identical to a single-process :class:`~repro.stream.engine.StreamEngine`
run over the same records in submission order (exactly, for exact-value
streams such as integers; floating-point answers may differ by
rounding, since cross-shard recombination reorders the fold).

Failure handling (see ``docs/fault_tolerance.md`` for the full model):
poison records are quarantined to the service's
:class:`~repro.stream.sink.DeadLetterSink`; crashed workers are
restored from CRC-verified checkpoints within a per-shard restart
budget; a shard that exhausts the budget is reported in
``stats.failed_shards`` with its keys in ``stats.degraded_keys``,
and the rest of the service keeps answering.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.multiquery import Answer
from repro.errors import OutOfOrderError, ServiceError
from repro.metrics import Summary, ThroughputResult, maybe_summary
from repro.service.merge import EventTimeMerger, GlobalMerger, PerKeyCollator
from repro.service.partition import Router, shard_of
from repro.service.shard import SHARD_MODES, ShardConfig
from repro.service.slices import SliceClock
from repro.service.supervisor import (
    DEFAULT_RING_CAPACITY,
    InlineTransport,
    Supervisor,
)
from repro.operators.base import AggregateOperator
from repro.stream.outoforder import LATE_POLICIES, TimestampReorderBuffer
from repro.stream.sink import DeadLetter, DeadLetterSink
from repro.windows.plan import build_shared_plan
from repro.windows.query import Query
from repro.windows.timebased import DEFAULT_RESOLUTION, TimeQuery


@dataclass(frozen=True)
class ShardStats:
    """Per-shard instrumentation, aggregated from acknowledgements."""

    shard_id: int
    records: int
    batches: int
    busy_seconds: float
    checkpoints: int
    restores: int
    dropped: int
    #: Stall-detector kills (worker alive but silent past the timeout).
    stalls: int = 0
    #: Checkpoint generations rejected by their CRC32 check.
    corrupt_checkpoints: int = 0
    #: The shard exhausted its restart budget and was abandoned.
    failed: bool = False

    @property
    def throughput(self) -> ThroughputResult:
        """Records folded per busy second inside the worker."""
        return ThroughputResult(
            slides=self.records, seconds=self.busy_seconds
        )


@dataclass(frozen=True)
class ServiceStats:
    """Whole-service instrumentation for one run."""

    shards: Tuple[ShardStats, ...]
    records_submitted: int
    records_processed: int
    dropped_records: int
    answers_emitted: int
    elapsed_seconds: float
    #: Ship-to-acknowledge latency per batch (process transport only;
    #: a bounded uniform sample on long runs).
    batch_latency: Optional[Summary]
    #: Records quarantined to the dead-letter sink (poison records
    #: plus the backlog of any failed shard).
    dead_letters: int = 0
    #: Shards that exhausted their restart budget, ascending.
    failed_shards: Tuple[int, ...] = ()
    #: Keys whose answers are degraded/stale: every key routed to a
    #: failed shard, plus per-key-mode keys poisoned mid-stream.
    degraded_keys: Tuple[Any, ...] = ()
    #: Data-plane accounting (plane name, columnar/pickled/spilled
    #: frame counts, encode/ring-wait/decode seconds); ``None`` only
    #: on results predating the transport layer.
    transport: Optional[Dict[str, Any]] = None
    #: Event-time records rejected as late (behind the bounded-lateness
    #: watermark) over the run; always ``0`` outside ``"time"`` mode.
    late_records: int = 0

    @property
    def degraded(self) -> bool:
        """Whether any part of the run's answers must be treated as stale."""
        return bool(self.failed_shards or self.degraded_keys)

    @property
    def ingest_throughput(self) -> ThroughputResult:
        """Submitted records per wall-clock second, end to end."""
        return ThroughputResult(
            slides=self.records_submitted, seconds=self.elapsed_seconds
        )


@dataclass(frozen=True)
class ServiceResult:
    """Everything :meth:`AggregationService.close` hands back.

    Attributes:
        answers: Global-mode answers ``(position, query, answer)`` in
            plan order; empty in per-key mode.
        per_key: Per-key-mode answers grouped by key (positions are
            per-key stream positions); empty in global mode.
        stats: Run instrumentation.
        dead_letters: Quarantined records, in quarantine order (also
            available on the service's dead-letter sink).
    """

    answers: List[Answer]
    per_key: Dict[Any, List[Tuple[int, Query, Any]]]
    stats: ServiceStats
    dead_letters: List[DeadLetter] = field(default_factory=list)


class AggregationService:
    """Sharded, multi-process sliding-window aggregation.

    Args:
        queries: The ACQ set, shared by every shard.
        operator: The aggregate operator.  Global mode requires the
            ``mergeable`` capability plus a SlickDeque path; per-key
            mode accepts any engine-supported operator.
        num_shards: Worker (partition) count.
        technique: Partial-aggregation technique (``panes``/``pairs``).
        mode: ``"global"`` for merged whole-stream answers,
            ``"per_key"`` for independent per-key windows.
        batch_size: Records per shard buffered before a flush round.
        queue_capacity: Inbound queue bound per shard, in batches.
        backpressure: ``"block"`` (lossless), ``"drop"`` or
            ``"sample"`` (load shedding with exact drop counts).
        checkpoint_interval: Shard checkpoint period in batches
            (``0`` disables checkpointing; recovery then replays the
            whole retained history).
        transport: ``"process"`` (real workers, fault tolerance) or
            ``"inline"`` (synchronous in-process shards, deterministic).
        shard_delay_seconds: Test/benchmark knob — artificial per-batch
            worker delay for simulating slow consumers.
        max_restarts: Worker recoveries allowed per shard before the
            shard is declared failed and its keys degraded.
        restart_backoff: Base seconds of the exponential pre-respawn
            backoff (doubles per consecutive restore, capped).
        stall_timeout: Seconds of worker silence (with work
            outstanding) before the stall detector kills and recovers
            it; ``0`` disables stall detection.
        heartbeat_interval: Worker idle-heartbeat period feeding the
            stall detector; ``0`` disables heartbeats.
        poison_policy: ``"quarantine"`` (default) routes poison
            records to the dead-letter sink; ``"raise"`` lets them
            kill the worker (debugging only).
        dead_letter_sink: Sink receiving quarantined records; a fresh
            :class:`~repro.stream.sink.DeadLetterSink` by default.
        injector: Optional
            :class:`~repro.service.chaos.FaultInjector` wired through
            the supervisor's lifecycle hooks (tests only).
        telemetry: Optional :class:`~repro.telemetry.Telemetry` hub.
            When set (at construction or later via
            :meth:`attach_telemetry`) the service observes per-batch
            shard-fold and merge latencies into the hub's registry and
            attributes them to submission traces; when ``None`` every
            hot path pays only a ``None`` check.
        data_plane: Process-transport data plane: ``"auto"`` (columnar
            shared-memory rings where the platform supports them, else
            the pickle queue transport), ``"shm"``, or ``"pickle"``.
            Ignored by the inline transport.
        ring_capacity: Per-ring byte capacity of the shm data plane.
        lateness: ``"time"`` mode — bounded-lateness allowance in
            seconds: a record may arrive this far behind the newest
            event timestamp and still land in its window exactly.
        late_policy: ``"time"`` mode — what happens to a record behind
            the watermark: ``"raise"`` surfaces
            :class:`~repro.errors.LateRecordError` to the submitter,
            ``"drop"`` quarantines it to the dead-letter sink,
            ``"side_output"`` only counts it.
        origin: ``"time"`` mode — timestamp of the first time-slice
            boundary; records before it are rejected.
        resolution: ``"time"`` mode — duration resolution of the
            time-to-count reduction (1 ms by default).
    """

    def __init__(
        self,
        queries: Sequence[Query],
        operator: AggregateOperator,
        num_shards: int = 4,
        technique: str = "pairs",
        mode: str = "global",
        batch_size: int = 64,
        queue_capacity: int = 8,
        backpressure: str = "block",
        checkpoint_interval: int = 16,
        transport: str = "process",
        shard_delay_seconds: float = 0.0,
        max_restarts: int = 5,
        restart_backoff: float = 0.05,
        stall_timeout: float = 10.0,
        heartbeat_interval: float = 0.25,
        poison_policy: str = "quarantine",
        dead_letter_sink: Optional[DeadLetterSink] = None,
        injector: Optional[Any] = None,
        telemetry: Optional[Any] = None,
        data_plane: str = "auto",
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        lateness: float = 0.0,
        late_policy: str = "raise",
        origin: float = 0.0,
        resolution: float = DEFAULT_RESOLUTION,
    ):
        if num_shards < 1:
            raise ServiceError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        if mode not in SHARD_MODES:
            raise ServiceError(
                f"unknown service mode {mode!r}; expected one of "
                f"{SHARD_MODES}"
            )
        if late_policy not in LATE_POLICIES:
            raise ServiceError(
                f"unknown late-record policy {late_policy!r}; "
                f"expected one of {LATE_POLICIES}"
            )
        self.queries = tuple(queries)
        self.operator = operator
        self.mode = mode
        self.num_shards = num_shards
        #: Quarantine for poison records and failed-shard backlogs.
        self.dead_letters = (
            dead_letter_sink
            if dead_letter_sink is not None
            else DeadLetterSink()
        )
        self._merger: Optional[Any] = None
        self._collator: Optional[PerKeyCollator] = None
        self._ingress: Optional[TimestampReorderBuffer] = None
        self._time_clock = None
        self._late_policy = late_policy
        self._late_seq = 0
        self._late_by_shard = [0] * num_shards
        clock = None
        event_time = False
        slice_seconds = 0.0
        if mode == "global":
            self._merger = GlobalMerger(
                self.queries, operator, technique, num_shards
            )
            clock = self._merger.clock
        elif mode == "time":
            for query in self.queries:
                if not isinstance(query, TimeQuery):
                    raise ServiceError(
                        "time mode requires TimeQuery queries, got "
                        f"{query!r}"
                    )
            self._merger = EventTimeMerger(
                self.queries,
                operator,
                technique,
                num_shards,
                origin=origin,
                resolution=resolution,
            )
            self._time_clock = self._merger.clock
            slice_seconds = self._merger.slice_seconds
            event_time = True
            # The ingress reorder buffer releases records in timestamp
            # order; ``drop`` diverts late records to the dead-letter
            # sink, ``side_output`` only counts them, and ``raise``
            # never reaches the handler.
            self._ingress = TimestampReorderBuffer(
                lateness, late_policy, on_late=self._on_late_record
            )
        else:
            # Validate the plan eagerly (same errors as global mode).
            build_shared_plan(self.queries, technique)
            self._collator = PerKeyCollator()
        self.origin = origin
        self.slice_seconds = slice_seconds
        self._router = Router(
            num_shards, batch_size, clock, event_time=event_time
        )
        configs = [
            ShardConfig(
                shard_id=shard,
                num_shards=num_shards,
                queries=self.queries,
                operator=operator,
                technique=technique,
                mode=mode,
                checkpoint_interval=checkpoint_interval,
                throttle_seconds=shard_delay_seconds,
                heartbeat_interval=heartbeat_interval,
                poison_policy=poison_policy,
                slice_seconds=slice_seconds,
                origin=origin,
            )
            for shard in range(num_shards)
        ]
        self._failed_shards: Dict[int, str] = {}
        self._degraded_keys: List[Any] = []
        self._letter_positions: set = set()
        if transport == "process":
            self._transport: Any = Supervisor(
                configs,
                queue_capacity,
                backpressure,
                injector=injector,
                max_restarts=max_restarts,
                restart_backoff=restart_backoff,
                stall_timeout=stall_timeout,
                on_shard_failed=self._on_shard_failed,
                data_plane=data_plane,
                ring_capacity=ring_capacity,
            )
        elif transport == "inline":
            self._transport = InlineTransport(
                configs, queue_capacity, backpressure
            )
        else:
            raise ServiceError(
                f"unknown transport {transport!r}; expected 'process' "
                "or 'inline'"
            )
        self._answers: List[Answer] = []
        self._fresh_answers: List[Answer] = []
        self._fresh_per_key: List[Tuple[Any, int, Query, Any]] = []
        self._closed = False
        self._started_at = time.perf_counter()
        # Telemetry: instrument handles are bound in attach_telemetry
        # so the uninstrumented hot path is a single None check.
        self._telemetry: Optional[Any] = None
        self._fold_hist: Optional[Any] = None
        self._merge_hist: Optional[Any] = None
        self._records_counter: Optional[Any] = None
        self._answers_counter: Optional[Any] = None
        self._dead_letter_counter: Optional[Any] = None
        self._transport_hists: Dict[str, Any] = {}
        self._ring_gauges: List[Any] = []
        self._watermark_gauges: List[Any] = []
        self._late_counters: List[Any] = []
        # (first_position, last_position, trace_id) per traced submit
        # call, consumed ascending as answers pass their positions.
        self._trace_intervals: deque = deque()
        self._max_trace_intervals = 4096
        if telemetry is not None:
            self.attach_telemetry(telemetry)

    # -- telemetry --------------------------------------------------

    def attach_telemetry(self, telemetry: Any) -> None:
        """Bind a :class:`~repro.telemetry.Telemetry` hub to observe into.

        Registers the service's per-stage histograms and counters on
        the hub's registry (idempotent for the same hub: instruments
        are get-or-create).  May be called after construction — the
        network server uses this to point an already-built service at
        its own hub so one exposition covers every stage.
        """
        registry = telemetry.registry
        self._telemetry = telemetry
        self._fold_hist = registry.histogram(
            "repro_shard_fold_seconds",
            "Per-batch shard worker fold latency (busy time)",
        )
        self._merge_hist = registry.histogram(
            "repro_merge_seconds",
            "Per-output global merge frontier-advance latency",
        )
        self._records_counter = registry.counter(
            "repro_service_records_processed_total",
            "Records folded by shard workers",
        )
        self._answers_counter = registry.counter(
            "repro_service_answers_total",
            "Answers released by the merge layer",
        )
        self._dead_letter_counter = registry.counter(
            "repro_service_dead_letters_total",
            "Records quarantined to the dead-letter sink",
        )
        self._transport_hists = {
            "encode": registry.histogram(
                "repro_transport_encode_seconds",
                "Per-batch columnar/pickle frame encode latency",
            ),
            "ring_wait": registry.histogram(
                "repro_transport_ring_wait_seconds",
                "Backpressure wait for shared-memory ring capacity",
            ),
            "decode": registry.histogram(
                "repro_transport_decode_seconds",
                "Worker-side per-batch ring frame decode latency",
            ),
        }
        self._ring_gauges = [
            registry.gauge(
                "repro_transport_ring_occupancy",
                "Shared-memory ring occupancy fraction (fuller ring)",
                labels={"shard": str(shard)},
            )
            for shard in range(self.num_shards)
        ]
        if self._ingress is not None:
            self._watermark_gauges = [
                registry.gauge(
                    "repro_watermark_lag_seconds",
                    "Event-time gap between the newest timestamp seen "
                    "and the slices the shard has closed",
                    labels={"shard": str(shard)},
                )
                for shard in range(self.num_shards)
            ]
            self._late_counters = [
                registry.counter(
                    "repro_late_records_total",
                    "Event-time records rejected behind the watermark",
                    labels={"shard": str(shard)},
                )
                for shard in range(self.num_shards)
            ]
        self._transport.transport_observer = self._observe_transport

    def _observe_transport(self, stage: str, seconds: float) -> None:
        """Supervisor callback: one transport-stage latency sample."""
        histogram = self._transport_hists.get(stage)
        if histogram is not None:
            histogram.observe(seconds)

    @property
    def telemetry(self) -> Optional[Any]:
        """The attached telemetry hub, or ``None``."""
        return self._telemetry

    def _note_trace_interval(self, first: int, last: int, trace_id):
        """Remember that positions ``first..last`` belong to a trace."""
        if trace_id is None or first > last:
            return
        self._trace_intervals.append((first, last, trace_id))
        while len(self._trace_intervals) > self._max_trace_intervals:
            self._trace_intervals.popleft()

    def _trace_for_position(self, position: int) -> Optional[int]:
        """Trace owning a (monotone ascending) answer position.

        Intervals wholly behind ``position`` are pruned as a side
        effect, keeping the scan O(1) amortised over a run.
        """
        intervals = self._trace_intervals
        while intervals and intervals[0][1] < position:
            intervals.popleft()
        for first, last, trace_id in intervals:
            if first > position:
                return None
            if position <= last:
                return trace_id
        return None

    # -- ingestion --------------------------------------------------

    def submit(
        self, key: Any, value: Any, trace_id: Optional[int] = None
    ) -> None:
        """Ingest one keyed record, optionally attributed to a trace."""
        if self._closed:
            raise ServiceError("cannot submit to a closed service")
        if self._ingress is not None:
            raise ServiceError(
                "time-mode service requires submit_event (records "
                "must carry an event timestamp)"
            )
        if trace_id is not None:
            self._note_trace_interval(
                self._router.position + 1,
                self._router.position + 1,
                trace_id,
            )
        for batch in self._router.put(key, value, trace_id):
            self._transport.ship(batch)

    def submit_many(
        self,
        records: Iterable[Tuple[Any, Any]],
        trace_id: Optional[int] = None,
    ) -> None:
        """Ingest ``(key, value)`` pairs, optionally under one trace.

        Contiguous same-key runs are routed through the router's
        column path (one shard lookup and one buffer extend per run),
        matching the run-grouped fold on the shard side.
        """
        if self._closed:
            raise ServiceError("cannot submit to a closed service")
        if self._ingress is not None:
            raise ServiceError(
                "time-mode service requires submit_events (records "
                "must carry event timestamps)"
            )
        first = self._router.position + 1
        for batch in self._router.put_many(records, trace_id):
            self._transport.ship(batch)
        if trace_id is not None and self._router.position >= first:
            self._note_trace_interval(
                first, self._router.position, trace_id
            )

    def submit_column(
        self,
        key: Any,
        values: Sequence[Any],
        trace_id: Optional[int] = None,
    ) -> None:
        """Ingest a column of values for one key (bulk fast path).

        Equivalent to ``submit(key, v)`` per value but pays the shard
        lookup once and frames the column straight into per-shard
        buffers; the network layer's ``SUBMIT_COLUMN`` request lands
        here.
        """
        if self._closed:
            raise ServiceError("cannot submit to a closed service")
        if self._ingress is not None:
            raise ServiceError(
                "time-mode service requires submit_events (records "
                "must carry event timestamps)"
            )
        first = self._router.position + 1
        for batch in self._router.put_column(key, values, trace_id):
            self._transport.ship(batch)
        if trace_id is not None and self._router.position >= first:
            self._note_trace_interval(
                first, self._router.position, trace_id
            )

    # -- event-time ingestion ---------------------------------------

    def submit_event(
        self,
        key: Any,
        value: Any,
        timestamp: float,
        trace_id: Optional[int] = None,
    ) -> None:
        """Ingest one event-timestamped record (``"time"`` mode).

        The record enters the bounded-lateness reorder buffer; records
        the arrival *releases* (their timestamps are final — nothing
        older can be admitted any more) are routed to their shards in
        timestamp order, after which the router's slice watermark
        advances to the slices the event watermark has closed.  A
        record behind the watermark is handled per the configured late
        policy (raise / drop / side-output).

        Raises:
            LateRecordError: under the ``"raise"`` policy, when the
                record's timestamp is behind the watermark.
            OutOfOrderError: when the timestamp is non-finite
                (NaN/±inf) or precedes ``origin``.
        """
        if self._closed:
            raise ServiceError("cannot submit to a closed service")
        ingress = self._ingress
        if ingress is None:
            raise ServiceError(
                f"submit_event requires mode='time', not {self.mode!r}"
            )
        # NaN passes the origin check below (NaN comparisons are all
        # False) and would wedge the reorder buffer's release scan
        # forever; +inf would mark every later record late.  Reject
        # both before any state is touched.
        if not math.isfinite(timestamp):
            raise OutOfOrderError(
                f"event timestamp must be finite, got {timestamp!r}",
                position=timestamp,
                watermark=ingress.watermark,
            )
        if timestamp < self.origin:
            raise OutOfOrderError(
                f"timestamp {timestamp} precedes the origin "
                f"{self.origin}",
                position=timestamp,
                watermark=self.origin,
            )
        arrived = (
            time.perf_counter()
            if trace_id is not None and self._telemetry is not None
            else None
        )
        router = self._router
        for released_ts, (rkey, rvalue, trace, waited_since) in (
            ingress.push(timestamp, (key, value, trace_id, arrived))
        ):
            if waited_since is not None:
                # Attribute the record's reorder-buffer residence to
                # its trace: the gap between submission and release is
                # exactly the wait the lateness bound imposes.
                self._telemetry.tracer.record(
                    trace, "reorder", time.perf_counter() - waited_since
                )
            for batch in router.put_event(rkey, rvalue, released_ts, trace):
                self._transport.ship(batch)
        # Advance the slice watermark only after every released record
        # is routed: a flush racing mid-release then stamps the older
        # (conservative) watermark, never one promising records that
        # are still in flight.
        router.watermark.advance(
            self._time_clock.slices_closed_by(ingress.watermark)
        )

    def submit_events(
        self,
        records: Iterable[Tuple[Any, float, Any]],
        trace_id: Optional[int] = None,
    ) -> None:
        """Ingest ``(key, timestamp, value)`` triples (``"time"`` mode)."""
        for key, timestamp, value in records:
            self.submit_event(key, value, timestamp, trace_id)

    def _on_late_record(self, timestamp: float, item: Any) -> None:
        """Reorder-buffer callback for a late record (drop/side-output).

        Counts the drop against the record's would-be shard and, under
        the ``"drop"`` policy, quarantines it to the dead-letter sink
        with a synthetic (negative) position — late records never
        receive a stream position, and the unique negative keeps the
        sink's per-position deduplication intact.
        """
        key, value, _trace, _arrived = item
        shard = self._router._shard_cache.get(key)
        if shard is None:
            shard = shard_of(key, self.num_shards)
        self._late_by_shard[shard] += 1
        if self._late_counters:
            self._late_counters[shard].inc(1)
        if self._late_policy == "drop":
            self._late_seq -= 1
            self._quarantine(
                [
                    DeadLetter(
                        key=key,
                        value=value,
                        position=self._late_seq,
                        shard_id=shard,
                        error=(
                            f"LateRecordError: timestamp {timestamp!r} "
                            f"behind watermark "
                            f"{self._ingress.watermark!r} (lateness "
                            f"bound {self._ingress.lateness!r})"
                        ),
                    )
                ]
            )

    # -- failure reporting ------------------------------------------

    def _on_shard_failed(self, shard_id: int, reason: str) -> None:
        """Supervisor callback: record the failure, unwedge the merge."""
        self._failed_shards[shard_id] = reason
        for key in sorted(
            self._router.seen_keys[shard_id], key=repr
        ):
            self._mark_degraded(key)
        if self._merger is not None:
            released = self._merger.mark_failed(shard_id)
            self._answers.extend(released)
            self._fresh_answers.extend(released)

    def _mark_degraded(self, key: Any) -> None:
        if key not in self._degraded_keys:
            self._degraded_keys.append(key)

    def _quarantine(self, letters: Iterable[DeadLetter]) -> None:
        """Deduplicate (replays re-emit letters) and sink dead letters."""
        for letter in letters:
            if letter.position in self._letter_positions:
                continue
            self._letter_positions.add(letter.position)
            self.dead_letters.quarantine(letter)

    # -- answers ----------------------------------------------------

    def _absorb(self, outputs) -> None:
        self._quarantine(self._transport.take_dead_letters())
        telemetry = self._telemetry
        for output in outputs:
            if output.dead_letters:
                self._quarantine(output.dead_letters)
            for key in output.degraded_keys:
                self._mark_degraded(key)
            if telemetry is not None:
                self._observe_output(telemetry, output)
            if self._merger is not None:
                if telemetry is None:
                    released = self._merger.on_output(output)
                else:
                    started = time.perf_counter()
                    released = self._merger.on_output(output)
                    merge_seconds = time.perf_counter() - started
                    self._merge_hist.observe(merge_seconds)
                    if released:
                        self._answers_counter.inc(len(released))
                    tracer = telemetry.tracer
                    for trace_id in output.trace_ids:
                        tracer.record(
                            trace_id, "merge", merge_seconds
                        )
                self._answers.extend(released)
                self._fresh_answers.extend(released)
            else:
                self._fresh_per_key.extend(
                    self._collator.on_output(output)
                )

    def _observe_output(self, telemetry, output) -> None:
        """Record one shard output's instrumentation into the hub.

        The fold ran in the worker (possibly another process); its
        ``busy_seconds`` is attributed here, parent-side, both to the
        fold histogram and to every trace the batch carried — the
        worker itself stays telemetry-free.
        """
        if output.records or output.busy_seconds:
            self._fold_hist.observe(output.busy_seconds)
        if output.records:
            self._records_counter.inc(output.records)
        if output.dead_letters:
            self._dead_letter_counter.inc(len(output.dead_letters))
        tracer = telemetry.tracer
        for trace_id in output.trace_ids:
            tracer.record(
                trace_id, "shard_fold", output.busy_seconds
            )

    def poll(self) -> List[Answer]:
        """Return answers released since the last poll.

        Global mode returns ``(position, query, answer)`` triples;
        per-key mode returns ``(key, position, query, answer)``
        tuples.  Dead workers are detected (and recovered) here and in
        :meth:`submit`, so ingest-only phases still self-heal.
        """
        self._absorb(self._transport.poll())
        if self._ring_gauges:
            for gauge, ratio in zip(
                self._ring_gauges, self._transport.ring_occupancy()
            ):
                gauge.set(ratio)
        if self._watermark_gauges:
            self._update_watermark_gauges()
        if self._merger is not None:
            fresh: List[Any] = self._fresh_answers
            self._fresh_answers = []
        else:
            fresh = self._fresh_per_key
            self._fresh_per_key = []
        return fresh

    def poll_traced(
        self,
    ) -> List[Tuple[Answer, Optional[int]]]:
        """Like :meth:`poll`, pairing each answer with its trace id.

        A global-mode answer is attributed to the trace of the
        submission that contained the record closing its window
        (``None`` for untraced submissions).  Per-key answers carry
        per-key stream positions, which the position→trace map cannot
        resolve, so they are returned untraced.
        """
        fresh = self.poll()
        if self._merger is None or self._ingress is not None:
            # Per-key positions and event-time window ends both live
            # outside the global arrival-position domain the
            # position→trace map indexes, so they return untraced.
            return [(answer, None) for answer in fresh]
        return [
            (answer, self._trace_for_position(answer[0]))
            for answer in fresh
        ]

    def _update_watermark_gauges(self) -> None:
        """Refresh the per-shard watermark-lag gauges (time mode).

        Lag is the event-time distance between the newest timestamp the
        ingress has seen and the end of the last slice the shard has
        acknowledged closing — how far the shard's frontier trails the
        stream, in stream seconds.
        """
        high = self._ingress.high
        if high == -math.inf:
            return
        slice_seconds = self.slice_seconds
        origin = self.origin
        for gauge, handle in zip(
            self._watermark_gauges, self._transport.handles
        ):
            closed_until = origin + handle.watermark * slice_seconds
            gauge.set(max(0.0, high - closed_until))

    @property
    def late_records(self) -> int:
        """Event-time records rejected as late so far (``0`` otherwise)."""
        return (
            self._ingress.late_records if self._ingress is not None else 0
        )

    def event_time_stats(self) -> Optional[Dict[str, Any]]:
        """Event-time progress snapshot, or ``None`` outside time mode.

        Surfaced through the gateway's STATS payload so remote clients
        can watch the watermark advance and late drops accumulate.
        """
        ingress = self._ingress
        if ingress is None:
            return None
        return {
            "watermark": (
                None if ingress.watermark == -math.inf else ingress.watermark
            ),
            "high": None if ingress.high == -math.inf else ingress.high,
            "lateness": ingress.lateness,
            "late_policy": self._late_policy,
            "late_records": ingress.late_records,
            "late_by_shard": list(self._late_by_shard),
            "pending_reorder": len(ingress),
            "slice_seconds": self.slice_seconds,
            "closed_slices": self._router.watermark.value,
        }

    # -- shutdown ---------------------------------------------------

    def close(self, timeout: float = 60.0) -> ServiceResult:
        """Flush, stop every worker, and return the complete result."""
        if self._closed:
            raise ServiceError("service already closed")
        self._closed = True
        ingress = self._ingress
        if ingress is not None:
            # End of stream: every buffered record's timestamp is now
            # final — release them in order, then close through the
            # last occupied slice (the event-time analogue of
            # TimeWindowEngine.finish closing its open slice).
            for released_ts, (rkey, rvalue, trace, waited_since) in (
                ingress.drain()
            ):
                if waited_since is not None and self._telemetry is not None:
                    self._telemetry.tracer.record(
                        trace,
                        "reorder",
                        time.perf_counter() - waited_since,
                    )
                for batch in self._router.put_event(
                    rkey, rvalue, released_ts, trace
                ):
                    self._transport.ship(batch)
            if ingress.high != -math.inf:
                self._router.watermark.advance(
                    self._time_clock.slice_of(ingress.high) + 1
                )
        for batch in self._router.flush():
            self._transport.ship(batch)
        self._transport.stop()
        self._absorb(self._transport.drain_until_stopped(timeout))
        elapsed = time.perf_counter() - self._started_at
        shards = tuple(
            ShardStats(
                shard_id=handle.config.shard_id,
                records=handle.records,
                batches=handle.batches,
                busy_seconds=handle.busy_seconds,
                checkpoints=handle.checkpoints,
                restores=handle.restores,
                dropped=handle.dropped,
                stalls=getattr(handle, "stalls", 0),
                corrupt_checkpoints=getattr(
                    handle, "corrupt_checkpoints", 0
                ),
                failed=getattr(handle, "failed", False),
            )
            for handle in self._transport.handles
        )
        latencies: List[float] = []
        for handle in self._transport.handles:
            latencies.extend(handle.latencies)
        per_key = (
            dict(self._collator.answers)
            if self._collator is not None
            else {}
        )
        answers_emitted = len(self._answers) + sum(
            len(rows) for rows in per_key.values()
        )
        stats = ServiceStats(
            shards=shards,
            records_submitted=self._router.position,
            records_processed=sum(s.records for s in shards),
            dropped_records=sum(s.dropped for s in shards),
            answers_emitted=answers_emitted,
            elapsed_seconds=elapsed,
            batch_latency=maybe_summary(latencies),
            dead_letters=len(self.dead_letters),
            failed_shards=tuple(sorted(self._failed_shards)),
            degraded_keys=tuple(self._degraded_keys),
            transport=self._transport.transport_stats(),
            late_records=self.late_records,
        )
        return ServiceResult(
            answers=list(self._answers),
            per_key=per_key,
            stats=stats,
            dead_letters=list(self.dead_letters.letters),
        )

    def abort(self) -> None:
        """Hard-stop the service, abandoning in-flight work."""
        self._closed = True
        self._transport.terminate()

    # -- introspection ----------------------------------------------

    def shard_pids(self) -> List[Optional[int]]:
        """Worker process ids (``None`` entries on inline transport).

        Exposed for fault-injection tests and operational tooling.
        """
        pids: List[Optional[int]] = []
        for handle in self._transport.handles:
            process = getattr(handle, "process", None)
            pids.append(process.pid if process is not None else None)
        return pids

    def failed_shards(self) -> Dict[int, str]:
        """Shards that exhausted their restart budget, with reasons."""
        return dict(self._failed_shards)

    def transport_stats(self) -> Dict[str, Any]:
        """Live data-plane accounting (also on ``close().stats``).

        Keys: ``data_plane`` (the resolved plane actually running),
        ``frames_columnar`` / ``frames_pickled`` / ``frames_spilled``
        frame counts, and cumulative ``encode_seconds`` /
        ``ring_wait_seconds`` / ``decode_seconds``.
        """
        return self._transport.transport_stats()

    def __enter__(self) -> "AggregationService":
        """Context-manager entry: the service itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close cleanly on success, abort on error."""
        if self._closed:
            return
        if exc_type is None:
            self.close()
        else:
            self.abort()
