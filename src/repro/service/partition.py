"""Key-partitioned routing with micro-batch framing and load shedding.

The ingestion front of the sharded service: records enter keyed, get a
global 1-based position, and are hash-partitioned by key into per-shard
buffers.  Buffers are framed into :class:`Batch` messages in *flush
rounds* — whenever any shard's buffer reaches the configured batch size
(or at end of stream) every shard's buffer is framed simultaneously, so
each round carries one uniform slice **watermark** to all shards.  That
uniformity is what lets the cross-shard merger finalise slices without
per-shard punctuations.

Load shedding lives here as pure, process-free helpers
(:func:`drop_records`, :func:`thin_batch`); the transport layer decides
*when* to shed (its queue is full) and these decide *what* to shed,
keeping an exact dropped-record count either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.service.slices import SliceClock

#: Backpressure policies for a full shard queue: ``block`` waits for
#: capacity (lossless), ``drop`` sheds the whole batch's records,
#: ``sample`` keeps every other record and ships the thinned batch.
BACKPRESSURE_POLICIES = ("block", "drop", "sample")

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_FNV_MASK = 0xFFFFFFFFFFFFFFFF


def stable_hash(key: Any) -> int:
    """64-bit FNV-1a over ``repr(key)`` — stable across processes.

    The builtin ``hash`` is salted per process for strings (PEP 456),
    which would scatter a key to different shards across restarts and
    break checkpoint recovery; this hash is deterministic for any key
    with a stable ``repr`` (strings, numbers, tuples thereof).
    """
    value = _FNV_OFFSET
    for byte in repr(key).encode("utf-8"):
        value = ((value ^ byte) * _FNV_PRIME) & _FNV_MASK
    return value


def shard_of(key: Any, num_shards: int) -> int:
    """The shard owning ``key`` under stable hash partitioning."""
    return stable_hash(key) % num_shards


@dataclass
class Batch:
    """One framed micro-batch for one shard.

    Attributes:
        shard: Destination shard index.
        seq: Per-shard batch sequence number, 1-based and gapless in
            ship order — the unit of acknowledgement and replay.
        watermark: Slices fully closed by the global stream at frame
            time (every record of those slices has been framed, across
            all shards of the same flush round).
        positions: Global 1-based positions of the records.
        keys: Record keys, parallel to ``positions``.
        values: Record payloads, parallel to ``positions``.
        traces: Per-record trace ids, parallel to ``positions`` — or
            ``None`` (the common case) when no record of the batch is
            traced, so untraced batches pay nothing for the field.
    """

    shard: int
    seq: int
    watermark: int
    positions: List[int] = field(default_factory=list)
    keys: List[Any] = field(default_factory=list)
    values: List[Any] = field(default_factory=list)
    traces: Optional[List[Optional[int]]] = None

    def __len__(self) -> int:
        """Number of records framed in this batch."""
        return len(self.positions)


def drop_records(batch: Batch) -> Tuple[Batch, int]:
    """Shed every record, keeping the batch as a watermark carrier.

    The empty frame must still be delivered — sequence numbers stay
    gapless and the watermark keeps the cross-shard merge progressing —
    but it occupies one queue slot with near-zero payload.
    """
    dropped = len(batch)
    return Batch(batch.shard, batch.seq, batch.watermark), dropped


def thin_batch(batch: Batch, keep_every: int = 2) -> Tuple[Batch, int]:
    """Deterministically keep every ``keep_every``-th record.

    Used by the ``sample`` backpressure policy: under pressure the
    batch is halved (by default) instead of fully shed, trading answer
    fidelity for bounded queue growth without losing batch framing.
    """
    if keep_every < 2:
        raise ServiceError(
            f"thin_batch keep_every must be >= 2, got {keep_every}"
        )
    kept = slice(None, None, keep_every)
    thinned = Batch(
        batch.shard,
        batch.seq,
        batch.watermark,
        batch.positions[kept],
        batch.keys[kept],
        batch.values[kept],
        batch.traces[kept] if batch.traces is not None else None,
    )
    return thinned, len(batch) - len(thinned)


class Router:
    """Assign global positions and frame per-shard micro-batches.

    Args:
        num_shards: Number of shard partitions.
        batch_size: Records buffered per shard before a flush round is
            triggered.
        clock: The service's :class:`SliceClock` in global-merge mode;
            ``None`` in per-key mode (no watermarks needed, empty
            batches are skipped).
    """

    def __init__(
        self,
        num_shards: int,
        batch_size: int,
        clock: Optional[SliceClock] = None,
    ):
        if num_shards < 1:
            raise ServiceError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        if batch_size < 1:
            raise ServiceError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self.num_shards = num_shards
        self.batch_size = batch_size
        self._clock = clock
        self._positions: List[List[int]] = [[] for _ in range(num_shards)]
        self._keys: List[List[Any]] = [[] for _ in range(num_shards)]
        self._values: List[List[Any]] = [[] for _ in range(num_shards)]
        # Per-shard trace columns exist only once a traced record has
        # been routed; until then ``put`` pays a single flag check.
        self._traces: Optional[List[List[Optional[int]]]] = None
        self._seqs = [0] * num_shards
        self._sent_watermarks = [0] * num_shards
        #: Distinct keys routed to each shard so far — consulted when a
        #: shard fails, to report exactly whose answers are degraded.
        self.seen_keys: List[set] = [set() for _ in range(num_shards)]
        #: Global positions assigned so far (== records submitted).
        self.position = 0
        #: Flush rounds completed.
        self.flush_rounds = 0

    def put(
        self, key: Any, value: Any, trace: Optional[int] = None
    ) -> List[Batch]:
        """Route one record; return the batches a full buffer released.

        ``trace`` attributes the record to a telemetry trace (see
        :mod:`repro.telemetry.trace`); the id travels on the record's
        batch so shard outputs can echo which traces they served.
        """
        self.position += 1
        shard = shard_of(key, self.num_shards)
        self.seen_keys[shard].add(key)
        self._positions[shard].append(self.position)
        self._keys[shard].append(key)
        self._values[shard].append(value)
        if trace is not None and self._traces is None:
            # First traced record: materialise the trace columns,
            # backfilling the still-buffered untraced records.
            self._traces = [
                [None] * len(self._positions[index])
                for index in range(self.num_shards)
            ]
            self._traces[shard][-1] = trace
        elif self._traces is not None:
            self._traces[shard].append(trace)
        if len(self._positions[shard]) >= self.batch_size:
            return self.flush()
        return []

    def flush(self) -> List[Batch]:
        """Frame every shard's buffer into batches (one flush round).

        In global-merge mode every shard receives a frame carrying the
        round's watermark — an empty frame when the shard has no
        buffered records but the watermark advanced — so slice
        finalisation never stalls on an idle shard.  In per-key mode
        empty frames carry no information and are skipped.
        """
        watermark = (
            self._clock.slices_closed_by(self.position)
            if self._clock is not None
            else 0
        )
        batches: List[Batch] = []
        for shard in range(self.num_shards):
            buffered = self._positions[shard]
            if not buffered:
                if (
                    self._clock is None
                    or self._sent_watermarks[shard] == watermark
                ):
                    continue
            self._seqs[shard] += 1
            traces = (
                self._traces[shard] if self._traces is not None else None
            )
            batches.append(
                Batch(
                    shard,
                    self._seqs[shard],
                    watermark,
                    self._positions[shard],
                    self._keys[shard],
                    self._values[shard],
                    traces if traces else None,
                )
            )
            self._sent_watermarks[shard] = watermark
            self._positions[shard] = []
            self._keys[shard] = []
            self._values[shard] = []
            if self._traces is not None:
                self._traces[shard] = []
        if batches:
            self.flush_rounds += 1
        return batches
