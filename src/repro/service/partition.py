"""Key-partitioned routing with micro-batch framing and load shedding.

The ingestion front of the sharded service: records enter keyed, get a
global 1-based position, and are hash-partitioned by key into per-shard
buffers.  Buffers are framed into :class:`Batch` messages in *flush
rounds* — whenever any shard's buffer reaches the configured batch size
(or at end of stream) every shard's buffer is framed simultaneously, so
each round carries one uniform slice **watermark** to all shards.  That
uniformity is what lets the cross-shard merger finalise slices without
per-shard punctuations.

Load shedding lives here as pure, process-free helpers
(:func:`drop_records`, :func:`thin_batch`); the transport layer decides
*when* to shed (its queue is full) and these decide *what* to shed,
keeping an exact dropped-record count either way.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ServiceError
from repro.service.slices import SliceClock
from repro.stream.watermark import Watermark

#: Backpressure policies for a full shard queue: ``block`` waits for
#: capacity (lossless), ``drop`` sheds the whole batch's records,
#: ``sample`` keeps every other record and ships the thinned batch.
BACKPRESSURE_POLICIES = ("block", "drop", "sample")

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_FNV_MASK = 0xFFFFFFFFFFFFFFFF


def stable_hash(key: Any) -> int:
    """64-bit FNV-1a over ``repr(key)`` — stable across processes.

    The builtin ``hash`` is salted per process for strings (PEP 456),
    which would scatter a key to different shards across restarts and
    break checkpoint recovery; this hash is deterministic for any key
    with a stable ``repr`` (strings, numbers, tuples thereof).
    """
    value = _FNV_OFFSET
    for byte in repr(key).encode("utf-8"):
        value = ((value ^ byte) * _FNV_PRIME) & _FNV_MASK
    return value


def shard_of(key: Any, num_shards: int) -> int:
    """The shard owning ``key`` under stable hash partitioning."""
    return stable_hash(key) % num_shards


@dataclass
class Batch:
    """One framed micro-batch for one shard.

    Attributes:
        shard: Destination shard index.
        seq: Per-shard batch sequence number, 1-based and gapless in
            ship order — the unit of acknowledgement and replay.
        watermark: Slices fully closed by the global stream at frame
            time (every record of those slices has been framed, across
            all shards of the same flush round).
        positions: Global 1-based positions of the records — an
            ``array('q')`` from the router (typed end to end, so the
            shm plane encodes it with a plain buffer copy), though any
            integer sequence is accepted.
        keys: Record keys, parallel to ``positions``.
        values: Record payloads, parallel to ``positions``.  A column
            that entered typed (``array('q')``/``array('d')``, e.g.
            from the wire's packed ``SUBMIT_COLUMN`` body) stays typed
            through the router, which makes the columnar encode a
            buffer copy with no per-value capability scan.
        traces: Per-record trace ids, parallel to ``positions`` — or
            ``None`` (the common case) when no record of the batch is
            traced, so untraced batches pay nothing for the field.
        timestamps: Per-record event timestamps in seconds, parallel to
            ``positions`` — an ``array('d')`` from the router's
            event-time mode, ``None`` on the count-based path, so
            arrival-ordered batches pay nothing for the column.  In
            event-time mode ``watermark`` counts closed *time* slices
            (derived from the bounded-lateness event watermark) rather
            than count slices.
    """

    shard: int
    seq: int
    watermark: int
    positions: Sequence[int] = field(default_factory=list)
    keys: List[Any] = field(default_factory=list)
    values: Sequence[Any] = field(default_factory=list)
    traces: Optional[List[Optional[int]]] = None
    timestamps: Optional[Sequence[float]] = None

    def __len__(self) -> int:
        """Number of records framed in this batch."""
        return len(self.positions)


def drop_records(batch: Batch) -> Tuple[Batch, int]:
    """Shed every record, keeping the batch as a watermark carrier.

    The empty frame must still be delivered — sequence numbers stay
    gapless and the watermark keeps the cross-shard merge progressing —
    but it occupies one queue slot with near-zero payload.
    """
    dropped = len(batch)
    return Batch(batch.shard, batch.seq, batch.watermark), dropped


def thin_batch(batch: Batch, keep_every: int = 2) -> Tuple[Batch, int]:
    """Deterministically keep every ``keep_every``-th record.

    Used by the ``sample`` backpressure policy: under pressure the
    batch is halved (by default) instead of fully shed, trading answer
    fidelity for bounded queue growth without losing batch framing.
    """
    if keep_every < 2:
        raise ServiceError(
            f"thin_batch keep_every must be >= 2, got {keep_every}"
        )
    kept = slice(None, None, keep_every)
    thinned = Batch(
        batch.shard,
        batch.seq,
        batch.watermark,
        batch.positions[kept],
        batch.keys[kept],
        batch.values[kept],
        batch.traces[kept] if batch.traces is not None else None,
        batch.timestamps[kept] if batch.timestamps is not None else None,
    )
    return thinned, len(batch) - len(thinned)


#: A per-shard value buffer: a plain list (heterogeneous records) or a
#: typed array when every buffered value arrived through a typed column.
ValueBuffer = Union[List[Any], array]


def typed_column(values: Any) -> Optional[array]:
    """``array('q'|'d')`` view-copy of an already-typed numeric column.

    Accepts ``array('q')``/``array('d')``, 1-D i64/f64 memoryviews
    (what :func:`repro.net.server` hands the router for packed
    ``SUBMIT_COLUMN`` bodies), and any other object exposing an
    equivalent 8-byte numeric buffer (e.g. an int64/float64 ndarray).
    Returns ``None`` for plain sequences — those keep the per-record
    list path, where the shm encoder's capability scan decides.

    The container itself proves the element type, so downstream
    consumers (the router's buffers, the columnar encoder) can skip
    per-value type checks without giving up exactness.
    """
    if type(values) is array and values.typecode in ("q", "d"):
        return values
    if type(values) is memoryview:
        view = values
    elif isinstance(values, (list, tuple, str, bytes, bytearray, range)):
        return None
    else:
        try:
            view = memoryview(values)
        except TypeError:
            return None
    if view.ndim != 1 or view.itemsize != 8:
        return None
    if view.format in ("q", "l"):  # 'l' is i64 on LP64 platforms
        typecode = "q"
    elif view.format == "d":
        typecode = "d"
    else:
        return None
    column = array(typecode)
    column.frombytes(view.cast("B"))
    return column


def _append_value(buffer: ValueBuffer, value: Any) -> ValueBuffer:
    """Append one record to a value buffer, demoting a typed buffer
    to a list the moment the value would not round-trip exactly.

    The type checks are exact on purpose: a ``bool`` (or any int
    subclass) appended to an i64 buffer would silently re-type through
    the column, so it demotes instead.
    """
    if type(buffer) is list:
        buffer.append(value)
        return buffer
    kind = type(value)
    if (buffer.typecode == "q" and kind is int) or (
        buffer.typecode == "d" and kind is float
    ):
        try:
            buffer.append(value)
            return buffer
        except OverflowError:
            pass  # int outside i64: fall through to the list demotion
    demoted = list(buffer)
    demoted.append(value)
    return demoted


def _extend_values(buffer: ValueBuffer, chunk: Any) -> ValueBuffer:
    """Extend a value buffer with a column chunk, staying typed when
    both sides agree on a typecode (a C ``memcpy``) and demoting to a
    list otherwise."""
    if type(chunk) is array:
        if type(buffer) is array and buffer.typecode == chunk.typecode:
            buffer.extend(chunk)
            return buffer
        if type(buffer) is list and not buffer:
            return chunk  # fresh slice copy: adopt it as the buffer
        if type(buffer) is array:
            buffer = list(buffer)
        buffer.extend(chunk)
        return buffer
    if type(buffer) is array:
        buffer = list(buffer)
    buffer.extend(chunk)
    return buffer


class Router:
    """Assign global positions and frame per-shard micro-batches.

    Args:
        num_shards: Number of shard partitions.
        batch_size: Records buffered per shard before a flush round is
            triggered.
        clock: The service's :class:`SliceClock` in global-merge mode;
            ``None`` in per-key mode (no watermarks needed, empty
            batches are skipped) and in event-time mode, where the
            service advances :attr:`watermark` externally from its
            bounded-lateness event watermark.
        event_time: When true the router buffers a per-shard f64
            timestamp column and batches carry it; records must enter
            through :meth:`put_event`.
    """

    def __init__(
        self,
        num_shards: int,
        batch_size: int,
        clock: Optional[SliceClock] = None,
        event_time: bool = False,
    ):
        if num_shards < 1:
            raise ServiceError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        if batch_size < 1:
            raise ServiceError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self.num_shards = num_shards
        self.batch_size = batch_size
        self._clock = clock
        self.event_time = event_time
        #: The stream's slice watermark as a single monotone cursor:
        #: count mode advances it from ``clock.slices_closed_by`` at
        #: flush time; event-time mode advances it externally (the
        #: service maps its bounded-lateness event watermark through a
        #: :class:`~repro.stream.watermark.TimeSliceClock`).  Either
        #: way :meth:`flush` stamps ``watermark.value`` on the round.
        self.watermark = Watermark(0)
        self._timestamps: Optional[List[array]] = (
            [array("d") for _ in range(num_shards)] if event_time else None
        )
        # Positions are always i64-typed (they are stream indices), so
        # the shm encoder ships them with one buffer copy; values stay
        # lists unless a typed column lands on the buffer.
        self._positions: List[array] = [
            array("q") for _ in range(num_shards)
        ]
        self._keys: List[List[Any]] = [[] for _ in range(num_shards)]
        self._values: List[ValueBuffer] = [[] for _ in range(num_shards)]
        # Per-shard trace columns exist only once a traced record has
        # been routed; until then ``put`` pays a single flag check.
        self._traces: Optional[List[List[Optional[int]]]] = None
        self._seqs = [0] * num_shards
        self._sent_watermarks = [0] * num_shards
        # Key -> shard memo for the ingestion hot loop: ``stable_hash``
        # walks ``repr(key)`` byte by byte, so re-hashing every record
        # of a hot key dominates routing cost.  The memo is exact (the
        # hash is deterministic) and its footprint matches
        # ``seen_keys``, which already retains every distinct key.
        self._shard_cache: dict = {}
        #: Distinct keys routed to each shard so far — consulted when a
        #: shard fails, to report exactly whose answers are degraded.
        self.seen_keys: List[set] = [set() for _ in range(num_shards)]
        #: Global positions assigned so far (== records submitted).
        self.position = 0
        #: Flush rounds completed.
        self.flush_rounds = 0

    def put(
        self, key: Any, value: Any, trace: Optional[int] = None
    ) -> List[Batch]:
        """Route one record; return the batches a full buffer released.

        ``trace`` attributes the record to a telemetry trace (see
        :mod:`repro.telemetry.trace`); the id travels on the record's
        batch so shard outputs can echo which traces they served.
        """
        self.position += 1
        shard = self._shard_cache.get(key)
        if shard is None:
            shard = shard_of(key, self.num_shards)
            self._shard_cache[key] = shard
            self.seen_keys[shard].add(key)
        self._positions[shard].append(self.position)
        self._keys[shard].append(key)
        self._values[shard] = _append_value(self._values[shard], value)
        if trace is not None and self._traces is None:
            # First traced record: materialise the trace columns,
            # backfilling the still-buffered untraced records.
            self._traces = [
                [None] * len(self._positions[index])
                for index in range(self.num_shards)
            ]
            self._traces[shard][-1] = trace
        elif self._traces is not None:
            self._traces[shard].append(trace)
        if len(self._positions[shard]) >= self.batch_size:
            return self.flush()
        return []

    def put_event(
        self,
        key: Any,
        value: Any,
        timestamp: float,
        trace: Optional[int] = None,
    ) -> List[Batch]:
        """Route one event-timestamped record (event-time mode only).

        The caller (the service's reorder-buffer ingress) must present
        records in released — i.e. timestamp — order per stream, which
        keeps every shard's buffered timestamp column ascending; the
        shard side relies on that to close time slices with a bisect.
        """
        if self._timestamps is None:
            raise ServiceError(
                "put_event requires a Router in event-time mode"
            )
        self.position += 1
        shard = self._shard_cache.get(key)
        if shard is None:
            shard = shard_of(key, self.num_shards)
            self._shard_cache[key] = shard
            self.seen_keys[shard].add(key)
        self._positions[shard].append(self.position)
        self._keys[shard].append(key)
        self._values[shard] = _append_value(self._values[shard], value)
        self._timestamps[shard].append(timestamp)
        if trace is not None and self._traces is None:
            self._traces = [
                [None] * len(self._positions[index])
                for index in range(self.num_shards)
            ]
            self._traces[shard][-1] = trace
        elif self._traces is not None:
            self._traces[shard].append(trace)
        if len(self._positions[shard]) >= self.batch_size:
            return self.flush()
        return []

    def put_column(
        self,
        key: Any,
        values: Sequence[Any],
        trace: Optional[int] = None,
    ) -> List[Batch]:
        """Route a run of records sharing one key; one shard lookup.

        The column path of the ingestion front: the shard is resolved
        once, positions are assigned as a range, and the per-shard
        buffers grow by ``extend`` instead of per-record ``append``.
        Flush rounds fire at exactly the same stream positions as the
        equivalent sequence of :meth:`put` calls, so batching,
        watermarks, and sequence numbers are byte-identical between
        the two paths.

        A column that arrives typed (see :func:`typed_column` — packed
        wire bodies, arrays, numeric ndarrays) is buffered typed, so
        the batches it frames carry ``array``-backed value columns the
        shm plane encodes without a capability scan.
        """
        column = typed_column(values)
        if column is not None:
            values = column
        elif type(values) is not list:
            values = list(values)
        if not values:
            return []
        shard = self._shard_cache.get(key)
        if shard is None:
            shard = shard_of(key, self.num_shards)
            self._shard_cache[key] = shard
            self.seen_keys[shard].add(key)
        if trace is not None and self._traces is None:
            self._traces = [
                [None] * len(self._positions[index])
                for index in range(self.num_shards)
            ]
        batches: List[Batch] = []
        total = len(values)
        start = 0
        while start < total:
            positions = self._positions[shard]
            take = min(self.batch_size - len(positions), total - start)
            first = self.position + 1
            self.position += take
            positions.extend(range(first, first + take))
            self._keys[shard].extend([key] * take)
            self._values[shard] = _extend_values(
                self._values[shard], values[start : start + take]
            )
            if self._traces is not None:
                self._traces[shard].extend([trace] * take)
            start += take
            if len(positions) >= self.batch_size:
                batches.extend(self.flush())
        return batches

    def put_many(
        self,
        records: Iterable[Tuple[Any, Any]],
        trace: Optional[int] = None,
    ) -> List[Batch]:
        """Route ``(key, value)`` pairs, grouping contiguous key runs.

        Mirrors the shard side (which folds contiguous same-key runs
        through the bulk kernel path): each run of consecutive records
        with the same key pays one shard lookup and one buffer extend
        via :meth:`put_column`.  Record order — and therefore global
        positions, flush rounds, and watermarks — is exactly that of
        calling :meth:`put` per record.
        """
        batches: List[Batch] = []
        run_key: Any = None
        run_values: List[Any] = []
        for key, value in records:
            if run_values and (key is run_key or key == run_key):
                run_values.append(value)
                continue
            if run_values:
                batches.extend(
                    self.put_column(run_key, run_values, trace)
                )
            run_key = key
            run_values = [value]
        if run_values:
            batches.extend(self.put_column(run_key, run_values, trace))
        return batches

    def flush(self) -> List[Batch]:
        """Frame every shard's buffer into batches (one flush round).

        In global-merge mode (count- or event-time) every shard
        receives a frame carrying the round's watermark — an empty
        frame when the shard has no buffered records but the watermark
        advanced — so slice finalisation never stalls on an idle
        shard.  In per-key mode empty frames carry no information and
        are skipped.
        """
        if self._clock is not None:
            self.watermark.advance(
                self._clock.slices_closed_by(self.position)
            )
        watermark = self.watermark.value
        merged = self._clock is not None or self.event_time
        batches: List[Batch] = []
        for shard in range(self.num_shards):
            buffered = self._positions[shard]
            if not buffered:
                if not merged or self._sent_watermarks[shard] == watermark:
                    continue
            self._seqs[shard] += 1
            traces = (
                self._traces[shard] if self._traces is not None else None
            )
            batches.append(
                Batch(
                    shard,
                    self._seqs[shard],
                    watermark,
                    self._positions[shard],
                    self._keys[shard],
                    self._values[shard],
                    traces if traces else None,
                    self._timestamps[shard]
                    if self._timestamps is not None
                    else None,
                )
            )
            self._sent_watermarks[shard] = watermark
            self._positions[shard] = array("q")
            self._keys[shard] = []
            self._values[shard] = []
            if self._timestamps is not None:
                self._timestamps[shard] = array("d")
            if self._traces is not None:
                self._traces[shard] = []
        if batches:
            self.flush_rounds += 1
        return batches
