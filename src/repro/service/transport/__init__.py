"""Zero-copy shared-memory data plane for the sharded service.

The process transport originally shipped every micro-batch through a
pickle-based ``multiprocessing.Queue``: each batch was pickled in the
parent's feeder thread, pushed through a pipe, and unpickled in the
worker — three copies and two object materialisations per batch, which
after the PR 3 batch kernels became the dominant end-to-end cost.

This package replaces that hop with per-shard **SPSC ring buffers**
backed by :mod:`multiprocessing.shared_memory`:

* :mod:`~repro.service.transport.frame` — the columnar frame codec.
  A numeric batch is encoded *once* into a flat frame (header +
  contiguous native ``int64``/``float64`` position and value arrays +
  a dictionary-encoded key table), CRC32-protected and sequence
  numbered.  Non-numeric payloads (string values, poison records,
  arbitrary objects) fall back to a pickled frame on the same ring,
  chosen per batch by a capability check, so ordering is never split
  across channels.
* :mod:`~repro.service.transport.ring` — the byte-level SPSC ring.
  One producer (the supervisor), one consumer (the shard worker),
  wait-free ``try_write``/``try_read`` with monotone cursors in the
  shared segment.
* :mod:`~repro.service.transport.shm` — the data plane proper:
  :class:`~repro.service.transport.shm.ShardChannel` (parent side,
  data ring + mirrored result ring) and
  :class:`~repro.service.transport.shm.WorkerEndpoint` (worker side),
  which maps frames straight off the ring and hands
  ``memoryview``-backed columns to the batch kernels with no copy and
  no unpickle.

Control signals (STOP, checkpoints riding on outputs, fault plans)
stay on the existing queues; frames too large for the ring spill to
the queue behind an in-band marker so per-shard ordering is preserved.
Platforms without ``shared_memory`` or a ``fork`` start method fall
back to the original pickle-queue plane transparently under
``data_plane="auto"``.
"""

from __future__ import annotations

import multiprocessing

from repro.errors import ServiceError

#: The data planes the process transport can run on.  ``shm`` is the
#: zero-copy shared-memory plane; ``pickle`` is the original
#: pickled-``Queue`` transport kept as the universal fallback.
DATA_PLANES = ("auto", "shm", "pickle")


def shm_supported() -> bool:
    """Whether this platform can run the shared-memory data plane.

    Requires :mod:`multiprocessing.shared_memory` (Python 3.8+, and a
    platform that actually provides POSIX/Windows shared memory) and
    the ``fork`` start method — ring endpoints hold mmap'd segments
    that child processes inherit by address, which ``spawn`` cannot
    replicate without re-attaching by name.
    """
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - platform-dependent
        return False
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_data_plane(requested: str) -> str:
    """Resolve a requested plane to the one that will actually run.

    ``auto`` selects ``shm`` when the platform supports it and
    ``pickle`` otherwise; asking for ``shm`` explicitly on a platform
    without it is an error (tests and benchmarks want the failure to
    be loud, not a silent downgrade).
    """
    if requested not in DATA_PLANES:
        raise ServiceError(
            f"unknown data plane {requested!r}; expected one of "
            f"{DATA_PLANES}"
        )
    if requested == "auto":
        return "shm" if shm_supported() else "pickle"
    if requested == "shm" and not shm_supported():
        raise ServiceError(
            "data_plane='shm' requires multiprocessing.shared_memory "
            "and the fork start method; use 'auto' to fall back to "
            "the pickle queue plane on this platform"
        )
    return requested


from repro.service.transport.frame import (  # noqa: E402
    FrameKind,
    decode_frame,
    encode_batch_frame,
    encode_control_frame,
    encode_pickled_frame,
)
from repro.service.transport.ring import SpscRing  # noqa: E402
from repro.service.transport.shm import (  # noqa: E402
    ShardChannel,
    WorkerEndpoint,
)

__all__ = [
    "DATA_PLANES",
    "FrameKind",
    "ShardChannel",
    "SpscRing",
    "WorkerEndpoint",
    "decode_frame",
    "encode_batch_frame",
    "encode_control_frame",
    "encode_pickled_frame",
    "resolve_data_plane",
    "shm_supported",
]
