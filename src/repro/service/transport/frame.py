"""Columnar frame codec for the shared-memory data plane.

A frame is one self-validating unit on a ring: a fixed 36-byte header
followed by a body whose layout depends on the frame kind.  Every
frame carries a CRC32 over header-plus-body, so a torn write (producer
killed mid-frame, or chaos-injected corruption) is detected at the
consumer rather than silently decoded into wrong aggregates.

Header layout (little-endian)::

    offset  0  magic       b"SDF1"
    offset  4  kind        u8   (FrameKind)
    offset  5  flags       u8   (_FLAG_* bits)
    offset  6  shard       u16
    offset  8  seq         u64
    offset 16  watermark   u64  (position + 1; 0 encodes None)
    offset 24  count       u32  (records in a columnar frame)
    offset 28  key_table   u32  (key-table byte length)
    offset 32  crc32       u32  (over header[:32] + body)
    offset 36  body

Columnar body (``FrameKind.COLUMNAR``), all columns contiguous::

    positions   count * 8 bytes, native i64
    values      count * 8 bytes, native i64 or f64 (``_FLAG_FLOAT``)
    key_index   count * 4 bytes, native u32 into the key table
    traces      count * 8 bytes, native u64, present iff
                ``_FLAG_TRACES`` (0 encodes "no trace id")
    timestamps  count * 8 bytes, native f64, present iff
                ``_FLAG_TIMES`` (event-time seconds)
    key table   ``key_table`` bytes (distinct keys, first-seen order)

The decoder returns the position and value columns as
``memoryview.cast`` typed views **aliasing the ring** — no copy, no
unpickle.  Values deliberately decode through ``memoryview`` rather
than ``numpy.frombuffer``: iterating a ``'q'`` view yields Python
ints, so integer aggregation keeps arbitrary precision and the
columnar path is bit-for-bit equivalent to the pickle transport.
(Kernels that want an ndarray can wrap the same view via
:func:`repro.kernels.column_ndarray` without a copy.)

The capability check is strict on purpose: a value column encodes only
when every value is exactly ``int`` (within i64 range) or every value
exactly ``float``.  ``bool`` is an ``int`` subclass but round-trips as
``int`` through an i64 column, which would change ``bool_all``-style
answers — so mixed or subclassed types fall back to a
``FrameKind.PICKLED`` frame on the same ring, preserving order.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from array import array
from enum import IntEnum
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import TornFrameError, TransportError

MAGIC = b"SDF1"
HEADER_BYTES = 36

_HEADER = struct.Struct("<4sBBHQQIII")
_CRC_OFFSET = 32
_U32 = struct.Struct("<I")

_FLAG_FLOAT = 0x01  # value column is f64 (else i64)
_FLAG_TRACES = 0x02  # trace-id column present
_FLAG_KEYS_PICKLED = 0x04  # key table is a pickled tuple
_FLAG_TIMES = 0x08  # event-timestamp column present (f64)

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


class FrameKind(IntEnum):
    """What a ring frame carries."""

    #: A numeric batch as flat columns (the zero-copy fast path).
    COLUMNAR = 1
    #: A pickled :class:`~repro.service.partition.Batch` (fallback).
    PICKLED = 2
    #: Marker: the payload was too large for the ring and travels on
    #: the queue instead; consume one queue item to stay ordered.
    SPILL = 3
    #: Shutdown request (replaces the queue STOP sentinel in-band).
    STOP = 4
    #: A pickled :class:`~repro.service.shard.ShardOutput` (result ring).
    OUTPUT = 5


# -- key table ----------------------------------------------------------
#
# Distinct keys are dictionary-encoded: the column stores u32 indices
# into a table of first-seen distinct keys.  Common key types get a
# compact tagged binary encoding; anything else pickles the whole
# distinct tuple (never the per-record column).

_KEY_NONE = 0
_KEY_INT = 1
_KEY_FLOAT = 2
_KEY_STR = 3
_KEY_BYTES = 4
_KEY_TRUE = 5
_KEY_FALSE = 6

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


def _encode_key_table(distinct: Sequence[Any]) -> Tuple[bytes, bool]:
    """Encode distinct keys; returns ``(payload, pickled)``."""
    parts: List[bytes] = [_U32.pack(len(distinct))]
    for key in distinct:
        kind = type(key)
        if kind is bool:
            parts.append(bytes([_KEY_TRUE if key else _KEY_FALSE]))
        elif kind is int and _I64_MIN <= key <= _I64_MAX:
            parts.append(bytes([_KEY_INT]) + _I64.pack(key))
        elif kind is float:
            parts.append(bytes([_KEY_FLOAT]) + _F64.pack(key))
        elif kind is str:
            raw = key.encode("utf-8")
            parts.append(bytes([_KEY_STR]) + _U32.pack(len(raw)) + raw)
        elif kind is bytes:
            parts.append(bytes([_KEY_BYTES]) + _U32.pack(len(raw := key)) + raw)
        elif key is None:
            parts.append(bytes([_KEY_NONE]))
        else:
            return pickle.dumps(tuple(distinct), protocol=5), True
    return b"".join(parts), False


def _decode_key_table(payload: memoryview, pickled: bool) -> List[Any]:
    if pickled:
        return list(pickle.loads(payload))
    count = _U32.unpack_from(payload, 0)[0]
    keys: List[Any] = []
    offset = 4
    for _ in range(count):
        tag = payload[offset]
        offset += 1
        if tag == _KEY_INT:
            keys.append(_I64.unpack_from(payload, offset)[0])
            offset += 8
        elif tag == _KEY_STR:
            length = _U32.unpack_from(payload, offset)[0]
            offset += 4
            keys.append(bytes(payload[offset : offset + length]).decode("utf-8"))
            offset += length
        elif tag == _KEY_FLOAT:
            keys.append(_F64.unpack_from(payload, offset)[0])
            offset += 8
        elif tag == _KEY_BYTES:
            length = _U32.unpack_from(payload, offset)[0]
            offset += 4
            keys.append(bytes(payload[offset : offset + length]))
            offset += length
        elif tag == _KEY_TRUE:
            keys.append(True)
        elif tag == _KEY_FALSE:
            keys.append(False)
        elif tag == _KEY_NONE:
            keys.append(None)
        else:
            raise TornFrameError(f"unknown key-table tag {tag}")
    return keys


# -- value capability check ---------------------------------------------


def encode_values(values: Sequence[Any]) -> Optional[Tuple[bytes, bool]]:
    """Try to encode values as one flat column.

    Returns ``(column_bytes, is_float)`` when every value is exactly
    ``int`` (i64-representable) or exactly ``float``; ``None`` when the
    batch must take the pickle fallback.  The ``type`` check is
    deliberately exact — ``bool`` and int subclasses would change
    type through an i64 column.

    Already-typed columns (``array('q')``/``array('d')``, plus the 1-D
    typed memoryviews a decoded columnar batch carries) skip the scan
    entirely: the container proves the element type, so the column is
    just its bytes.
    """
    if type(values) is array:
        if values.typecode == "q":
            return values.tobytes(), False
        if values.typecode == "d":
            return values.tobytes(), True
    elif type(values) is memoryview and values.ndim == 1:
        if values.format == "q":
            return bytes(values), False
        if values.format == "d":
            return bytes(values), True
    kinds = set(map(type, values))
    if not kinds:
        # Empty batches (watermark carriers) are trivially columnar.
        return b"", False
    if kinds == {int}:
        try:
            return array("q", values).tobytes(), False
        except OverflowError:
            return None
    if kinds == {float}:
        return array("d", values).tobytes(), True
    return None


def _position_bytes(positions: Sequence[int]) -> bytes:
    """The position column as raw i64 bytes, free for typed inputs."""
    if type(positions) is array and positions.typecode == "q":
        return positions.tobytes()
    if (
        type(positions) is memoryview
        and positions.ndim == 1
        and positions.format == "q"
    ):
        return bytes(positions)
    return array("q", positions).tobytes()


def _timestamp_bytes(timestamps: Sequence[float]) -> bytes:
    """The event-time column as raw f64 bytes, free for typed inputs."""
    if type(timestamps) is array and timestamps.typecode == "d":
        return timestamps.tobytes()
    if (
        type(timestamps) is memoryview
        and timestamps.ndim == 1
        and timestamps.format == "d"
    ):
        return bytes(timestamps)
    return array("d", timestamps).tobytes()


def _distinct_keys(keys: Sequence[Any]) -> List[Any]:
    """First-seen distinct keys, with a C-speed single-key fast path.

    Run-grouped batches overwhelmingly carry one key, and
    ``list.count`` verifies that in one C pass (with the pointer-equal
    shortcut for the repeated-reference case) — much cheaper than the
    hash-everything ``dict.fromkeys`` scan it short-circuits.
    """
    if type(keys) is list and keys and keys.count(keys[0]) == len(keys):
        return [keys[0]]
    return list(dict.fromkeys(keys))


# -- frame assembly ------------------------------------------------------


def _seal(header_fields: tuple, body: bytes) -> bytes:
    header = bytearray(_HEADER.pack(*header_fields, 0))
    crc = zlib.crc32(body, zlib.crc32(bytes(header[:_CRC_OFFSET])))
    _U32.pack_into(header, _CRC_OFFSET, crc)
    return bytes(header) + body


def encode_batch_frame(
    shard: int,
    seq: int,
    watermark: Optional[int],
    positions: Sequence[int],
    keys: Sequence[Any],
    values: Sequence[Any],
    traces: Optional[Sequence[Optional[int]]],
    timestamps: Optional[Sequence[float]] = None,
) -> Optional[bytes]:
    """Encode one batch as a columnar frame; ``None`` if unsupported.

    Returns ``None`` when the value column fails the capability check
    (mixed/unsupported types, out-of-range ints) so the caller can emit
    a :func:`encode_pickled_frame` instead.  Positions must be
    i64-representable (they are stream indices, so always are).
    ``timestamps`` (event-time seconds, f64) travels as an extra
    column when present; frames without it decode exactly as before.
    """
    encoded = encode_values(values)
    if encoded is None:
        return None
    value_bytes, is_float = encoded
    count = len(values)
    distinct = _distinct_keys(keys)
    if len(distinct) > 0xFFFFFFFF:  # pragma: no cover - 4G distinct keys
        return None
    key_table, keys_pickled = _encode_key_table(distinct)
    flags = 0
    if is_float:
        flags |= _FLAG_FLOAT
    if keys_pickled:
        flags |= _FLAG_KEYS_PICKLED
    if len(distinct) == 1:
        # Single distinct key (the run-grouped common case): the
        # index column is all zeros, which bytes() produces without
        # touching the keys again.
        key_index = bytes(4 * count)
    else:
        lookup = {key: index for index, key in enumerate(distinct)}
        key_index = array("I", map(lookup.__getitem__, keys)).tobytes()
    parts = [
        _position_bytes(positions),
        value_bytes,
        key_index,
    ]
    if traces is not None and any(t is not None for t in traces):
        flags |= _FLAG_TRACES
        parts.append(array("Q", (t or 0 for t in traces)).tobytes())
    if timestamps is not None:
        flags |= _FLAG_TIMES
        parts.append(_timestamp_bytes(timestamps))
    parts.append(key_table)
    body = b"".join(parts)
    header_fields = (
        MAGIC,
        int(FrameKind.COLUMNAR),
        flags,
        shard,
        seq,
        0 if watermark is None else watermark + 1,
        count,
        len(key_table),
    )
    return _seal(header_fields, body)


def encode_pickled_frame(
    kind: FrameKind, shard: int, seq: int, payload: Any
) -> bytes:
    """Encode an arbitrary object as a CRC-protected pickled frame."""
    body = pickle.dumps(payload, protocol=5)
    header_fields = (MAGIC, int(kind), 0, shard, seq, 0, 0, 0)
    return _seal(header_fields, body)


def encode_control_frame(kind: FrameKind, shard: int, seq: int = 0) -> bytes:
    """Encode a bodyless control frame (STOP / SPILL marker)."""
    return _seal((MAGIC, int(kind), 0, shard, seq, 0, 0, 0), b"")


class DecodedFrame:
    """One validated frame, with zero-copy columns where applicable.

    For ``COLUMNAR`` frames, :attr:`positions` and :attr:`values` are
    typed ``memoryview``s aliasing the ring buffer — iterate or hand
    them to batch kernels, then release before the ring commits.  Keys
    and traces are decoded eagerly (small, and must outlive the view).
    For ``PICKLED``/``OUTPUT`` frames, :attr:`payload` holds the
    unpickled object.
    """

    __slots__ = (
        "kind",
        "shard",
        "seq",
        "watermark",
        "count",
        "positions",
        "values",
        "keys",
        "traces",
        "timestamps",
        "payload",
    )

    def __init__(self, kind: FrameKind, shard: int, seq: int):
        self.kind = kind
        self.shard = shard
        self.seq = seq
        self.watermark: Optional[int] = None
        self.count = 0
        self.positions: Optional[memoryview] = None
        self.values: Optional[memoryview] = None
        self.keys: Optional[List[Any]] = None
        self.traces: Optional[List[Optional[int]]] = None
        self.timestamps: Optional[memoryview] = None
        self.payload: Any = None

    def release(self) -> None:
        """Release ring-aliasing views so the ring can commit/close."""
        if self.positions is not None:
            self.positions.release()
            self.positions = None
        if self.values is not None:
            self.values.release()
            self.values = None
        if self.timestamps is not None:
            self.timestamps.release()
            self.timestamps = None


def decode_frame(frame: memoryview) -> DecodedFrame:
    """Validate and decode one frame read off a ring.

    Raises :class:`~repro.errors.TornFrameError` on bad magic, an
    impossible length, or a CRC mismatch — the torn-write signature.
    """
    if len(frame) < HEADER_BYTES:
        raise TornFrameError(
            f"frame of {len(frame)} bytes is shorter than the "
            f"{HEADER_BYTES}-byte header"
        )
    (
        magic,
        kind_raw,
        flags,
        shard,
        seq,
        watermark_raw,
        count,
        key_table_len,
    ) = _HEADER.unpack_from(frame, 0)[:8]
    if magic != MAGIC:
        raise TornFrameError(f"bad frame magic {bytes(magic)!r}")
    crc_stored = _U32.unpack_from(frame, _CRC_OFFSET)[0]
    body = frame[HEADER_BYTES:]
    crc_actual = zlib.crc32(body, zlib.crc32(bytes(frame[:_CRC_OFFSET])))
    if crc_actual != crc_stored:
        body.release()
        raise TornFrameError(
            f"frame CRC mismatch (stored {crc_stored:#010x}, "
            f"computed {crc_actual:#010x}) for shard {shard} seq {seq}"
        )
    try:
        kind = FrameKind(kind_raw)
    except ValueError:
        body.release()
        raise TornFrameError(f"unknown frame kind {kind_raw}") from None
    decoded = DecodedFrame(kind, shard, seq)
    if kind in (FrameKind.STOP, FrameKind.SPILL):
        body.release()
        return decoded
    if kind in (FrameKind.PICKLED, FrameKind.OUTPUT):
        decoded.payload = pickle.loads(body)
        body.release()
        return decoded
    # COLUMNAR: carve typed views out of the body without copying.
    decoded.watermark = None if watermark_raw == 0 else watermark_raw - 1
    decoded.count = count
    has_traces = bool(flags & _FLAG_TRACES)
    has_times = bool(flags & _FLAG_TIMES)
    expected = 8 * count + 8 * count + 4 * count
    if has_traces:
        expected += 8 * count
    if has_times:
        expected += 8 * count
    expected += key_table_len
    if len(body) != expected:
        body.release()
        raise TornFrameError(
            f"columnar frame body is {len(body)} bytes, expected "
            f"{expected} for {count} records"
        )
    offset = 0
    decoded.positions = body[offset : offset + 8 * count].cast("q")
    offset += 8 * count
    value_fmt = "d" if flags & _FLAG_FLOAT else "q"
    decoded.values = body[offset : offset + 8 * count].cast(value_fmt)
    offset += 8 * count
    key_index = body[offset : offset + 4 * count].cast("I")
    offset += 4 * count
    if has_traces:
        trace_view = body[offset : offset + 8 * count].cast("Q")
        decoded.traces = [t or None for t in trace_view]
        trace_view.release()
        offset += 8 * count
    if has_times:
        decoded.timestamps = body[offset : offset + 8 * count].cast("d")
        offset += 8 * count
    table_view = body[offset : offset + key_table_len]
    distinct = _decode_key_table(table_view, bool(flags & _FLAG_KEYS_PICKLED))
    table_view.release()
    if count and distinct:
        if len(distinct) == 1:
            # Mirror of the encoder's single-key fast path: a sealed
            # frame with one distinct key has an all-zero index column.
            decoded.keys = distinct * count
        else:
            try:
                # The u32 cast guarantees non-negative indices, so a
                # plain IndexError is exactly the out-of-range check —
                # no separate max() pass over the column.
                decoded.keys = list(map(distinct.__getitem__, key_index))
            except IndexError:
                key_index.release()
                decoded.release()
                body.release()
                raise TornFrameError(
                    "key index out of range for key table"
                ) from None
    elif count:
        key_index.release()
        decoded.release()
        body.release()
        raise TornFrameError("columnar frame has records but no key table")
    else:
        decoded.keys = []
    key_index.release()
    body.release()
    return decoded
