"""Byte-level SPSC ring buffer over ``multiprocessing.shared_memory``.

One :class:`SpscRing` connects exactly one producer process to exactly
one consumer process.  The shared segment holds two 8-byte cursors
followed by the data region::

    offset 0   head  (u64, little-endian) — total bytes ever published
    offset 8   tail  (u64, little-endian) — total bytes ever consumed
    offset 16  data  (``capacity`` bytes, used modulo ``capacity``)

Cursors are *absolute* monotone counters, not wrapped offsets: the
occupied byte count is always ``head - tail`` with no ambiguity between
empty and full, and a stuck cursor is visible in stats as a frozen
number rather than a plausible-looking small offset.  Each side writes
only its own cursor, so no locks are needed; an 8-byte aligned store is
atomic on every platform CPython runs on, and the GIL-released
``memoryview`` slice assignments used here never tear an 8-byte value.

Records are length-prefixed: ``u32 length`` then ``length`` payload
bytes.  A record never wraps — when the contiguous space to the end of
the data region cannot hold the prefix + payload, the producer writes a
**wrap marker** (``0xFFFFFFFF`` length, or implicitly when fewer than 4
contiguous bytes remain) and restarts at offset 0; the consumer skips
the marker the same way.  This keeps every payload contiguous, which is
what lets the consumer hand out zero-copy ``memoryview`` slices of the
segment instead of reassembling split records.

The consumer protocol is read-then-commit: :meth:`try_read` returns a
``memoryview`` of the payload *without* advancing ``tail``; the caller
processes the frame and then calls :meth:`commit`.  A consumer killed
mid-frame therefore leaves the frame on the ring, where the recovering
supervisor can see (via :meth:`occupancy`) that data was in flight.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory
from typing import Optional

from repro.errors import TornFrameError, TransportError

#: Bytes of control area before the data region (head + tail cursors).
_CONTROL_BYTES = 16

#: Length-prefix marker meaning "skip to the start of the data region".
_WRAP_MARKER = 0xFFFFFFFF

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


class SpscRing:
    """Single-producer single-consumer byte ring in shared memory.

    Args:
        capacity: Size of the data region in bytes.  The largest
            writable payload is ``capacity - 8`` (length prefix plus a
            possible wrap marker); larger payloads must take the
            caller's spill path.
        name: Attach to an existing segment by name instead of
            creating one.  Used only for diagnostics/tests — the
            service inherits ring objects through ``fork``, which
            carries the mapping itself.

    The creating side owns the segment: call :meth:`unlink` exactly
    once (from the creator) after both sides have :meth:`close`-d.
    """

    def __init__(self, capacity: int = 1 << 20, name: Optional[str] = None):
        if capacity < 64:
            raise TransportError(
                f"ring capacity must be at least 64 bytes, got {capacity}"
            )
        if name is None:
            self._shm = shared_memory.SharedMemory(
                create=True, size=_CONTROL_BYTES + capacity
            )
            self._owner = True
            # Fresh POSIX shm is zero-filled, but be explicit: cursors
            # must start equal or the first read sees garbage.
            self._shm.buf[:_CONTROL_BYTES] = bytes(_CONTROL_BYTES)
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False
        self.capacity = capacity
        self.name = self._shm.name
        self._buf = self._shm.buf
        self._data = self._buf[_CONTROL_BYTES : _CONTROL_BYTES + capacity]
        #: Pending (payload view, new tail) from an uncommitted read.
        self._pending: Optional[tuple] = None
        self._closed = False

    # -- cursors ----------------------------------------------------

    def _head(self) -> int:
        return _U64.unpack_from(self._buf, 0)[0]

    def _tail(self) -> int:
        return _U64.unpack_from(self._buf, 8)[0]

    def _set_head(self, value: int) -> None:
        _U64.pack_into(self._buf, 0, value)

    def _set_tail(self, value: int) -> None:
        _U64.pack_into(self._buf, 8, value)

    def occupancy(self) -> int:
        """Bytes currently published but not yet consumed."""
        return self._head() - self._tail()

    def occupancy_ratio(self) -> float:
        """Occupancy as a fraction of capacity (gauge-friendly)."""
        return self.occupancy() / self.capacity

    @property
    def max_payload(self) -> int:
        """Largest payload :meth:`try_write` can ever accept."""
        return self.capacity - 8

    # -- producer side ----------------------------------------------

    def try_write(self, payload: bytes) -> bool:
        """Publish one record; ``False`` if the ring lacks space now.

        Never blocks.  The payload bytes are written *before* the head
        cursor is published, so a concurrent consumer can never see a
        half-written record — a producer killed between the two steps
        simply leaves unpublished bytes that the next write overwrites.
        """
        need = 4 + len(payload)
        if need > self.capacity - 4:
            # Reserve 4 bytes so a wrap marker always fits; callers
            # spill payloads this large through the queue path.
            raise TransportError(
                f"payload of {len(payload)} bytes exceeds ring capacity "
                f"{self.capacity} (max payload {self.max_payload})"
            )
        head = self._head()
        tail = self._tail()
        offset = head % self.capacity
        contiguous = self.capacity - offset
        pad = contiguous if contiguous < need else 0
        if (head - tail) + pad + need > self.capacity:
            return False
        if pad:
            if contiguous >= 4:
                _U32.pack_into(self._data, offset, _WRAP_MARKER)
            head += pad
            offset = 0
        _U32.pack_into(self._data, offset, len(payload))
        self._data[offset + 4 : offset + 4 + len(payload)] = payload
        self._set_head(head + need)
        return True

    # -- consumer side ----------------------------------------------

    def try_read(self) -> Optional[memoryview]:
        """Peek the next record as a zero-copy view; ``None`` if empty.

        The returned ``memoryview`` aliases the shared segment and is
        valid only until :meth:`commit`; callers must finish with it
        (and release any sub-views) before committing.  Reading again
        before committing is a protocol violation.
        """
        if self._pending is not None:
            raise TransportError(
                "try_read called with an uncommitted frame pending"
            )
        head = self._head()
        tail = self._tail()
        while True:
            if head == tail:
                return None
            offset = tail % self.capacity
            contiguous = self.capacity - offset
            if contiguous < 4:
                tail += contiguous
                continue
            length = _U32.unpack_from(self._data, offset)[0]
            if length == _WRAP_MARKER:
                tail += contiguous
                continue
            break
        if length > self.max_payload or 4 + length > head - tail:
            raise TornFrameError(
                f"ring record declares {length} bytes but only "
                f"{head - tail} are published (capacity {self.capacity})"
            )
        view = self._data[offset + 4 : offset + 4 + length]
        self._pending = (view, tail + 4 + length)
        return view

    def commit(self) -> None:
        """Consume the record returned by the last :meth:`try_read`."""
        if self._pending is None:
            raise TransportError("commit called with no frame pending")
        view, new_tail = self._pending
        self._pending = None
        view.release()
        self._set_tail(new_tail)

    # -- lifecycle ---------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (leaves the segment alive)."""
        if self._closed:
            return
        self._closed = True
        if self._pending is not None:
            self._pending[0].release()
            self._pending = None
        try:
            self._data.release()
            self._buf = None
            self._data = None
            self._shm.close()
        except BufferError:  # pragma: no cover - exported view leaked
            # A caller kept a sub-view alive; leave the mapping to the
            # process's exit rather than crash the shutdown path.
            pass

    def unlink(self) -> None:
        """Destroy the underlying segment (creator side, after close)."""
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass

    def __reduce__(self):
        raise TransportError(
            "SpscRing endpoints cannot be pickled; the shm data plane "
            "requires the fork start method"
        )
