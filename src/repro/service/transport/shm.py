"""Parent/worker endpoints of the shared-memory data plane.

:class:`ShardChannel` lives in the supervisor: it owns one shard's pair
of rings (data toward the worker, results back) plus the transport
counters the service surfaces in stats.  :class:`WorkerEndpoint` is the
worker-side view of the same rings; both sides hold the *same* ring
objects, shared across the ``fork`` boundary (the endpoints are not
picklable, which is what restricts this plane to fork platforms).

Ordering is the invariant both sides protect.  Everything a shard must
see in order — batches, the stop request, spilled payloads — travels
through (or is *anchored* in) the data ring:

* a batch that encodes columnar or pickles small enough rides the ring
  directly;
* a payload too large for the ring goes on the legacy queue, with a
  ``SPILL`` marker frame in the ring holding its place — the worker
  consumes one queue item when it reaches the marker;
* ``STOP`` is a control frame in the ring, so it cannot overtake
  still-queued batches the way a queue sentinel could overtake ring
  frames.

Results mirror the scheme on the result ring (``OUTPUT`` frames,
``SPILL`` markers for oversized outputs).  Heartbeats and the final
:class:`~repro.service.shard.ShardStopped` notice stay on the out
queue: they are liveness metadata, not ordered data.
"""

from __future__ import annotations

import queue as queue_module
import time
from typing import Any, Optional, Tuple

from repro.service.partition import Batch
from repro.service.shard import STOP, ShardHeartbeat
from repro.service.transport.frame import (
    DecodedFrame,
    FrameKind,
    decode_frame,
    encode_batch_frame,
    encode_control_frame,
    encode_pickled_frame,
)
from repro.service.transport.ring import SpscRing

#: Ceiling of the adaptive poll sleep while a ring is empty/full.  The
#: loops start by yielding (``sleep(0)``) and back off toward this, so
#: a busy pipeline polls hot and an idle one stays cheap.
_POLL_SLEEP_MAX = 0.002

#: Poll-sleep increment per empty iteration.
_POLL_SLEEP_STEP = 0.0002


class _AdaptivePause:
    """Backoff helper for ring poll loops: yield first, then sleep."""

    __slots__ = ("_pause",)

    def __init__(self) -> None:
        self._pause = 0.0

    def wait(self) -> None:
        time.sleep(self._pause)
        if self._pause < _POLL_SLEEP_MAX:
            self._pause = min(
                self._pause + _POLL_SLEEP_STEP, _POLL_SLEEP_MAX
            )

    def reset(self) -> None:
        self._pause = 0.0


class ShardChannel:
    """Supervisor-side ring pair for one shard.

    Transport counters live on the supervisor's ``WorkerHandle``, not
    here: channels are torn down and rebuilt on worker recovery, and
    the counters must survive that.
    """

    def __init__(self, shard_id: int, ring_capacity: int):
        self.shard_id = shard_id
        self.data_ring = SpscRing(ring_capacity)
        self.result_ring = SpscRing(ring_capacity)

    def encode_batch(self, batch: Batch) -> Tuple[bytes, bool]:
        """Encode one batch; returns ``(frame, columnar)``.

        Columnar when the value column passes the capability check,
        otherwise a CRC-protected pickled frame on the same ring (the
        per-batch fallback that keeps ArgMax keys, poison records, and
        arbitrary payloads working with unchanged ordering).
        """
        frame = encode_batch_frame(
            batch.shard,
            batch.seq,
            batch.watermark,
            batch.positions,
            batch.keys,
            batch.values,
            batch.traces,
            batch.timestamps,
        )
        if frame is None:
            return (
                encode_pickled_frame(
                    FrameKind.PICKLED, batch.shard, batch.seq, batch
                ),
                False,
            )
        return frame, True

    def endpoint(self) -> "WorkerEndpoint":
        """The worker-side view of these rings (pass through fork)."""
        return WorkerEndpoint(
            self.shard_id, self.data_ring, self.result_ring
        )

    def occupancy_ratio(self) -> float:
        """Fuller of the two rings, as a fraction of capacity."""
        return max(
            self.data_ring.occupancy_ratio(),
            self.result_ring.occupancy_ratio(),
        )

    def close(self) -> None:
        """Close this process's mapping of both rings."""
        self.data_ring.close()
        self.result_ring.close()

    def unlink(self) -> None:
        """Free the shared-memory segments (owner side, once)."""
        self.data_ring.unlink()
        self.result_ring.unlink()


class WorkerEndpoint:
    """Worker-side receive/send loop helpers over one shard's rings.

    Not picklable (the rings are not); a worker gets its endpoint by
    inheriting it through ``fork``.
    """

    def __init__(
        self, shard_id: int, data_ring: SpscRing, result_ring: SpscRing
    ):
        self.shard_id = shard_id
        self.data_ring = data_ring
        self.result_ring = result_ring
        #: Time spent validating + decoding inbound frames (shipped
        #: back to the parent on each output's ``transport_seconds``).
        self.decode_seconds = 0.0
        self._decoded: Optional[DecodedFrame] = None

    # -- inbound -----------------------------------------------------

    def receive(self, in_queue: Any, timeout: Optional[float]) -> Any:
        """Next in-order message: a :class:`Batch` or :data:`STOP`.

        Blocks up to ``timeout`` seconds (``None`` blocks forever) and
        raises :class:`queue.Empty` on expiry so the caller's idle
        heartbeat fires exactly as it does on the queue plane.  A
        columnar batch is returned with ``memoryview``-backed position
        and value columns aliasing the ring; the caller must finish
        with them and call :meth:`commit` before the next receive.

        Raises:
            TornFrameError: The ring held a corrupt frame.  The caller
                exits nonzero; the supervisor recovers the shard with
                fresh rings and a checkpoint replay.
        """
        ring = self.data_ring
        pause = _AdaptivePause()
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            view = ring.try_read()
            if view is None:
                if deadline is not None and time.monotonic() >= deadline:
                    raise queue_module.Empty
                pause.wait()
                continue
            started = time.perf_counter()
            decoded = decode_frame(view)
            self.decode_seconds += time.perf_counter() - started
            kind = decoded.kind
            if kind is FrameKind.STOP:
                ring.commit()
                return STOP
            if kind is FrameKind.SPILL:
                # The payload was too big for the ring: it travels on
                # the queue, the marker holds its place in the order.
                ring.commit()
                return in_queue.get()
            if kind is FrameKind.PICKLED:
                payload = decoded.payload
                ring.commit()
                return payload
            # COLUMNAR: hand out zero-copy views; commit is deferred
            # until the caller has processed them.
            batch = Batch(
                decoded.shard,
                decoded.seq,
                decoded.watermark or 0,
                decoded.positions,
                decoded.keys,
                decoded.values,
                decoded.traces,
                decoded.timestamps,
            )
            self._decoded = decoded
            return batch

    def commit(self) -> None:
        """Release any deferred columnar views and consume the frame."""
        if self._decoded is None:
            return
        self._decoded.release()
        self._decoded = None
        self.data_ring.commit()

    def take_decode_seconds(self) -> float:
        """Drain the decode-time accumulator (per-output reporting)."""
        seconds = self.decode_seconds
        self.decode_seconds = 0.0
        return seconds

    # -- outbound ----------------------------------------------------

    def send_output(
        self,
        output: Any,
        out_queue: Any,
        heartbeat_interval: float = 0.25,
    ) -> None:
        """Ship one :class:`ShardOutput` back on the result ring.

        Oversized outputs spill to the out queue behind a ``SPILL``
        marker, exactly mirroring the inbound scheme.  While the
        result ring is full this blocks (the supervisor drains it both
        at poll time and while it waits for data-ring space, so the
        wait is bounded), dropping an occasional heartbeat on the out
        queue so stall detection keeps seeing a live worker.
        """
        frame = encode_pickled_frame(
            FrameKind.OUTPUT, self.shard_id, output.seq, output
        )
        ring = self.result_ring
        if len(frame) > ring.max_payload:
            out_queue.put(output)
            frame = encode_control_frame(
                FrameKind.SPILL, self.shard_id, output.seq
            )
        pause = _AdaptivePause()
        last_beat = time.monotonic()
        while not ring.try_write(frame):
            pause.wait()
            if (
                heartbeat_interval
                and time.monotonic() - last_beat >= heartbeat_interval
            ):
                last_beat = time.monotonic()
                try:
                    out_queue.put_nowait(
                        ShardHeartbeat(
                            self.shard_id, output.seq, busy=False
                        )
                    )
                except queue_module.Full:
                    pass

    def close(self) -> None:
        """Release any deferred views and close the ring mappings."""
        if self._decoded is not None:
            self._decoded.release()
            self._decoded = None
        self.data_ring.close()
        self.result_ring.close()

    def __reduce__(self):
        from repro.errors import TransportError

        raise TransportError(
            "WorkerEndpoint cannot be pickled; the shm data plane "
            "requires the fork start method"
        )
