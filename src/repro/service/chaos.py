"""Deterministic fault injection for the sharded aggregation service.

Production fault tolerance is only as good as the failures it has
actually been driven through.  This module provides a seeded
:class:`FaultInjector` that the :class:`~repro.service.supervisor.Supervisor`
threads through its lifecycle hooks, so tests can *provoke* every
failure mode the service claims to survive, at exact, reproducible
points:

* **worker kills** at chosen batch sequence numbers (SIGKILL right
  after the batch is shipped) and **crash loops** (kill the worker at
  every (re)spawn) that exhaust the per-shard restart budget;
* **checkpoint corruption** — a deterministic bit-flip in the *n*-th
  checkpoint a shard produces, exercising the CRC32 verification and
  the last-known-good fallback;
* **queue-put delays**, simulating a slow transport into a shard;
* **worker-side stalls and wedges** via a picklable
  :class:`WorkerFaultPlan` carried in the shard config: a *stall*
  sleeps a bounded number of seconds mid-batch (a slow shard the
  heartbeat logic must tolerate), a *wedge* sleeps effectively forever
  (a dead shard the stall detector must kill and recover);
* **poison records** — :func:`poison` wraps a value in a
  :class:`PoisonValue` whose every arithmetic/comparison raises, so the
  failure happens *inside* the aggregate operator, where per-record
  quarantine must catch it.

Every decision the injector makes is recorded in :attr:`FaultInjector.events`
for test assertions, and anything random (corruption bit positions,
:meth:`FaultInjector.random` schedules) derives from the constructor
seed, so a chaos run is exactly reproducible.
"""

from __future__ import annotations

import dataclasses
import random
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Set, Tuple

#: Sleep used for a "wedge": far longer than any stall timeout, so a
#: wedged worker never finishes its batch and must be killed.
WEDGE_SECONDS = 3600.0


class PoisonValue:
    """A record payload that raises inside any aggregate operator.

    Arithmetic, comparison, and numeric-conversion operations all raise
    ``RuntimeError``, so the failure surfaces wherever the operator
    first touches the value (``lift`` or ``combine``) — never earlier.
    The object is picklable and hashable (by identity semantics on its
    label), so it travels through routing, batching, and worker queues
    like any other payload.
    """

    __slots__ = ("label",)

    def __init__(self, label: str = "poison"):
        self.label = label

    def _refuse(self, *_args):
        raise RuntimeError(
            f"poison value {self.label!r} touched by the operator"
        )

    __add__ = __radd__ = __sub__ = __rsub__ = _refuse
    __mul__ = __rmul__ = __truediv__ = __rtruediv__ = _refuse
    __lt__ = __le__ = __gt__ = __ge__ = _refuse
    __neg__ = __abs__ = __float__ = __int__ = _refuse

    def __repr__(self) -> str:
        return f"PoisonValue({self.label!r})"

    def __reduce__(self):
        return (PoisonValue, (self.label,))


def poison(label: str = "poison") -> PoisonValue:
    """A record value guaranteed to raise inside the operator."""
    return PoisonValue(label)


@dataclass(frozen=True)
class WorkerFaultPlan:
    """The picklable, worker-side half of an injection schedule.

    Travels inside :class:`~repro.service.shard.ShardConfig` to the
    worker process; :meth:`apply` is called by the worker loop right
    before it processes each batch (after its start-of-batch
    heartbeat, so the supervisor has seen signs of life first).

    Attributes:
        stall_at: ``{seq: seconds}`` — bounded sleeps, simulating a
            slow shard that heartbeat-based detection must *not* kill.
        wedge_at: Sequence numbers at which the worker sleeps
            :data:`WEDGE_SECONDS`, simulating a shard that is alive as
            a process but will never make progress.
    """

    stall_at: Tuple[Tuple[int, float], ...] = ()
    wedge_at: Tuple[int, ...] = ()

    def apply(self, seq: int) -> None:
        """Sleep according to the plan for batch ``seq`` (maybe not at all)."""
        for stall_seq, seconds in self.stall_at:
            if stall_seq == seq:
                time.sleep(seconds)
        if seq in self.wedge_at:
            time.sleep(WEDGE_SECONDS)

    def __bool__(self) -> bool:
        """Whether the plan contains any fault at all."""
        return bool(self.stall_at or self.wedge_at)


@dataclass(frozen=True)
class ChaosEvent:
    """One fault the injector actually fired (for test assertions)."""

    kind: str
    shard_id: int
    detail: Any = None


class FaultInjector:
    """Seeded, deterministic fault schedule for one service run.

    Construct, declare faults with the ``kill_worker`` /
    ``crash_loop`` / ``corrupt_checkpoint`` / ``delay_puts`` /
    ``stall_shard`` / ``wedge_shard`` methods, then pass the injector
    to :class:`~repro.service.service.AggregationService` (or directly
    to a :class:`~repro.service.supervisor.Supervisor`).  The
    supervisor calls the ``on_*`` hooks at its lifecycle points; each
    scheduled fault fires at most the declared number of times, and
    every firing is appended to :attr:`events`.

    Args:
        seed: Drives every random choice (corruption bit positions,
            :meth:`random` schedules), making runs reproducible.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._kill_after_ship: Dict[int, Set[int]] = {}
        self._kill_on_spawn: Dict[int, int] = {}
        self._corrupt_nth: Dict[int, Set[int]] = {}
        self._checkpoints_seen: Dict[int, int] = {}
        self._put_delays: Dict[int, float] = {}
        self._stalls: Dict[int, Dict[int, float]] = {}
        self._wedges: Dict[int, Set[int]] = {}
        self._tear_nth: Dict[int, Set[int]] = {}
        self._stale_nth: Dict[int, Set[int]] = {}
        self._data_frames_seen: Dict[int, int] = {}
        #: Every fault actually fired, in firing order.
        self.events: List[ChaosEvent] = []

    # -- schedule declaration --------------------------------------

    def kill_worker(self, shard_id: int, after_seq: int) -> "FaultInjector":
        """SIGKILL the shard's worker right after batch ``after_seq`` ships."""
        self._kill_after_ship.setdefault(shard_id, set()).add(after_seq)
        return self

    def crash_loop(self, shard_id: int, times: int = 1_000_000) -> "FaultInjector":
        """Kill the shard's worker at its next ``times`` (re)spawns.

        With ``times`` at least the supervisor's restart budget this
        deterministically drives the shard to the ``failed`` state.
        """
        self._kill_on_spawn[shard_id] = (
            self._kill_on_spawn.get(shard_id, 0) + times
        )
        return self

    def corrupt_checkpoint(self, shard_id: int, nth: int = 1) -> "FaultInjector":
        """Flip one random bit in the shard's ``nth`` checkpoint (1-based)."""
        self._corrupt_nth.setdefault(shard_id, set()).add(nth)
        return self

    def delay_puts(self, shard_id: int, seconds: float) -> "FaultInjector":
        """Sleep ``seconds`` before every queue put toward the shard."""
        self._put_delays[shard_id] = seconds
        return self

    def stall_shard(
        self, shard_id: int, seq: int, seconds: float
    ) -> "FaultInjector":
        """Make the worker sleep ``seconds`` before processing batch ``seq``."""
        self._stalls.setdefault(shard_id, {})[seq] = seconds
        return self

    def wedge_shard(self, shard_id: int, seq: int) -> "FaultInjector":
        """Make the worker hang indefinitely at batch ``seq``.

        The stall detector must notice the silence, kill the worker,
        and recover it; the wedge is cleared once it has provoked a
        stall kill, so the replayed batch processes normally.
        """
        self._wedges.setdefault(shard_id, set()).add(seq)
        return self

    def tear_frame(self, shard_id: int, nth: int = 1) -> "FaultInjector":
        """Corrupt the shard's ``nth`` data-ring frame (1-based).

        One seeded bit-flip anywhere in the frame, simulating a torn
        shared-memory write.  The worker's CRC32 check must reject the
        frame, the worker exits nonzero, and crash recovery replays
        the batch from the supervisor's retained history.  Only fires
        on the shm data plane (the pickle plane has no frames).
        """
        self._tear_nth.setdefault(shard_id, set()).add(nth)
        return self

    def stale_frame(self, shard_id: int, nth: int = 1) -> "FaultInjector":
        """Duplicate the shard's ``nth`` data-ring frame (1-based).

        The worker sees the same sequence number twice; its idempotent
        replay check must acknowledge the duplicate with an empty
        output rather than double-fold the records.
        """
        self._stale_nth.setdefault(shard_id, set()).add(nth)
        return self

    @classmethod
    def random(
        cls,
        seed: int,
        num_shards: int,
        max_seq: int,
        kills: int = 2,
        stalls: int = 1,
        corruptions: int = 1,
    ) -> "FaultInjector":
        """A reproducible random schedule for property-style chaos tests.

        Draws ``kills`` worker kills, ``stalls`` sub-timeout stalls,
        and ``corruptions`` checkpoint bit-flips, uniformly over shards
        and sequence numbers up to ``max_seq`` — the same seed always
        yields the same schedule.
        """
        injector = cls(seed)
        rng = random.Random(seed)
        for _ in range(kills):
            injector.kill_worker(
                rng.randrange(num_shards), rng.randint(1, max_seq)
            )
        for _ in range(stalls):
            injector.stall_shard(
                rng.randrange(num_shards),
                rng.randint(1, max_seq),
                rng.uniform(0.05, 0.15),
            )
        for _ in range(corruptions):
            injector.corrupt_checkpoint(rng.randrange(num_shards), 1)
        return injector

    # -- supervisor hooks ------------------------------------------

    def worker_config(self, config: Any) -> Any:
        """The shard config to spawn with, carrying current worker faults.

        Called at every (re)spawn, so faults cleared in the parent
        (e.g. a wedge that already fired) no longer reach the worker.
        """
        plan = WorkerFaultPlan(
            stall_at=tuple(
                sorted(self._stalls.get(config.shard_id, {}).items())
            ),
            wedge_at=tuple(sorted(self._wedges.get(config.shard_id, ()))),
        )
        if not plan:
            return config
        return dataclasses.replace(config, chaos=plan)

    def on_spawned(self, process: Any, shard_id: int) -> bool:
        """Kill-at-spawn hook; returns whether the worker was killed."""
        remaining = self._kill_on_spawn.get(shard_id, 0)
        if remaining <= 0:
            return False
        self._kill_on_spawn[shard_id] = remaining - 1
        self.events.append(ChaosEvent("spawn-kill", shard_id))
        process.kill()
        return True

    def on_shipped(self, process: Any, shard_id: int, seq: int) -> None:
        """Post-ship hook: fire any kill scheduled at this sequence number."""
        scheduled = self._kill_after_ship.get(shard_id)
        if scheduled and seq in scheduled:
            scheduled.discard(seq)
            self.events.append(ChaosEvent("kill", shard_id, seq))
            process.kill()

    def put_delay(self, shard_id: int) -> float:
        """Seconds to sleep before a queue put toward ``shard_id``."""
        return self._put_delays.get(shard_id, 0.0)

    def on_checkpoint(self, shard_id: int, data: bytes) -> bytes:
        """Checkpoint-absorb hook: maybe return corrupted bytes.

        The flipped bit lands in the payload region (past the 4-byte
        length prefix), chosen by the injector's seeded RNG, so the
        CRC32 check — not a pickle accident — is what detects it.
        """
        seen = self._checkpoints_seen.get(shard_id, 0) + 1
        self._checkpoints_seen[shard_id] = seen
        if seen not in self._corrupt_nth.get(shard_id, ()):
            return data
        corrupted = bytearray(data)
        index = self._rng.randrange(4, len(corrupted))
        corrupted[index] ^= 1 << self._rng.randrange(8)
        self.events.append(
            ChaosEvent("corrupt-checkpoint", shard_id, seen)
        )
        return bytes(corrupted)

    def has_data_frame_fault(self, shard_id: int) -> bool:
        """Whether a torn/stale frame is still scheduled for the shard.

        The supervisor routes the shard's batches through its blocking
        frame writer while this is true, so an injected frame group is
        never half-applied by the non-blocking fast path.
        """
        return bool(
            self._tear_nth.get(shard_id) or self._stale_nth.get(shard_id)
        )

    def on_data_frame(self, shard_id: int, frame: bytes) -> List[bytes]:
        """Data-plane hook: the ring frames to write for one batch.

        Counts the shard's outbound data frames and substitutes the
        scheduled faults: a *tear* replaces the frame with a one-bit
        corruption (each schedule entry fires once), a *stale* appends
        a byte-identical duplicate after the original.
        """
        seen = self._data_frames_seen.get(shard_id, 0) + 1
        self._data_frames_seen[shard_id] = seen
        frames = [frame]
        torn = self._tear_nth.get(shard_id)
        if torn and seen in torn:
            torn.discard(seen)
            corrupted = bytearray(frame)
            index = self._rng.randrange(len(corrupted))
            corrupted[index] ^= 1 << self._rng.randrange(8)
            frames = [bytes(corrupted)]
            self.events.append(ChaosEvent("torn-frame", shard_id, seen))
        stale = self._stale_nth.get(shard_id)
        if stale and seen in stale:
            stale.discard(seen)
            frames = frames + [frame]
            self.events.append(ChaosEvent("stale-frame", shard_id, seen))
        return frames

    def on_stall_killed(self, shard_id: int) -> None:
        """Stall-kill hook: clear the shard's wedges so replay proceeds."""
        if self._wedges.pop(shard_id, None) is not None:
            self.events.append(ChaosEvent("wedge-cleared", shard_id))

    # -- introspection ---------------------------------------------

    def fired(self, kind: str) -> List[ChaosEvent]:
        """Events of one kind, in firing order."""
        return [event for event in self.events if event.kind == kind]
