"""Cross-shard combination of per-shard results.

Global mode rests on one algebraic fact: a slice's whole-stream partial
is the ``combine`` of the per-shard partials of the same slice, because
the shards hold *disjoint* subsets of its tuples.  Recombining in shard
order instead of stream order is exact precisely when the operator's
partial recombination is order-insensitive — the
:attr:`~repro.operators.base.AggregateOperator.mergeable` capability —
and the final aggregation additionally needs a SlickDeque processing
path (invertible or selection-type).  :func:`check_mergeable` enforces
both up front so unsound merges are rejected at service construction,
not detected as wrong answers.

:class:`GlobalMerger` tracks each shard's slice watermark, finalises a
slice once every shard has passed it, and drives the shared SlickDeque
final aggregation through
:meth:`~repro.core.multiquery.SharedSlickDeque.feed_partial`.  Both it
and :class:`PerKeyCollator` are idempotent under replay — a recovered
worker re-emits outputs it produced before dying, and the merger must
not double-count them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.core.multiquery import Answer, SharedSlickDeque
from repro.errors import MergeCapabilityError
from repro.operators.base import AggregateOperator
from repro.operators.views import partial_view
from repro.service.shard import ShardOutput
from repro.service.slices import SliceClock
from repro.stream.watermark import TimeSliceClock, Watermark
from repro.windows.plan import build_shared_plan
from repro.windows.query import Query
from repro.windows.timebased import (
    DEFAULT_RESOLUTION,
    TimeAnswer,
    TimeQuery,
    slice_duration,
)


def check_mergeable(operator: AggregateOperator) -> None:
    """Reject operators whose cross-shard merge would be unsound.

    Raises:
        MergeCapabilityError: when partial recombination is
            order-sensitive (not ``mergeable``) or the operator has no
            SlickDeque final-aggregation path; such operators must run
            in per-key mode.
    """
    if not operator.mergeable:
        raise MergeCapabilityError(
            f"operator {operator.name!r} does not support cross-shard "
            "merging: its partial recombination is order-sensitive "
            "(mergeable=False), so per-shard partials cannot be "
            "combined into exact global answers; run the service in "
            "per-key mode instead"
        )
    if not (operator.invertible or operator.selects):
        raise MergeCapabilityError(
            f"operator {operator.name!r} has no shared SlickDeque "
            "processing path (neither invertible nor selection-type), "
            "so merged partials cannot drive the global final "
            "aggregation; run the service in per-key mode, or "
            "decompose the operator per component"
        )


class GlobalMerger:
    """Combine per-shard slice partials into global engine answers.

    A slice is finalised once the minimum shard watermark passes it:
    every shard has then shipped (and acknowledged) all of its records
    for the slice, so the per-shard partials on hand are complete.
    Shards with no records in a slice simply contribute nothing — the
    fold starts from the operator identity.

    Args:
        queries: The service's ACQ set.
        operator: The (mergeable) aggregate operator.
        technique: Partial-aggregation technique of the shared plan.
        num_shards: Number of shards feeding this merger.
    """

    def __init__(
        self,
        queries: Sequence[Query],
        operator: AggregateOperator,
        technique: str,
        num_shards: int,
    ):
        check_mergeable(operator)
        self.operator = operator
        self.plan = build_shared_plan(queries, technique)
        self.clock = SliceClock(self.plan)
        self._final = SharedSlickDeque(
            queries, operator, technique, plan=self.plan
        )
        # One monotone Watermark per shard: replayed outputs from a
        # recovered worker present stale values, which ``advance``
        # ignores by construction.
        self._watermarks = [Watermark(0) for _ in range(num_shards)]
        self._pending: Dict[int, Dict[int, Any]] = {}
        self._next_slice = 0
        #: Shards declared failed: excluded from the watermark frontier.
        self._failed: set = set()
        #: Global answers emitted so far.
        self.answers_emitted = 0

    @property
    def merged_slices(self) -> int:
        """Number of slices finalised so far."""
        return self._next_slice

    @property
    def degraded(self) -> bool:
        """Whether any shard has failed (answers since then are partial).

        Once a shard fails, slices finalise from the surviving shards'
        partials only: every answer emitted from that point on reflects
        the stream *minus* the failed shard's un-merged records and
        must be treated as stale/degraded by the caller.
        """
        return bool(self._failed)

    def mark_failed(self, shard_id: int) -> List[Answer]:
        """Stop waiting on a failed shard's watermark.

        The shard's already-absorbed partials still participate (they
        are exact for the records it acknowledged), but slices are now
        finalised without waiting for it — otherwise one dead shard
        would wedge the global frontier forever.  Returns any answers
        released by the frontier advancing.
        """
        self._failed.add(shard_id)
        return self._drain()

    def on_output(self, output: ShardOutput) -> List[Answer]:
        """Absorb one shard output; return newly-released answers."""
        for index, value in output.partials:
            if index >= self._next_slice:  # replays of merged slices
                self._pending.setdefault(index, {})[
                    output.shard_id
                ] = value
        self._watermarks[output.shard_id].advance(output.watermark)
        return self._drain()

    def _drain(self) -> List[Answer]:
        answers: List[Answer] = []
        active = [
            watermark.value
            for shard_id, watermark in enumerate(self._watermarks)
            if shard_id not in self._failed
        ]
        frontier = min(active) if active else self._next_slice
        operator = self.operator
        while self._next_slice < frontier:
            shard_partials = self._pending.pop(self._next_slice, {})
            merged = operator.identity
            for shard_id in sorted(shard_partials):
                merged = operator.combine(
                    merged, shard_partials[shard_id]
                )
            answers.extend(
                self._final.feed_partial(
                    merged, self.clock.end_position(self._next_slice)
                )
            )
            self._next_slice += 1
        self.answers_emitted += len(answers)
        return answers


class EventTimeMerger:
    """Combine per-shard *time-slice* partials into time-query answers.

    The sharded twin of
    :class:`~repro.windows.timebased.TimeWindowEngine`: the time
    queries reduce to count queries over uniform time slices (one
    merged partial per slice, the operator identity for empty slices)
    and a shared SlickDeque plan over *partials* produces the final
    aggregation.  Slice completion is the same min-frontier rule as
    :class:`GlobalMerger`, but the per-shard watermarks count closed
    *time* slices — the service derives them from its bounded-lateness
    event watermark, and the shard echoes them monotonically even
    across a crash/replay cycle.  Answers are
    ``(window_end_timestamp, time_query, answer)`` triples, identical
    to the single-node engine's.
    """

    def __init__(
        self,
        queries: Sequence[TimeQuery],
        operator: AggregateOperator,
        technique: str,
        num_shards: int,
        origin: float = 0.0,
        resolution: float = DEFAULT_RESOLUTION,
    ):
        check_mergeable(operator)
        self.operator = operator
        self.queries = tuple(queries)
        self.origin = origin
        self.slice_seconds = slice_duration(self.queries, resolution)
        self.clock = TimeSliceClock(self.slice_seconds, origin)
        count_to_time = {}
        for query in self.queries:
            count_to_time[
                query.to_count_query(self.slice_seconds, resolution)
            ] = query
        self._count_to_time = count_to_time
        self._final = SharedSlickDeque(
            list(count_to_time), partial_view(operator), technique
        )
        self._watermarks = [Watermark(0) for _ in range(num_shards)]
        self._pending: Dict[int, Dict[int, Any]] = {}
        self._next_slice = 0
        self._failed: set = set()
        #: Global answers emitted so far.
        self.answers_emitted = 0

    @property
    def merged_slices(self) -> int:
        """Number of time slices finalised so far."""
        return self._next_slice

    @property
    def degraded(self) -> bool:
        """Whether any shard has failed (answers since then are partial)."""
        return bool(self._failed)

    def mark_failed(self, shard_id: int) -> List[TimeAnswer]:
        """Stop waiting on a failed shard's watermark (see GlobalMerger)."""
        self._failed.add(shard_id)
        return self._drain()

    def on_output(self, output: ShardOutput) -> List[TimeAnswer]:
        """Absorb one shard output; return newly-released answers."""
        for index, value in output.partials:
            if index >= self._next_slice:  # replays of merged slices
                self._pending.setdefault(index, {})[
                    output.shard_id
                ] = value
        self._watermarks[output.shard_id].advance(output.watermark)
        return self._drain()

    def _drain(self) -> List[TimeAnswer]:
        answers: List[TimeAnswer] = []
        active = [
            watermark.value
            for shard_id, watermark in enumerate(self._watermarks)
            if shard_id not in self._failed
        ]
        frontier = min(active) if active else self._next_slice
        operator = self.operator
        count_to_time = self._count_to_time
        while self._next_slice < frontier:
            shard_partials = self._pending.pop(self._next_slice, {})
            merged = operator.identity
            for shard_id in sorted(shard_partials):
                merged = operator.combine(
                    merged, shard_partials[shard_id]
                )
            for position, count_query, raw in self._final.feed(merged):
                answers.append(
                    (
                        self.origin + position * self.slice_seconds,
                        count_to_time[count_query],
                        operator.lower(raw),
                    )
                )
            self._next_slice += 1
        self.answers_emitted += len(answers)
        return answers


class PerKeyCollator:
    """Collect per-key answers, deduplicating replayed outputs.

    Per-key answers are deterministic — a key's records are processed
    in arrival order by exactly one shard — so a replayed answer is
    byte-identical to the original and the first occurrence wins.
    """

    def __init__(self) -> None:
        self._seen: set = set()
        #: Answers per key, in emission order:
        #: ``key -> [(position, query, answer), ...]``.
        self.answers: Dict[Any, List[Tuple[int, Query, Any]]] = {}

    def on_output(
        self, output: ShardOutput
    ) -> List[Tuple[Any, int, Query, Any]]:
        """Absorb one shard output; return its previously-unseen answers."""
        fresh: List[Tuple[Any, int, Query, Any]] = []
        for key, position, query, answer in output.key_answers:
            marker = (key, position, query)
            if marker in self._seen:
                continue
            self._seen.add(marker)
            self.answers.setdefault(key, []).append(
                (position, query, answer)
            )
            fresh.append((key, position, query, answer))
        return fresh
