"""Shard worker: the per-partition computation and its process loop.

A shard owns the records of the keys hashed to it and runs one of two
pipelines over them:

* **global mode** — fold each record into the per-slice partial of its
  global position (the shard-local half of the engine's partial
  aggregation); completed partials are shipped to the parent, where the
  cross-shard merger recombines them and drives the shared SlickDeque
  final aggregation.
* **per-key mode** — one full :class:`~repro.stream.engine.StreamEngine`
  pipeline per key (shared SlickDeque plan each), emitting exact
  per-key answers for any operator, mergeable or not.

:class:`ShardState` is the *pure* computation state — a plain picklable
object, so :mod:`repro.stream.checkpoint` snapshots it byte-for-byte and
the supervisor can restore a killed worker and replay its un-checkpointed
batches.  :func:`shard_main` is the process entry point wrapping that
state in a queue-driven loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.operators.base import Agg, AggregateOperator
from repro.service.partition import Batch
from repro.service.slices import SliceClock
from repro.stream.checkpoint import restore, snapshot
from repro.stream.engine import StreamEngine
from repro.stream.sink import CollectSink
from repro.windows.plan import build_shared_plan
from repro.windows.query import Query

#: Execution modes a shard can run.
SHARD_MODES = ("global", "per_key")

#: Control message asking a worker to flush its last output and exit.
STOP = "stop"


@dataclass(frozen=True)
class ShardConfig:
    """Everything a worker process needs to build its pipeline.

    Attributes:
        shard_id: This shard's index in ``0..num_shards-1``.
        num_shards: Total shard count (for context in errors/stats).
        queries: The ACQ set, shared by all shards.
        operator: The aggregate operator (must be picklable for
            checkpointing and for ``spawn`` start methods).
        technique: Partial-aggregation technique (``panes``/``pairs``).
        mode: ``"global"`` or ``"per_key"`` (see module docstring).
        checkpoint_interval: Snapshot the shard state every this many
            batches; ``0`` disables checkpointing.
        throttle_seconds: Artificial per-batch delay — a test/benchmark
            knob that makes backpressure deterministic by simulating a
            slow consumer.  ``0.0`` in production use.
    """

    shard_id: int
    num_shards: int
    queries: Tuple[Query, ...]
    operator: AggregateOperator
    technique: str = "pairs"
    mode: str = "global"
    checkpoint_interval: int = 16
    throttle_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in SHARD_MODES:
            raise ServiceError(
                f"unknown shard mode {self.mode!r}; expected one of "
                f"{SHARD_MODES}"
            )
        if self.checkpoint_interval < 0:
            raise ServiceError(
                "checkpoint_interval must be >= 0, got "
                f"{self.checkpoint_interval}"
            )


@dataclass
class ShardOutput:
    """One processed batch's results, shipped parent-ward.

    Also serves as the batch acknowledgement: ``seq`` tells the
    supervisor the worker's state now reflects every batch up to it.

    Attributes:
        shard_id: Producing shard.
        seq: Sequence number of the acknowledged batch.
        watermark: Slices the shard has closed (mirrors the batch).
        partials: Global mode — ``(slice_index, partial)`` pairs closed
            by this batch, ascending by index.
        key_answers: Per-key mode — ``(key, position, query, answer)``
            tuples (positions are per-key stream positions).
        records: Records folded from this batch.
        busy_seconds: Wall time spent processing the batch.
        snapshot: A checkpoint of the post-batch shard state, when the
            checkpoint interval elapsed.
    """

    shard_id: int
    seq: int
    watermark: int
    partials: List[Tuple[int, Agg]] = field(default_factory=list)
    key_answers: List[Tuple[Any, int, Query, Any]] = field(
        default_factory=list
    )
    records: int = 0
    busy_seconds: float = 0.0
    snapshot: Optional[bytes] = None


@dataclass
class ShardStopped:
    """A worker's final message before exiting its loop.

    ``error`` carries the repr of an unexpected exception; the
    supervisor treats such an exit like a crash and recovers.
    """

    shard_id: int
    error: Optional[str] = None


class ShardState:
    """The picklable computation state of one shard (checkpoint unit)."""

    def __init__(self, config: ShardConfig):
        self.config = config
        self.processed_seq = 0
        self.records = 0
        plan = build_shared_plan(config.queries, config.technique)
        if config.mode == "global":
            self._clock: Optional[SliceClock] = SliceClock(plan)
            self._accumulators: Dict[int, Agg] = {}
            self._engines: Dict[Any, StreamEngine] = {}
            self._sinks: Dict[Any, CollectSink] = {}
        else:
            self._clock = None
            self._accumulators = {}
            self._engines = {}
            self._sinks = {}

    def _engine_for(self, key: Any) -> StreamEngine:
        engine = self._engines.get(key)
        if engine is None:
            sink = CollectSink()
            engine = StreamEngine(
                self.config.queries,
                self.config.operator,
                technique=self.config.technique,
                mode="shared",
                sinks=[sink],
            )
            self._engines[key] = engine
            self._sinks[key] = sink
        return engine

    def process(self, batch: Batch) -> ShardOutput:
        """Fold one batch into the shard state and emit its output.

        Replayed batches the state already reflects (``seq`` at or
        below :attr:`processed_seq`) are acknowledged with an empty
        output, keeping recovery idempotent.
        """
        if batch.seq <= self.processed_seq:
            return ShardOutput(
                self.config.shard_id, batch.seq, batch.watermark
            )
        output = ShardOutput(
            self.config.shard_id,
            batch.seq,
            batch.watermark,
            records=len(batch),
        )
        operator = self.config.operator
        if self.config.mode == "global":
            accumulators = self._accumulators
            clock = self._clock
            identity = operator.identity
            for position, value in zip(batch.positions, batch.values):
                index = clock.slice_of(position)
                accumulators[index] = operator.combine(
                    accumulators.get(index, identity),
                    operator.lift(value),
                )
            closed = sorted(
                index for index in accumulators if index < batch.watermark
            )
            output.partials = [
                (index, accumulators.pop(index)) for index in closed
            ]
        else:
            for key, value in zip(batch.keys, batch.values):
                engine = self._engine_for(key)
                engine.feed(value)
                sink = self._sinks[key]
                if sink.answers:
                    output.key_answers.extend(
                        (key, position, query, answer)
                        for position, query, answer in sink.answers
                    )
                    sink.answers.clear()
        self.processed_seq = batch.seq
        self.records += len(batch)
        return output


def shard_main(
    config: ShardConfig,
    in_queue: Any,
    out_queue: Any,
    initial_snapshot: Optional[bytes] = None,
) -> None:
    """Worker-process entry point: restore, then loop over batches.

    Args:
        config: The shard's pipeline configuration.
        in_queue: Bounded queue of :class:`Batch` messages and the
            :data:`STOP` sentinel.
        out_queue: Unbounded queue of :class:`ShardOutput` /
            :class:`ShardStopped` messages.
        initial_snapshot: Checkpoint bytes to resume from (recovery);
            ``None`` starts from a fresh state.
    """
    try:
        if initial_snapshot is not None:
            state = restore(initial_snapshot, expected_type="ShardState")
        else:
            state = ShardState(config)
        batches_since_checkpoint = 0
        while True:
            message = in_queue.get()
            if message == STOP:
                out_queue.put(ShardStopped(config.shard_id))
                return
            if config.throttle_seconds:
                time.sleep(config.throttle_seconds)
            started = time.perf_counter()
            output = state.process(message)
            output.busy_seconds = time.perf_counter() - started
            batches_since_checkpoint += 1
            if (
                config.checkpoint_interval
                and batches_since_checkpoint >= config.checkpoint_interval
            ):
                output.snapshot = snapshot(state)
                batches_since_checkpoint = 0
            out_queue.put(output)
    except (KeyboardInterrupt, SystemExit):  # pragma: no cover - signals
        raise
    except BaseException as error:  # pragma: no cover - crash reporting
        out_queue.put(ShardStopped(config.shard_id, error=repr(error)))
        raise
