"""Shard worker: the per-partition computation and its process loop.

A shard owns the records of the keys hashed to it and runs one of two
pipelines over them:

* **global mode** — fold each record into the per-slice partial of its
  global position (the shard-local half of the engine's partial
  aggregation); completed partials are shipped to the parent, where the
  cross-shard merger recombines them and drives the shared SlickDeque
  final aggregation.
* **per-key mode** — one full :class:`~repro.stream.engine.StreamEngine`
  pipeline per key (shared SlickDeque plan each), emitting exact
  per-key answers for any operator, mergeable or not.

Failure hardening lives at the record level: a value that raises inside
the operator (a *poison record*) is caught per record, quarantined as a
:class:`~repro.stream.sink.DeadLetter` on the batch's output, and never
kills the worker.  Global-mode folds go through a temporary, so the
accumulator is untouched by a poisoned record; per-key mode pre-checks
``lift`` before feeding the key's engine, and if the engine itself
raises mid-feed the key is marked *degraded* (its engine state can no
longer be trusted) and subsequent records for it are quarantined too.

:class:`ShardState` is the *pure* computation state — a plain picklable
object, so :mod:`repro.stream.checkpoint` snapshots it byte-for-byte and
the supervisor can restore a killed worker and replay its un-checkpointed
batches.  :func:`shard_main` is the process entry point wrapping that
state in a queue-driven loop that heartbeats while idle and before each
batch, so the supervisor can tell a slow worker from a wedged one.
"""

from __future__ import annotations

import queue as queue_module
import time
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import PoisonRecordError, ServiceError
from repro.kernels import exact_fold
from repro.operators.base import Agg, AggregateOperator
from repro.service.partition import Batch
from repro.service.slices import SliceClock
from repro.stream.checkpoint import restore, snapshot
from repro.stream.engine import StreamEngine
from repro.stream.sink import CollectSink, DeadLetter
from repro.stream.watermark import TimeSliceClock
from repro.windows.plan import build_shared_plan
from repro.windows.query import Query

#: Execution modes a shard can run.  ``time`` is event-time global
#: mode: records carry timestamps, partials accumulate per *time*
#: slice, and the watermark counts closed time slices.
SHARD_MODES = ("global", "per_key", "time")

#: What a shard does with a poison record: quarantine it to the
#: dead-letter sink, or raise (kill the worker — debugging only).
POISON_POLICIES = ("quarantine", "raise")

#: Control message asking a worker to flush its last output and exit.
STOP = "stop"


@dataclass(frozen=True)
class ShardConfig:
    """Everything a worker process needs to build its pipeline.

    Attributes:
        shard_id: This shard's index in ``0..num_shards-1``.
        num_shards: Total shard count (for context in errors/stats).
        queries: The ACQ set, shared by all shards.
        operator: The aggregate operator (must be picklable for
            checkpointing and for ``spawn`` start methods).
        technique: Partial-aggregation technique (``panes``/``pairs``).
        mode: ``"global"`` or ``"per_key"`` (see module docstring).
        checkpoint_interval: Snapshot the shard state every this many
            batches; ``0`` disables checkpointing.
        throttle_seconds: Artificial per-batch delay — a test/benchmark
            knob that makes backpressure deterministic by simulating a
            slow consumer.  ``0.0`` in production use.
        heartbeat_interval: Seconds between idle heartbeats from the
            worker loop; also bounds how long the loop blocks on its
            inbound queue.  ``0`` disables heartbeats (the worker
            blocks indefinitely while idle).
        poison_policy: ``"quarantine"`` (default) dead-letters poison
            records; ``"raise"`` re-raises them as
            :class:`~repro.errors.PoisonRecordError` (killing the
            worker — useful when debugging an unexpected poison
            source, never in production).
        chaos: Optional worker-side
            :class:`~repro.service.chaos.WorkerFaultPlan` applied
            before each batch (fault-injection tests only).
        slice_seconds: Time-slice width for ``"time"`` mode (the GCD of
            the time queries' ranges and slides); ``0.0`` otherwise.
        origin: Timestamp of the first time-slice boundary
            (``"time"`` mode).
    """

    shard_id: int
    num_shards: int
    queries: Tuple[Query, ...]
    operator: AggregateOperator
    technique: str = "pairs"
    mode: str = "global"
    checkpoint_interval: int = 16
    throttle_seconds: float = 0.0
    heartbeat_interval: float = 0.25
    poison_policy: str = "quarantine"
    chaos: Optional[Any] = None
    slice_seconds: float = 0.0
    origin: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in SHARD_MODES:
            raise ServiceError(
                f"unknown shard mode {self.mode!r}; expected one of "
                f"{SHARD_MODES}"
            )
        if self.mode == "time" and not self.slice_seconds > 0:
            raise ServiceError(
                "time mode requires a positive slice_seconds, got "
                f"{self.slice_seconds!r}"
            )
        if self.checkpoint_interval < 0:
            raise ServiceError(
                "checkpoint_interval must be >= 0, got "
                f"{self.checkpoint_interval}"
            )
        if self.poison_policy not in POISON_POLICIES:
            raise ServiceError(
                f"unknown poison policy {self.poison_policy!r}; "
                f"expected one of {POISON_POLICIES}"
            )
        if self.heartbeat_interval < 0:
            raise ServiceError(
                "heartbeat_interval must be >= 0, got "
                f"{self.heartbeat_interval}"
            )


@dataclass
class ShardOutput:
    """One processed batch's results, shipped parent-ward.

    Also serves as the batch acknowledgement: ``seq`` tells the
    supervisor the worker's state now reflects every batch up to it.

    Attributes:
        shard_id: Producing shard.
        seq: Sequence number of the acknowledged batch.
        watermark: Slices the shard has closed (mirrors the batch).
        partials: Global mode — ``(slice_index, partial)`` pairs closed
            by this batch, ascending by index.
        key_answers: Per-key mode — ``(key, position, query, answer)``
            tuples (positions are per-key stream positions).
        records: Records successfully folded from this batch (poison
            records are excluded — they appear in ``dead_letters``).
        dead_letters: Records of this batch quarantined as poison.
        degraded_keys: Keys newly marked degraded by this batch
            (per-key mode, when a poisoned engine had to be dropped).
        busy_seconds: Wall time spent processing the batch.
        snapshot: A checkpoint of the post-batch shard state, when the
            checkpoint interval elapsed.
        trace_ids: Distinct telemetry trace ids of the batch's records,
            in first-appearance order — lets the parent attribute the
            fold's ``busy_seconds`` to the traces it served without the
            worker knowing anything about telemetry.
        transport_seconds: Worker-side time spent decoding the batch
            off the shared-memory ring (``0.0`` on the queue plane).
    """

    shard_id: int
    seq: int
    watermark: int
    partials: List[Tuple[int, Agg]] = field(default_factory=list)
    key_answers: List[Tuple[Any, int, Query, Any]] = field(
        default_factory=list
    )
    records: int = 0
    dead_letters: List[DeadLetter] = field(default_factory=list)
    degraded_keys: List[Any] = field(default_factory=list)
    busy_seconds: float = 0.0
    snapshot: Optional[bytes] = None
    trace_ids: Tuple[int, ...] = ()
    transport_seconds: float = 0.0


@dataclass
class ShardStopped:
    """A worker's final message before exiting its loop.

    ``error`` carries the repr of an unexpected exception; the
    supervisor treats such an exit like a crash and recovers.
    """

    shard_id: int
    error: Optional[str] = None


@dataclass
class ShardHeartbeat:
    """Liveness signal from the worker loop.

    Sent while idle (every ``heartbeat_interval`` seconds with no
    inbound batch) and immediately before each batch is processed.
    The supervisor uses the *absence* of these — together with absent
    outputs — to distinguish a wedged worker from a merely slow one:
    a slow shard keeps heartbeating between batches, a wedged one goes
    silent.

    Attributes:
        shard_id: Originating shard.
        seq: The batch about to be processed (``busy=True``) or the
            last processed batch (``busy=False``, idle heartbeat).
        busy: Whether the worker is entering a batch fold.
    """

    shard_id: int
    seq: int
    busy: bool = False


class ShardState:
    """The picklable computation state of one shard (checkpoint unit)."""

    def __init__(self, config: ShardConfig):
        self.config = config
        self.processed_seq = 0
        self.records = 0
        #: Keys whose per-key engine was poisoned mid-feed and dropped.
        self.degraded_keys: set = set()
        #: Monotone slice watermark this shard has acknowledged —
        #: pickled with the state, so a restored worker resumes from
        #: its checkpointed watermark and, because outputs echo
        #: ``max(batch.watermark, self.watermark)``, never reports a
        #: regressed one while replaying.
        self.watermark = 0
        self._accumulators: Dict[int, Agg] = {}
        self._engines: Dict[Any, StreamEngine] = {}
        self._sinks: Dict[Any, CollectSink] = {}
        self._clock: Optional[SliceClock] = None
        self._time_clock: Optional[TimeSliceClock] = None
        if config.mode == "global":
            plan = build_shared_plan(config.queries, config.technique)
            self._clock = SliceClock(plan)
        elif config.mode == "per_key":
            build_shared_plan(config.queries, config.technique)
        else:
            self._time_clock = TimeSliceClock(
                config.slice_seconds, config.origin
            )

    def _engine_for(self, key: Any) -> StreamEngine:
        engine = self._engines.get(key)
        if engine is None:
            sink = CollectSink()
            engine = StreamEngine(
                self.config.queries,
                self.config.operator,
                technique=self.config.technique,
                mode="shared",
                sinks=[sink],
            )
            self._engines[key] = engine
            self._sinks[key] = sink
        return engine

    def _quarantine(
        self,
        output: ShardOutput,
        key: Any,
        value: Any,
        position: int,
        error: BaseException,
    ) -> None:
        """Dead-letter one poison record (or re-raise under ``"raise"``)."""
        if self.config.poison_policy == "raise":
            raise PoisonRecordError(
                f"poison record for key {key!r} at position {position} "
                f"in shard {self.config.shard_id}: {error!r}",
                cause=repr(error),
            ) from error
        output.dead_letters.append(
            DeadLetter(
                key=key,
                value=value,
                position=position,
                shard_id=self.config.shard_id,
                error=repr(error),
            )
        )

    def process(self, batch: Batch) -> ShardOutput:
        """Fold one batch into the shard state and emit its output.

        Replayed batches the state already reflects (``seq`` at or
        below :attr:`processed_seq`) are acknowledged with an empty
        output, keeping recovery idempotent.  Poison records are
        quarantined per record (see the module docstring) and never
        tear down the fold.
        """
        if batch.watermark > self.watermark:
            self.watermark = batch.watermark
        if batch.seq <= self.processed_seq:
            # Replay acknowledgement: echo the *monotone* watermark, so
            # a restored worker replaying pre-checkpoint batches never
            # reports one older than its checkpointed state.
            return ShardOutput(
                self.config.shard_id, batch.seq, self.watermark
            )
        output = ShardOutput(
            self.config.shard_id,
            batch.seq,
            self.watermark,
        )
        if batch.traces is not None:
            output.trace_ids = tuple(
                dict.fromkeys(
                    trace for trace in batch.traces if trace is not None
                )
            )
        folded = 0
        mode = self.config.mode
        if mode == "per_key":
            folded = self._process_per_key(batch, output)
        else:
            if mode == "global":
                folded = self._process_global(batch, output)
            else:
                folded = self._process_time(batch, output)
            accumulators = self._accumulators
            closed = sorted(
                index for index in accumulators if index < self.watermark
            )
            output.partials = [
                (index, accumulators.pop(index)) for index in closed
            ]
        output.records = folded
        self.processed_seq = batch.seq
        self.records += folded
        return output

    def _process_global(self, batch: Batch, output: ShardOutput) -> int:
        """Global mode: fold contiguous same-slice runs with one kernel call.

        Batch positions are strictly ascending (the router ships each
        shard's records in stream order, and replayed batches are the
        originals), so the records in slice ``index`` are exactly those
        with positions up to ``clock.end_position(index)`` — one
        ``bisect_right`` per run instead of a per-record ``slice_of``
        scan.  Each run folds into its accumulator through
        :func:`repro.kernels.exact_fold`, which is byte-identical to
        the per-record combine chain.  A run containing a poison record
        makes the bulk fold raise *before* any state is touched (folds
        go through a temporary), and the run is replayed per record —
        clean records fold exactly as before, poisons are quarantined
        individually.
        """
        operator = self.config.operator
        accumulators = self._accumulators
        clock = self._clock
        slice_of = clock.slice_of
        end_position = clock.end_position
        identity = operator.identity
        positions = batch.positions
        keys = batch.keys
        values = batch.values
        total = len(values)
        folded = 0
        start = 0
        while start < total:
            index = slice_of(positions[start])
            stop = bisect_right(
                positions, end_position(index), start + 1, total
            )
            present = index in accumulators
            seed = accumulators[index] if present else identity
            try:
                accumulators[index] = exact_fold(
                    operator, values[start:stop], seed
                )
                folded += stop - start
            except Exception:
                # Poisoned run: replay it per record so that exactly
                # the poison records are quarantined and the clean
                # ones fold, leaving the accumulator as the per-record
                # path would.  An all-poison run must not materialise
                # an accumulator entry the per-record path never made.
                acc = seed
                succeeded = False
                for offset in range(start, stop):
                    value = values[offset]
                    try:
                        acc = operator.combine(acc, operator.lift(value))
                    except Exception as error:
                        self._quarantine(
                            output,
                            keys[offset],
                            value,
                            positions[offset],
                            error,
                        )
                        continue
                    succeeded = True
                    folded += 1
                if present or succeeded:
                    accumulators[index] = acc
            start = stop
        return folded

    def _process_time(self, batch: Batch, output: ShardOutput) -> int:
        """Time mode: fold contiguous same-time-slice runs in bulk.

        The event-time twin of :meth:`_process_global`: runs are cut by
        the batch's *timestamp* column instead of its positions.  The
        ingress reorder buffer releases records in timestamp order and
        the router preserves that order per shard, so the column is
        ascending and one ``bisect_left`` per run finds the slice edge
        (``bisect_left`` because a record exactly on a slice boundary
        belongs to the next slice).  Poisoned runs replay per record
        with the same state-preserving semantics as global mode.
        """
        operator = self.config.operator
        accumulators = self._accumulators
        clock = self._time_clock
        identity = operator.identity
        positions = batch.positions
        timestamps = batch.timestamps
        keys = batch.keys
        values = batch.values
        total = len(values)
        folded = 0
        start = 0
        while start < total:
            index = clock.slice_of(timestamps[start])
            stop = bisect_left(
                timestamps, clock.end_time(index), start + 1, total
            )
            present = index in accumulators
            seed = accumulators[index] if present else identity
            try:
                accumulators[index] = exact_fold(
                    operator, values[start:stop], seed
                )
                folded += stop - start
            except Exception:
                acc = seed
                succeeded = False
                for offset in range(start, stop):
                    value = values[offset]
                    try:
                        acc = operator.combine(acc, operator.lift(value))
                    except Exception as error:
                        self._quarantine(
                            output,
                            keys[offset],
                            value,
                            positions[offset],
                            error,
                        )
                        continue
                    succeeded = True
                    folded += 1
                if present or succeeded:
                    accumulators[index] = acc
            start = stop
        return folded

    def _process_per_key(self, batch: Batch, output: ShardOutput) -> int:
        """Per-key mode: feed contiguous same-key runs through the bulk path.

        Each run is first *dry-run folded* (no engine state touched);
        a run that folds cleanly is handed to the key's engine via
        :meth:`~repro.stream.engine.StreamEngine.feed_many`, and a run
        that raises falls back to the per-record loop — lift-poisons
        are quarantined without touching the engine, an engine poisoned
        mid-feed degrades its key, and later records for a degraded key
        are quarantined, all exactly as per-record processing does.
        """
        operator = self.config.operator
        degraded = self.degraded_keys
        positions = batch.positions
        keys = batch.keys
        values = batch.values
        total = len(values)
        folded = 0
        start = 0
        while start < total:
            key = keys[start]
            stop = start + 1
            while stop < total and keys[stop] == key:
                stop += 1
            if key in degraded:
                for offset in range(start, stop):
                    self._quarantine(
                        output,
                        key,
                        values[offset],
                        positions[offset],
                        PoisonRecordError(
                            f"key {key!r} degraded by an earlier "
                            "poison record; engine state discarded"
                        ),
                    )
                start = stop
                continue
            run = values[start:stop]
            try:
                # Dry run: every lift and combine the engine would
                # perform, against a throwaway accumulator.  Poison
                # values raise here, before any engine state mutates.
                exact_fold(operator, run, operator.identity)
            except Exception:
                folded += self._feed_per_record(
                    batch, output, start, stop
                )
                start = stop
                continue
            engine = self._engine_for(key)
            try:
                engine.feed_many(run)
            except Exception as error:
                # The dry run passed but the engine still raised (a
                # state-dependent fault): its window contents can no
                # longer be trusted, and which records of the run it
                # absorbed is unknowable — degrade the key and
                # quarantine the whole run.
                self._engines.pop(key, None)
                self._sinks.pop(key, None)
                degraded.add(key)
                output.degraded_keys.append(key)
                for offset in range(start, stop):
                    self._quarantine(
                        output,
                        key,
                        values[offset],
                        positions[offset],
                        error,
                    )
                start = stop
                continue
            folded += stop - start
            sink = self._sinks[key]
            if sink.answers:
                output.key_answers.extend(
                    (key, position, query, answer)
                    for position, query, answer in sink.answers
                )
                sink.answers.clear()
            start = stop
        return folded

    def _feed_per_record(
        self, batch: Batch, output: ShardOutput, start: int, stop: int
    ) -> int:
        """The original per-record per-key loop, over one poisoned run."""
        operator = self.config.operator
        folded = 0
        for offset in range(start, stop):
            position = batch.positions[offset]
            key = batch.keys[offset]
            value = batch.values[offset]
            if key in self.degraded_keys:
                self._quarantine(
                    output,
                    key,
                    value,
                    position,
                    PoisonRecordError(
                        f"key {key!r} degraded by an earlier "
                        "poison record; engine state discarded"
                    ),
                )
                continue
            try:
                operator.lift(value)
            except Exception as error:
                self._quarantine(output, key, value, position, error)
                continue
            engine = self._engine_for(key)
            try:
                engine.feed(value)
            except Exception as error:
                # The engine mutated state before raising: its
                # window contents can no longer be trusted.
                self._engines.pop(key, None)
                self._sinks.pop(key, None)
                self.degraded_keys.add(key)
                output.degraded_keys.append(key)
                self._quarantine(output, key, value, position, error)
                continue
            folded += 1
            sink = self._sinks[key]
            if sink.answers:
                output.key_answers.extend(
                    (key, position, query, answer)
                    for position, query, answer in sink.answers
                )
                sink.answers.clear()
        return folded


def shard_main(
    config: ShardConfig,
    in_queue: Any,
    out_queue: Any,
    initial_snapshot: Optional[bytes] = None,
    endpoint: Optional[Any] = None,
) -> None:
    """Worker-process entry point: restore, then loop over batches.

    Args:
        config: The shard's pipeline configuration.
        in_queue: Bounded queue of :class:`Batch` messages and the
            :data:`STOP` sentinel (on the shm plane it carries only
            ring-spilled payloads; ordering is anchored in the ring).
        out_queue: Bounded queue of :class:`ShardHeartbeat` /
            :class:`ShardStopped` liveness messages — and, on the
            queue plane, :class:`ShardOutput` results.
        initial_snapshot: Checkpoint bytes to resume from (recovery);
            ``None`` starts from a fresh state.
        endpoint: Shared-memory
            :class:`~repro.service.transport.shm.WorkerEndpoint`
            inherited through ``fork``; ``None`` runs the original
            queue transport.  With an endpoint, batches arrive as
            zero-copy columnar views off the data ring and outputs
            return on the result ring.

    A torn ring frame (CRC mismatch — the producer died mid-write or
    chaos corrupted the bytes) raises out of the receive path: the
    worker reports it via :class:`ShardStopped` and exits nonzero, and
    the supervisor's crash recovery respawns it with fresh rings and a
    checkpoint replay.
    """
    try:
        if initial_snapshot is not None:
            state = restore(initial_snapshot, expected_type="ShardState")
        else:
            state = ShardState(config)
        fault_plan = config.chaos
        heartbeat = config.heartbeat_interval
        batches_since_checkpoint = 0
        while True:
            try:
                timeout = heartbeat if heartbeat else None
                if endpoint is not None:
                    message = endpoint.receive(in_queue, timeout)
                else:
                    message = in_queue.get(timeout=timeout)
            except queue_module.Empty:
                out_queue.put(
                    ShardHeartbeat(
                        config.shard_id, state.processed_seq, busy=False
                    )
                )
                continue
            if message == STOP:
                out_queue.put(ShardStopped(config.shard_id))
                return
            if heartbeat:
                # Announce the fold *before* starting it, so the
                # supervisor can date any subsequent silence.
                out_queue.put(
                    ShardHeartbeat(config.shard_id, message.seq, busy=True)
                )
            if fault_plan is not None:
                fault_plan.apply(message.seq)
            if config.throttle_seconds:
                time.sleep(config.throttle_seconds)
            started = time.perf_counter()
            output = state.process(message)
            output.busy_seconds = time.perf_counter() - started
            batches_since_checkpoint += 1
            if (
                config.checkpoint_interval
                and batches_since_checkpoint >= config.checkpoint_interval
            ):
                output.snapshot = snapshot(state)
                batches_since_checkpoint = 0
            if endpoint is not None:
                # Release the batch's ring views and consume the frame
                # before shipping the output: the fold is complete, so
                # the producer may reuse the bytes.
                endpoint.commit()
                output.transport_seconds = endpoint.take_decode_seconds()
                endpoint.send_output(output, out_queue, heartbeat)
            else:
                out_queue.put(output)
    except (KeyboardInterrupt, SystemExit):  # pragma: no cover - signals
        raise
    except BaseException as error:  # pragma: no cover - crash reporting
        out_queue.put(ShardStopped(config.shard_id, error=repr(error)))
        raise
