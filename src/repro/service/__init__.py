"""Sharded multi-process aggregation service.

Scale-out layer over the single-process engine: keyed records are
hash-partitioned across N worker processes (micro-batched, with
explicit backpressure), each worker runs the shard-local part of the
shared SlickDeque pipeline, and a cross-shard merger recombines partial
aggregates into answers identical to a single-process run — for
operators whose algebra makes that sound — while a supervisor restores
killed workers from checkpoints and replays their in-flight batches.

Public surface:

* :class:`AggregationService` — the facade (``submit``/``poll``/
  ``close``), plus :class:`ServiceResult`/:class:`ServiceStats`.
* :class:`Router`, :class:`Batch`, :func:`stable_hash`,
  :func:`shard_of` — partitioning and batch framing.
* :class:`SliceClock` — global-position slice arithmetic.
* :class:`ShardConfig`, :class:`ShardState` — the worker pipeline.
* :class:`GlobalMerger`, :class:`PerKeyCollator`,
  :func:`check_mergeable` — cross-shard combination.
* :class:`Supervisor`, :class:`InlineTransport` — worker lifecycle.
* :class:`ServiceGateway` — thread-safe submit/poll seam (the
  :mod:`repro.net` server's entry point into the service).
* :class:`FaultInjector`, :class:`WorkerFaultPlan`, :func:`poison` —
  deterministic fault injection for chaos testing.
"""

from repro.service.chaos import (
    ChaosEvent,
    FaultInjector,
    PoisonValue,
    WorkerFaultPlan,
    poison,
)
from repro.service.gateway import ServiceGateway
from repro.service.merge import (
    GlobalMerger,
    PerKeyCollator,
    check_mergeable,
)
from repro.service.partition import (
    BACKPRESSURE_POLICIES,
    Batch,
    Router,
    drop_records,
    shard_of,
    stable_hash,
    thin_batch,
)
from repro.service.service import (
    AggregationService,
    ServiceResult,
    ServiceStats,
    ShardStats,
)
from repro.service.shard import (
    POISON_POLICIES,
    SHARD_MODES,
    ShardConfig,
    ShardHeartbeat,
    ShardOutput,
    ShardState,
    ShardStopped,
    shard_main,
)
from repro.service.slices import SliceClock
from repro.service.supervisor import InlineTransport, Supervisor

__all__ = [
    "AggregationService",
    "ServiceGateway",
    "ServiceResult",
    "ServiceStats",
    "ShardStats",
    "Router",
    "Batch",
    "stable_hash",
    "shard_of",
    "drop_records",
    "thin_batch",
    "BACKPRESSURE_POLICIES",
    "SliceClock",
    "ShardConfig",
    "ShardState",
    "ShardOutput",
    "ShardHeartbeat",
    "ShardStopped",
    "shard_main",
    "SHARD_MODES",
    "POISON_POLICIES",
    "ChaosEvent",
    "FaultInjector",
    "PoisonValue",
    "WorkerFaultPlan",
    "poison",
    "GlobalMerger",
    "PerKeyCollator",
    "check_mergeable",
    "Supervisor",
    "InlineTransport",
]
