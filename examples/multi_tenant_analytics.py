#!/usr/bin/env python3
"""Multi-tenant analytics: time-based windows + operator sharing.

The paper's Section 2.3 ("multi-query, multi-tenant environments,
where large numbers of ACQs with different ranges and slides operate
on the same data stream, calculating similar aggregations") combined
with its Section 1 remark that windows "can be either count or
time-based":

* Tenant A wants the mean reading of the last 2 s, every second;
* Tenant B wants the total of the last 6 s, every 2 s;
* Tenant C counts samples over the last 4 s, every 2 s;
* Tenant D wants mean AND variance of the last 4 s, every 4 s.

All of these decompose into three distributive components — Sum,
Count, SumOfSquares — so the sharing planner runs just three engines
for seven logical aggregations (count-based part), and the time-based
engine shows the same queries over wall-clock windows with silent
gaps.

Run:  python examples/multi_tenant_analytics.py
"""

from __future__ import annotations

import random

from repro import AcqSpec, CompatibleSharedEngine, Query, TimeQuery
from repro import TimeWindowEngine, get_operator
from repro.windows.compatibility import build_sharing_plan


def sensor_stream(n: int, seed: int = 4):
    rng = random.Random(seed)
    return [round(rng.uniform(10, 30), 2) for _ in range(n)]


def count_based_sharing() -> None:
    print("== Count-based ACQs with compatible-operator sharing ==")
    specs = [
        AcqSpec(Query(20, 10, name="A"), "mean"),
        AcqSpec(Query(60, 20, name="B"), "sum"),
        AcqSpec(Query(40, 20, name="C"), "count"),
        AcqSpec(Query(40, 40, name="D1"), "mean"),
        AcqSpec(Query(40, 40, name="D2"), "variance"),
    ]
    plan = build_sharing_plan(specs)
    print(plan.describe())
    print(f"-> {plan.unshared_component_count} component engines "
          f"without sharing, {plan.shared_component_count} with.\n")

    engine = CompatibleSharedEngine(specs)
    stream = sensor_stream(120)
    answered = 0
    for position, spec, answer in engine.run(stream):
        answered += 1
        if position >= 80:
            print(f"  tuple {position:>3}  {spec.label:<16} "
                  f"= {answer:,.3f}")
    print(f"  total answers: {answered}")


def time_based() -> None:
    print("\n== Time-based ACQs over an irregular event stream ==")
    rng = random.Random(11)
    # Bursty arrivals: quiet stretches produce empty slices, which the
    # engine answers with the operator identity — no phantom values.
    t, stream = 0.0, []
    for _ in range(60):
        t += rng.choice([0.05, 0.1, 0.3, 1.7])
        stream.append((round(t, 2), round(rng.uniform(10, 30), 2)))
    queries = [
        TimeQuery(2.0, 1.0, name="mean2s"),
        TimeQuery(6.0, 2.0, name="mean6s"),
    ]
    engine = TimeWindowEngine(queries, get_operator("mean"))
    print(f"  slice duration: {engine.slice_seconds:g}s")
    shown = 0
    for end_time, query, answer in engine.run(stream):
        if 8.0 <= end_time <= 14.0:
            print(f"  t={end_time:5.1f}s  {query.name:<7} "
                  f"= {answer:.3f}")
            shown += 1
    print(f"  (window answers between 8s and 14s: {shown})")


if __name__ == "__main__":
    count_based_sharing()
    time_based()
