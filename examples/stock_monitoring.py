#!/usr/bin/env python3
"""Stock-market monitoring: the paper's motivating Section 1 scenario.

"A stock market application, where multiple clients monitor the price
fluctuations of the stocks ... a system needs to be able to efficiently
answer analytical queries (e.g., average stock revenue, margin per
stock, etc.) for different clients, each one with (possibly) different
timing requirements."

Three clients register ACQs over one price stream:

* a day-trader wants the mean price of the last 20 ticks, every tick;
* a risk desk wants the min/max *range* of the last 60 ticks, every
  10 ticks;
* a reporting job wants the volatility (standard deviation) of the
  last 120 ticks, every 30 ticks.

Mean and StdDev are invertible (SlickDeque (Inv)); Range decomposes
into Max and Min selection deques — the engine dispatches per query.

Run:  python examples/stock_monitoring.py
"""

from __future__ import annotations

import random

from repro import Query, get_operator
from repro.stream import CollectSink, StreamEngine


def price_stream(ticks: int, seed: int = 99) -> list:
    """A geometric random walk around $100 — a plausible stock."""
    rng = random.Random(seed)
    price = 100.0
    prices = []
    for _ in range(ticks):
        price *= 1.0 + rng.gauss(0.0, 0.004)
        prices.append(round(price, 2))
    return prices


def run_client(name, query, operator_name, prices, show=4):
    engine = StreamEngine(
        [query],
        get_operator(operator_name),
        mode="shared" if operator_name != "range" else "independent",
        algorithm="slickdeque",
    )
    sink = CollectSink()
    engine.add_sink(sink)
    engine.run(prices)
    print(f"\n  {name}: {operator_name} over last {query.range_size} "
          f"ticks, every {query.slide} ticks "
          f"({engine.answers_emitted} answers)")
    for position, _, answer in sink.answers[-show:]:
        print(f"    tick {position:>4}: {answer:,.3f}")


def main() -> None:
    prices = price_stream(600)
    print("Stock monitor over", len(prices), "ticks; last price:",
          prices[-1])
    run_client("day-trader", Query(20, 1, name="mean20"),
               "mean", prices)
    run_client("risk desk", Query(60, 10, name="range60"),
               "range", prices)
    run_client("reporting", Query(120, 30, name="vol120"),
               "stddev", prices)


if __name__ == "__main__":
    main()
