#!/usr/bin/env python3
"""Scaling out: the sharded multi-process aggregation service.

Keyed sensor readings are hash-partitioned across four worker
processes, each running the shard-local half of a shared SlickDeque
pipeline; a cross-shard merger recombines slice partials into answers
identical to a single-process run.  Midway through the stream one
worker is killed with SIGKILL — the supervisor restores it from its
checkpoint, replays the in-flight batches, and the final answers still
match the single-process reference exactly.

Run:  python examples/sharded_service.py
"""

from __future__ import annotations

import os
import signal
import time

from repro import AggregationService, Query, get_operator
from repro.stream.engine import StreamEngine
from repro.stream.sink import CollectSink

QUERIES = [Query(30, 10, name="short"), Query(60, 20, name="long")]
SENSORS = [f"sensor-{i}" for i in range(9)]


def readings(count: int):
    """Deterministic keyed integer readings (ints merge exactly)."""
    return [
        (SENSORS[i % len(SENSORS)], (i * 53 + 11) % 401 - 200)
        for i in range(count)
    ]


def main() -> None:
    records = readings(1_200)

    print("single-process reference ...")
    sink = CollectSink()
    StreamEngine(QUERIES, get_operator("sum"), sinks=[sink]).run(
        value for _, value in records
    )
    reference = sink.answers
    print(f"  {len(reference)} answers from {len(records)} readings")

    print("\nsharded run: 4 worker processes, batches of 32, "
          "checkpoint every 4 batches")
    service = AggregationService(
        QUERIES,
        get_operator("sum"),
        num_shards=4,
        batch_size=32,
        checkpoint_interval=4,
    )
    midpoint = len(records) // 2
    service.submit_many(records[:midpoint])
    service.poll()

    victim = service.shard_pids()[1]
    print(f"  !! killing worker for shard 1 (pid {victim}) with SIGKILL")
    os.kill(victim, signal.SIGKILL)
    time.sleep(0.05)

    service.submit_many(records[midpoint:])
    result = service.close()

    stats = result.stats
    restores = [shard.restores for shard in stats.shards]
    print(f"  shards restored from checkpoint: {restores}")
    print(f"  records processed: {stats.records_processed:,} "
          f"(dropped: {stats.dropped_records})")
    for shard in stats.shards:
        print(f"    shard {shard.shard_id}: {shard.records:>4} records "
              f"in {shard.batches} batches, "
              f"{shard.checkpoints} checkpoints")

    print("\nsharded answers identical to single-process run:",
          result.answers == reference)
    for position, query, answer in result.answers[-3:]:
        print(f"  tuple {position:>5}  {query.name:<6} = {answer}")


if __name__ == "__main__":
    main()
