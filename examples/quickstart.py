#!/usr/bin/env python3
"""Quickstart: sliding-window aggregation with SlickDeque.

Demonstrates the three entry points of the public API:

1. ``make_slickdeque`` — a single ACQ, the right algorithm picked from
   the operator's invertibility (the paper's headline idea);
2. ``make_slickdeque_multi`` — many ranges over one stream;
3. ``SharedSlickDeque`` — full ACQs (range *and* slide) combined into
   one shared execution plan.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Query,
    SharedSlickDeque,
    get_operator,
    make_slickdeque,
    make_slickdeque_multi,
)


def single_query() -> None:
    print("== 1. Single query: Sum over the last 3 values ==")
    window = make_slickdeque(get_operator("sum"), 3)
    for value in [6, 5, 0, 1, 3, 4, 2, 7]:
        print(f"  value={value}  sum(last 3)={window.step(value)}")

    print("\n== ... and Max (non-invertible: deque path, same API) ==")
    window = make_slickdeque(get_operator("max"), 3)
    for value in [6, 5, 0, 1, 3, 4, 2, 7]:
        print(f"  value={value}  max(last 3)={window.step(value)}")


def multi_range() -> None:
    print("\n== 2. Multi-query: Mean over three ranges at once ==")
    ranges = [3, 5, 8]
    windows = make_slickdeque_multi(get_operator("mean"), ranges)
    for value in [6.0, 5.0, 0.0, 1.0, 3.0, 4.0, 2.0, 7.0]:
        answers = windows.step(value)
        pretty = "  ".join(
            f"mean(last {r})={answers[r]:.2f}" for r in sorted(answers)
        )
        print(f"  value={value}  {pretty}")


def shared_plan() -> None:
    print("\n== 3. Shared plan: the paper's Example 1 ==")
    # Two Max ACQs over the same stream: ranges 6 and 8 tuples,
    # slides 2 and 4 tuples.  Partial aggregates are computed once
    # every 2 tuples and shared by both queries.
    acqs = [Query(range_size=6, slide=2), Query(range_size=8, slide=4)]
    engine = SharedSlickDeque(acqs, get_operator("max"))
    print(f"  plan: {engine.plan.describe()}")
    stream = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8]
    for position, acq, answer in engine.run(stream):
        print(f"  tuple #{position:>2}  {acq.name}: max = {answer}")


if __name__ == "__main__":
    single_query()
    multi_range()
    shared_plan()
