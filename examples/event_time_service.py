#!/usr/bin/env python3
"""Event time end to end: timestamped records through the sharded service.

Sensor readings carry *event* timestamps and arrive slightly out of
order (network jitter).  A bounded-lateness reorder buffer at the
service ingress re-sequences them, a watermark trailing the newest
timestamp drives time-slice closing across the worker shards, and the
answers come out identical to a single-node run over the same stream —
which the script checks against an :class:`EventTimeEngine` oracle.
A final burst of hopelessly late records shows the ``"drop"`` policy
diverting them to the dead-letter sink instead of corrupting closed
windows.

Run:  python examples/event_time_service.py
"""

from __future__ import annotations

from repro import AggregationService, get_operator
from repro.stream.engine import EventTimeEngine
from repro.windows.timebased import TimeQuery

QUERIES = [
    TimeQuery(2.0, 1.0, name="2s-window"),
    TimeQuery(5.0, 2.0, name="5s-window"),
]
LATENESS = 1.0  # seconds a record may trail the newest timestamp
SENSORS = [f"sensor-{i}" for i in range(6)]


def readings(count: int):
    """Timestamped keyed readings, shuffled within the lateness bound.

    Timestamps are strictly increasing on a 0.1s grid; arrival order
    is jittered by less than ``LATENESS`` seconds, so every record is
    still releasable and the re-sequenced stream is exact.
    """
    records = [
        (
            SENSORS[i % len(SENSORS)],
            i / 10 + 0.011,
            (i * 53 + 11) % 401 - 200,
        )
        for i in range(count)
    ]
    return sorted(
        records,
        key=lambda r: r[1] + ((hash(r[0]) ^ int(r[1] * 10)) % 9) / 10,
    )


def main() -> None:
    records = readings(600)

    print("single-node event-time oracle ...")
    oracle = EventTimeEngine(
        QUERIES, get_operator("sum"), lateness=LATENESS
    )
    reference = []
    for _, timestamp, value in records:
        reference.extend(oracle.feed(timestamp, value))
    reference.extend(oracle.finish())
    print(f"  {len(reference)} answers from {len(records)} readings, "
          f"final watermark {oracle.watermark:.1f}s")

    print("\nsharded event-time run: 3 worker processes, "
          f"lateness {LATENESS:.1f}s, late policy 'drop'")
    service = AggregationService(
        QUERIES,
        get_operator("sum"),
        num_shards=3,
        mode="time",
        transport="process",
        lateness=LATENESS,
        late_policy="drop",
        batch_size=25,
    )
    answers = []
    try:
        for key, timestamp, value in records:
            service.submit_event(key, value, timestamp)
        answers.extend(service.poll())

        stats = service.event_time_stats()
        print(f"  watermark {stats['watermark']:.1f}s trails newest "
              f"timestamp {stats['high']:.1f}s; "
              f"{stats['pending_reorder']} records still in the "
              f"reorder buffer")

        # Records behind the watermark by more than the lateness bound
        # cannot be folded into already-closed windows; the 'drop'
        # policy dead-letters them instead of raising.
        print("\nsubmitting 3 hopelessly late readings ...")
        for late_ts in (0.5, 1.0, 1.5):
            service.submit_event("sensor-0", 999, late_ts)
        result = service.close()
    except BaseException:
        service.abort()
        raise
    answers.extend(service.poll())

    print(f"  late records dead-lettered: "
          f"{result.stats.late_records} "
          f"(dead letters kept: {len(result.dead_letters)})")
    print("\nsharded event-time answers identical to single-node "
          "oracle:", answers == reference)
    for end_time, query, answer in answers[-3:]:
        print(f"  window ending {end_time:>6.1f}s  "
              f"{query.name:<9} = {answer}")


if __name__ == "__main__":
    main()
