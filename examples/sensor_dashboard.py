#!/usr/bin/env python3
"""Manufacturing-sensor dashboard over a DEBS12-style stream.

The paper's evaluation workload: hi-tech manufacturing equipment
sensors sampled at 100 Hz, three energy readings per event (Section
5.1).  A monitoring dashboard watches one energy channel with
non-invertible ACQs at three time scales — peak power over the last
second, ten seconds, and one minute — all answered from a single
shared SlickDeque (Non-Inv) deque, plus a mean-power ACQ on the
invertible path.

Run:  python examples/sensor_dashboard.py
"""

from __future__ import annotations

from repro import Query, get_operator
from repro.datasets import debs12_events
from repro.stream import LatestSink, StreamEngine, from_events

#: 100 Hz sampling: tuples per second.
HZ = 100

PEAK_QUERIES = [
    Query(1 * HZ, 25, name="peak/1s"),
    Query(10 * HZ, 100, name="peak/10s"),
    Query(60 * HZ, 500, name="peak/1min"),
]

MEAN_QUERY = Query(10 * HZ, 100, name="mean/10s")


def main(seconds: int = 120) -> None:
    events = list(debs12_events(seconds * HZ, seed=2012,
                                include_states=False))
    energy = list(from_events(events, reading=0))

    peak_board = LatestSink()
    peaks = StreamEngine(PEAK_QUERIES, get_operator("max"),
                         sinks=[peak_board])
    mean_board = LatestSink()
    means = StreamEngine([MEAN_QUERY], get_operator("mean"),
                         sinks=[mean_board])

    print(f"Streaming {len(energy)} sensor events "
          f"({seconds}s at {HZ} Hz)...\n")
    for index, value in enumerate(energy, start=1):
        peaks.feed(value)
        means.feed(value)
        if index % (30 * HZ) == 0:
            print(f"--- dashboard at t={index / HZ:.0f}s ---")
            for query in PEAK_QUERIES:
                position, answer = peak_board.latest[query]
                print(f"  {query.name:<10} {answer:8.2f} kW "
                      f"(as of tuple {position})")
            position, answer = mean_board.latest[MEAN_QUERY]
            print(f"  {MEAN_QUERY.name:<10} {answer:8.2f} kW "
                  f"(as of tuple {position})")

    print(f"\nanswers produced: peaks={peaks.answers_emitted}, "
          f"means={means.answers_emitted}")


if __name__ == "__main__":
    main()
