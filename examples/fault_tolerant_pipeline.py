#!/usr/bin/env python3
"""A fault-tolerant monitoring pipeline: the extensions composed.

Production concerns around the core aggregation, all from this
library: tuples arrive slightly out of order over the network
(§3.1), the operator state is checkpointed periodically, and after a
simulated crash the pipeline resumes from the last checkpoint and
replays only the tuples since — producing exactly the answers an
uninterrupted run would have.

Run:  python examples/fault_tolerant_pipeline.py
"""

from __future__ import annotations

import random

from repro import Query, SharedSlickDeque, get_operator
from repro.stream.checkpoint import restore, snapshot
from repro.stream.source import reordered

CHECKPOINT_EVERY = 500
CRASH_AT = 1_337


def network_feed(count: int, seed: int = 7):
    """Positioned tuples with jittered (slightly late) delivery."""
    rng = random.Random(seed)
    values = [round(rng.gauss(50, 12), 2) for _ in range(count)]
    positioned = list(enumerate(values, start=1))
    # Local jitter: swap within windows of 4 (lateness <= 3).
    for i in range(0, count - 4, 4):
        window = positioned[i:i + 4]
        rng.shuffle(window)
        positioned[i:i + 4] = window
    return positioned, values


def main() -> None:
    positioned, values = network_feed(2_000)
    queries = [Query(60, 20, name="p-mean"), Query(240, 60, name="l-mean")]

    print("running with checkpoints every", CHECKPOINT_EVERY,
          "tuples; crash injected at tuple", CRASH_AT)
    engine = SharedSlickDeque(queries, get_operator("mean"))
    answers = []
    last_checkpoint = snapshot(engine)
    checkpoint_position = 0

    consumed = 0
    crashed = False
    for value in reordered(positioned, slack=4):
        consumed += 1
        if consumed == CRASH_AT and not crashed:
            crashed = True
            print(f"  !! crash at tuple {consumed}: discarding live "
                  "state, restoring checkpoint from tuple "
                  f"{checkpoint_position}")
            engine = restore(last_checkpoint,
                             expected_type="SharedSlickDeque")
            # Replay the gap from the (ordered) log, then continue.
            answers = [
                a for a in answers if a[0] <= checkpoint_position
            ]
            for position in range(checkpoint_position + 1, consumed):
                answers.extend(engine.feed(values[position - 1]))
        answers.extend(engine.feed(values[consumed - 1]))
        if consumed % CHECKPOINT_EVERY == 0:
            last_checkpoint = snapshot(engine)
            checkpoint_position = consumed
            print(f"  checkpoint at tuple {consumed} "
                  f"({len(last_checkpoint):,} bytes)")

    # Prove exactness: an uninterrupted engine gives the same answers.
    reference = list(
        SharedSlickDeque(queries, get_operator("mean")).run(values)
    )
    print(f"\nanswers produced: {len(answers)}; "
          f"uninterrupted reference: {len(reference)}")
    print("crash-recovered run identical to uninterrupted run:",
          answers == reference)
    for position, query, answer in answers[-3:]:
        print(f"  tuple {position:>5}  {query.name:<7} = {answer:.3f}")


if __name__ == "__main__":
    main()
