#!/usr/bin/env python3
"""Serving over the network: the sharded service behind a socket.

Starts an :class:`~repro.net.server.AggregationServer` on an ephemeral
localhost port (four inline shards, shed-style admission control),
drives it with the synchronous client — pipelined SUBMIT_BATCH bursts,
a mid-stream POLL, a STATS snapshot — then drains and verifies the
over-the-wire answers against a single-process
:class:`~repro.stream.engine.StreamEngine` run of the same records.

With ``--metrics-port N`` the run also serves the server's telemetry
hub in the Prometheus text exposition format on
``http://127.0.0.1:N/metrics`` for its duration (``0`` picks an
ephemeral port) — per-stage latency histograms for decode, admission,
submit, shard fold, merge, and reply; see ``docs/observability.md``.

Run:  python examples/net_server.py   (or: make serve)
"""

from __future__ import annotations

import argparse
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import (
    AggregationClient,
    AggregationServer,
    AggregationService,
    Query,
    ServerThread,
    get_operator,
    mint_trace_id,
)
from repro.stream.engine import StreamEngine
from repro.stream.sink import CollectSink

QUERIES = [Query(30, 10, name="short"), Query(60, 20, name="long")]
SENSORS = [f"sensor-{i}" for i in range(9)]


def readings(count: int):
    """Deterministic keyed integer readings (ints merge exactly)."""
    return [
        (SENSORS[i % len(SENSORS)], (i * 53 + 11) % 401 - 200)
        for i in range(count)
    ]


class _MetricsHandler(BaseHTTPRequestHandler):
    """Serve ``/metrics`` from the aggregation server's telemetry hub."""

    server_version = "repro-metrics/1.0"
    aggregation_server: AggregationServer = None  # set per HTTP server

    def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path.rstrip("/") not in ("", "/metrics"):
            self.send_error(404, "only /metrics is served")
            return
        body = self.aggregation_server.render_metrics().encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):
        """Silence per-request stderr logging."""


def start_metrics_server(
    server: AggregationServer, port: int
) -> ThreadingHTTPServer:
    """Serve ``server``'s metrics over HTTP on a daemon thread."""
    handler = type(
        "_BoundMetricsHandler",
        (_MetricsHandler,),
        {"aggregation_server": server},
    )
    http_server = ThreadingHTTPServer(("127.0.0.1", port), handler)
    threading.Thread(
        target=http_server.serve_forever,
        name="repro-metrics-http",
        daemon=True,
    ).start()
    return http_server


def main(metrics_port: int = None) -> None:
    records = readings(1_200)

    print("single-process reference ...")
    sink = CollectSink()
    StreamEngine(QUERIES, get_operator("sum"), sinks=[sink]).run(
        value for _, value in records
    )
    reference = sink.answers
    print(f"  {len(reference)} answers from {len(records)} readings")

    print("\nstarting the TCP server (ephemeral port, 4 inline "
          "shards, shed admission) ...")
    service = AggregationService(
        QUERIES,
        get_operator("sum"),
        num_shards=4,
        transport="inline",
        batch_size=32,
    )
    server = AggregationServer(
        service,
        max_inflight_records=4096,
        admission_policy="shed",
    )
    metrics_http = None
    with ServerThread(server) as thread:
        print(f"  listening on 127.0.0.1:{thread.port}")
        if metrics_port is not None:
            metrics_http = start_metrics_server(server, metrics_port)
            actual = metrics_http.server_address[1]
            print(f"  metrics on http://127.0.0.1:{actual}/metrics")
        with AggregationClient("127.0.0.1", thread.port) as client:
            # The last 50 records go in a traced frame of their own.
            head, tail = records[:-50], records[-50:]
            batches = [
                head[start : start + 100]
                for start in range(0, len(head), 100)
            ]
            print(f"\npipelining {len(batches)} SUBMIT_BATCH frames "
                  f"({len(head)} records) ...")
            accepted = client.submit_batches(batches)
            print(f"  accepted per batch: {accepted[:6]} ...")

            trace_id = mint_trace_id()
            client.submit_batch(tail, trace_id=trace_id)
            print(f"  traced the last {len(tail)} records under "
                  f"trace {trace_id:#x}; reply echoed "
                  f"{client.last_reply_trace_id:#x}")

            polled = client.poll()
            print(f"  POLL released {len(polled)} answers so far; "
                  "first three:")
            for position, query, answer in polled[:3]:
                print(f"    t={position:>4}  {query.name:<6} {answer}")

            stats = client.stats()["server"]
            latency = stats["submit_latency"]
            print("\nSTATS:")
            print(f"  accepted {stats['accepted_records']} records in "
                  f"{stats['accepted_batches']} batches, "
                  f"shed {stats['shed_records']}")
            print(f"  ingest throughput "
                  f"{stats['throughput_rps']:,.0f} records/s")
            if latency:
                print(f"  submit latency median "
                      f"{latency['median'] * 1e3:.2f} ms, p75 "
                      f"{latency['p75'] * 1e3:.2f} ms "
                      f"({latency['count']} sampled)")

            print("\nDRAIN: flushing the service ...")
            answers, final = client.drain()
            print(f"  {len(answers)} total answers; service folded "
                  f"{final['stats']['records_processed']} records on "
                  f"{len(final['stats']['failed_shards']) or 'no'} "
                  "failed shards")

        print("\ntelemetry (Prometheus text exposition, excerpt):")
        exposition = server.render_metrics()
        for line in exposition.splitlines():
            if line.endswith("_count") or "_count " in line or (
                line.startswith("# TYPE")
            ):
                print(f"  {line}")
    if metrics_http is not None:
        metrics_http.shutdown()

    matches = answers == reference
    print(f"\nover-the-wire answers match the single-process run: "
          f"{matches}")
    if not matches:
        raise SystemExit(1)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description="Serve the sharded service over TCP and verify "
        "its answers against a single-process run."
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve Prometheus-format metrics on "
        "http://127.0.0.1:PORT/metrics (0 = ephemeral port)",
    )
    main(parser.parse_args().metrics_port)
