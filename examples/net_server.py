#!/usr/bin/env python3
"""Serving over the network: the sharded service behind a socket.

Starts an :class:`~repro.net.server.AggregationServer` on an ephemeral
localhost port (four inline shards, shed-style admission control),
drives it with the synchronous client — pipelined SUBMIT_BATCH bursts,
a mid-stream POLL, a STATS snapshot — then drains and verifies the
over-the-wire answers against a single-process
:class:`~repro.stream.engine.StreamEngine` run of the same records.

Run:  python examples/net_server.py   (or: make serve)
"""

from __future__ import annotations

from repro import (
    AggregationClient,
    AggregationServer,
    AggregationService,
    Query,
    ServerThread,
    get_operator,
)
from repro.stream.engine import StreamEngine
from repro.stream.sink import CollectSink

QUERIES = [Query(30, 10, name="short"), Query(60, 20, name="long")]
SENSORS = [f"sensor-{i}" for i in range(9)]


def readings(count: int):
    """Deterministic keyed integer readings (ints merge exactly)."""
    return [
        (SENSORS[i % len(SENSORS)], (i * 53 + 11) % 401 - 200)
        for i in range(count)
    ]


def main() -> None:
    records = readings(1_200)

    print("single-process reference ...")
    sink = CollectSink()
    StreamEngine(QUERIES, get_operator("sum"), sinks=[sink]).run(
        value for _, value in records
    )
    reference = sink.answers
    print(f"  {len(reference)} answers from {len(records)} readings")

    print("\nstarting the TCP server (ephemeral port, 4 inline "
          "shards, shed admission) ...")
    service = AggregationService(
        QUERIES,
        get_operator("sum"),
        num_shards=4,
        transport="inline",
        batch_size=32,
    )
    server = AggregationServer(
        service,
        max_inflight_records=4096,
        admission_policy="shed",
    )
    with ServerThread(server) as thread:
        print(f"  listening on 127.0.0.1:{thread.port}")
        with AggregationClient("127.0.0.1", thread.port) as client:
            batches = [
                records[start : start + 100]
                for start in range(0, len(records), 100)
            ]
            print(f"\npipelining {len(batches)} SUBMIT_BATCH frames "
                  f"({len(records)} records) ...")
            accepted = client.submit_batches(batches)
            print(f"  accepted per batch: {accepted[:6]} ...")

            polled = client.poll()
            print(f"  POLL released {len(polled)} answers so far; "
                  "first three:")
            for position, query, answer in polled[:3]:
                print(f"    t={position:>4}  {query.name:<6} {answer}")

            stats = client.stats()["server"]
            latency = stats["submit_latency"]
            print("\nSTATS:")
            print(f"  accepted {stats['accepted_records']} records in "
                  f"{stats['accepted_batches']} batches, "
                  f"shed {stats['shed_records']}")
            print(f"  ingest throughput "
                  f"{stats['throughput_rps']:,.0f} records/s")
            if latency:
                print(f"  submit latency median "
                      f"{latency['median'] * 1e3:.2f} ms, p75 "
                      f"{latency['p75'] * 1e3:.2f} ms "
                      f"({latency['count']} sampled)")

            print("\nDRAIN: flushing the service ...")
            answers, final = client.drain()
            print(f"  {len(answers)} total answers; service folded "
                  f"{final['stats']['records_processed']} records on "
                  f"{len(final['stats']['failed_shards']) or 'no'} "
                  "failed shards")

    matches = answers == reference
    print(f"\nover-the-wire answers match the single-process run: "
          f"{matches}")
    if not matches:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
