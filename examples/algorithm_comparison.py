#!/usr/bin/env python3
"""Compare every final-aggregation algorithm on one workload.

A miniature of the paper's Exp 1: all seven algorithms run the same
single-query Max workload at one window size; the script reports
throughput, the per-slide aggregate-operation profile (the paper's
§4.1 complexity metric), and the logical memory footprint — the three
axes of Table 1 and Figs. 10-15.

Run:  python examples/algorithm_comparison.py [window] [tuples]
"""

from __future__ import annotations

import sys
import time

from repro import available_algorithms, get_algorithm, get_operator
from repro.datasets import debs12_array
from repro.metrics import count_ops, peak_memory_words


def compare(window: int, tuples: int) -> None:
    stream = debs12_array(tuples, seed=2012)
    print(f"workload: Max over window={window}, {tuples} DEBS12-style "
          "tuples\n")
    header = (f"{'algorithm':<11} {'tuples/s':>12} {'ops/slide':>10} "
              f"{'worst ops':>10} {'memory words':>13}")
    print(header)
    print("-" * len(header))
    for name in available_algorithms():
        spec = get_algorithm(name)

        aggregator = spec.single(get_operator("max"), window)
        started = time.perf_counter()
        step = aggregator.step
        for value in stream:
            step(value)
        rate = tuples / (time.perf_counter() - started)

        profile = count_ops(
            lambda op: spec.single(op, window),
            get_operator("max"),
            stream,
        ).steady_state(2 * window)

        words = peak_memory_words(
            spec.single(get_operator("max"), window), stream
        )
        print(f"{name:<11} {rate:>12,.0f} {profile.amortized:>10.2f} "
              f"{profile.worst_case:>10} {words:>13,}")

    print("\nExpected shape (paper Table 1 / Figs. 11, 14, 15):")
    print("  slickdeque: <2 ops amortized, lowest memory on real data;")
    print("  twostacks/flatfit: ~3 ops amortized but n-op spikes;")
    print("  daba: flat but ~5 ops; flatfat/bint: log n; naive: n-1.")


if __name__ == "__main__":
    window = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    tuples = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    compare(window, tuples)
