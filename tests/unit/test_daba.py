"""Unit tests for DABA (de-amortized TwoStacks)."""

from __future__ import annotations

import pytest

from repro.baselines.daba import DABAAggregator
from repro.baselines.recalc import RecalcAggregator
from repro.errors import WindowStateError
from repro.operators.instrumented import CountingOperator, SlideOpRecorder
from repro.operators.invertible import SumOperator
from repro.operators.noninvertible import MaxOperator
from tests.conftest import int_stream


def test_matches_recalc():
    stream = int_stream(500, seed=41)
    for window in (1, 2, 3, 4, 7, 16, 33, 64):
        assert (
            DABAAggregator(SumOperator(), window).run(stream)
            == RecalcAggregator(SumOperator(), window).run(stream)
        )


def test_matches_recalc_max():
    stream = int_stream(400, seed=42)
    for window in (1, 5, 32):
        assert (
            DABAAggregator(MaxOperator(), window).run(stream)
            == RecalcAggregator(MaxOperator(), window).run(stream)
        )


def test_worst_case_ops_bounded_by_8():
    """Table 1: DABA worst case 8 ops/slide — no O(n) spikes, ever."""
    for window in (1, 2, 7, 64, 257):
        op = CountingOperator(SumOperator())
        agg = DABAAggregator(op, window)
        rec = SlideOpRecorder(op)
        for value in int_stream(6 * window + 50, seed=window):
            agg.step(value)
            rec.mark_slide()
        assert rec.worst_case_ops <= 8, window


def test_amortized_about_five_ops():
    """Table 1: DABA amortized 5 ops/slide."""
    window = 64
    op = CountingOperator(SumOperator())
    agg = DABAAggregator(op, window)
    rec = SlideOpRecorder(op)
    for value in int_stream(40 * window, seed=43):
        agg.step(value)
        rec.mark_slide()
    steady = rec.per_slide[2 * window:]
    amortized = sum(steady) / len(steady)
    assert 3.5 <= amortized <= 5.5


def test_push_schedule_never_forces_rebuild_completion():
    """The de-amortization invariant: rebuilds finish on time."""
    for window in (1, 2, 3, 5, 8, 64):
        agg = DABAAggregator(SumOperator(), window)
        for value in int_stream(10 * window + 7, seed=window + 1):
            agg.push(value)
        assert agg.forced_finishes == 0, window
        assert agg.rebuilds > 0


def test_size_tracks_window():
    agg = DABAAggregator(SumOperator(), 8)
    for index, value in enumerate(int_stream(50, seed=44), start=1):
        agg.push(value)
        assert len(agg) == min(index, 8)


def test_evict_from_empty_raises():
    agg = DABAAggregator(SumOperator(), 4)
    with pytest.raises(WindowStateError):
        agg.evict()


def test_manual_evict_is_supported():
    agg = DABAAggregator(SumOperator(), 8)
    for value in (1, 2, 3):
        agg.push(value)
    agg.evict()
    assert agg.query() == 5


def test_query_empty_is_identity():
    assert DABAAggregator(SumOperator(), 4).query() == 0


def test_memory_words_about_2n():
    window = 256
    agg = DABAAggregator(SumOperator(), window)
    peak = 0
    for value in int_stream(6 * window, seed=45):
        agg.push(value)
        peak = max(peak, agg.memory_words())
    # §4.2 target: 2n + 4√n; our rebuild transient can reach ~2.5n
    # (documented deviation) — never 3n or more.
    assert 2 * window <= peak < 3 * window


def test_no_multi_query_support():
    assert not DABAAggregator.supports_multi_query
