"""Unit tests for B-Int (base intervals)."""

from __future__ import annotations

from repro.baselines.bint import BIntAggregator, BIntMultiAggregator
from repro.baselines.recalc import RecalcAggregator
from repro.operators.instrumented import CountingOperator
from repro.operators.invertible import SumOperator
from repro.operators.noninvertible import MinOperator
from tests.conftest import int_stream


def test_matches_recalc():
    stream = int_stream(200, seed=9)
    for window in (1, 2, 7, 16, 33):
        assert (
            BIntAggregator(SumOperator(), window).run(stream)
            == RecalcAggregator(SumOperator(), window).run(stream)
        )


def test_level_structure():
    agg = BIntAggregator(SumOperator(), 8)
    levels = agg._intervals.levels
    assert [len(level) for level in levels] == [8, 4, 2, 1]


def test_update_touches_every_level():
    op = CountingOperator(SumOperator())
    agg = BIntAggregator(op, 64)
    for value in range(128):
        agg.push(value)
    op.reset()
    agg.push(1)
    # One combine per non-base level: log2(64) = 6.
    assert op.ops == 6


def test_query_cost_bounded_by_2_log_n(subtests=None):
    op = CountingOperator(SumOperator())
    agg = BIntAggregator(op, 64)
    for value in range(200):
        agg.push(value)
    op.reset()
    agg.query()
    assert op.ops <= 2 * 6 + 2


def test_constant_factor_slower_than_flatfat():
    """Section 4.1: same asymptotics as FlatFAT, slower by a constant."""
    from repro.baselines.flatfat import FlatFATAggregator

    stream = int_stream(600, seed=10)
    window = 64

    def total_ops(make):
        op = CountingOperator(SumOperator())
        agg = make(op)
        for value in stream:
            agg.step(value)
        return op.ops

    flatfat_ops = total_ops(lambda op: FlatFATAggregator(op, window))
    bint_ops = total_ops(lambda op: BIntAggregator(op, window))
    assert flatfat_ops < bint_ops <= 4 * flatfat_ops


def test_multi_query_matches_recalc():
    stream = int_stream(60, seed=11)
    ranges = [1, 3, 5, 9]
    agg = BIntMultiAggregator(MinOperator(), ranges)
    reference = {r: RecalcAggregator(MinOperator(), r) for r in ranges}
    for value in stream:
        answers = agg.step(value)
        for r, ref in reference.items():
            assert answers[r] == ref.step(value)


def test_memory_counts_all_levels():
    # 2 * 2^ceil(log n) - 1 interval slots.
    assert BIntAggregator(SumOperator(), 8).memory_words() == 15
    assert BIntAggregator(SumOperator(), 9).memory_words() == 31
