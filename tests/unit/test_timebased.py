"""Unit tests for time-based windows."""

from __future__ import annotations

import pytest

from repro.errors import InvalidQueryError, OutOfOrderError
from repro.operators.registry import get_operator
from repro.windows.query import Query
from repro.windows.timebased import (
    TimeQuery,
    TimeSlicer,
    TimeWindowEngine,
    slice_duration,
)


class TestTimeQuery:
    def test_default_name(self):
        assert TimeQuery(10.0, 2.0).name == "q10s/2s"

    def test_validation(self):
        with pytest.raises(InvalidQueryError):
            TimeQuery(0.0, 1.0)
        with pytest.raises(InvalidQueryError):
            TimeQuery(1.0, -1.0)

    def test_to_count_query(self):
        query = TimeQuery(10.0, 2.0)
        count = query.to_count_query(slice_seconds=2.0)
        assert count == Query(5, 1, name="q10s/2s")

    def test_to_count_query_misaligned_rejected(self):
        with pytest.raises(InvalidQueryError, match="not multiples"):
            TimeQuery(10.0, 3.0).to_count_query(slice_seconds=4.0)

    def test_sub_resolution_duration_rejected(self):
        with pytest.raises(InvalidQueryError, match="resolution"):
            TimeQuery(0.0005, 0.0005).to_count_query(0.0005)


class TestSliceDuration:
    def test_gcd_of_durations(self):
        queries = [TimeQuery(6.0, 2.0), TimeQuery(8.0, 4.0)]
        assert slice_duration(queries) == pytest.approx(2.0)

    def test_fractional_seconds_exact(self):
        # 0.1 s is not exactly representable in binary; the integer
        # tick conversion must still produce an exact 0.1 s slice.
        queries = [TimeQuery(0.6, 0.2), TimeQuery(0.5, 0.1)]
        assert slice_duration(queries) == pytest.approx(0.1)

    def test_empty_rejected(self):
        with pytest.raises(InvalidQueryError):
            slice_duration([])


class TestTimeSlicer:
    def test_slices_by_timestamp(self):
        slicer = TimeSlicer(1.0)
        closed = []
        for timestamp, value in [(0.1, "a"), (0.9, "b"), (2.5, "c")]:
            closed.extend(slicer.feed(timestamp, value))
        closed.extend(slicer.flush())
        assert closed == [(0, ["a", "b"]), (1, []), (2, ["c"])]

    def test_empty_slices_emitted(self):
        slicer = TimeSlicer(1.0)
        closed = list(slicer.feed(3.5, "x"))
        assert closed == [(0, []), (1, []), (2, [])]

    def test_out_of_order_rejected(self):
        slicer = TimeSlicer(1.0)
        list(slicer.feed(5.0, "a"))
        with pytest.raises(OutOfOrderError):
            list(slicer.feed(4.0, "b"))

    def test_before_origin_rejected(self):
        slicer = TimeSlicer(1.0, origin=10.0)
        with pytest.raises(OutOfOrderError):
            list(slicer.feed(9.0, "a"))


class TestTimeWindowEngine:
    def brute(self, queries, operator_name, stream, horizon):
        """Reference: evaluate each window over raw timestamps."""
        op = get_operator(operator_name)
        expected = []
        for query in sorted(
            queries,
            key=lambda q: (-q.range_seconds, q.slide_seconds),
        ):
            boundaries = []
            end = query.slide_seconds
            while end <= horizon + 1e-9:
                values = [
                    v
                    for t, v in stream
                    if end - query.range_seconds <= t < end
                ]
                boundaries.append(
                    (round(end, 9), query.name, op.lower(op.fold(values)))
                )
                end += query.slide_seconds
            expected.extend(boundaries)
        return sorted(expected)

    def test_matches_brute_force(self):
        stream = [
            (0.2, 5), (0.7, 1), (1.1, 9), (2.0, 4), (2.9, 2),
            (3.3, 8), (5.2, 7), (5.9, 3), (7.5, 6), (9.9, 5),
        ]
        queries = [TimeQuery(4.0, 2.0), TimeQuery(6.0, 3.0)]
        engine = TimeWindowEngine(queries, get_operator("max"))
        got = sorted(
            (round(t, 9), q.name, a)
            for t, q, a in engine.run(stream)
            if t <= 9.0  # brute horizon: fully-elapsed slides only
        )
        expected = [
            row for row in self.brute(queries, "max", stream, 10.0)
            if row[0] <= 9.0
        ]
        assert got == expected

    def test_sum_with_empty_slices(self):
        stream = [(0.5, 10), (4.5, 20)]  # a long silent gap
        engine = TimeWindowEngine(
            [TimeQuery(2.0, 1.0)], get_operator("sum")
        )
        answers = {round(t, 6): a for t, _, a in engine.run(stream)}
        assert answers[1.0] == 10
        assert answers[2.0] == 10  # window [0, 2): only the first tuple
        assert answers[3.0] == 0  # empty window
        assert answers[4.0] == 0
        assert answers[5.0] == 20

    def test_slice_is_gcd(self):
        engine = TimeWindowEngine(
            [TimeQuery(6.0, 2.0), TimeQuery(9.0, 3.0)],
            get_operator("sum"),
        )
        assert engine.slice_seconds == pytest.approx(1.0)

    def test_mean_lowering(self):
        stream = [(0.1, 2.0), (0.6, 4.0), (1.4, 9.0)]
        engine = TimeWindowEngine(
            [TimeQuery(1.0, 1.0)], get_operator("mean")
        )
        answers = [a for _, _, a in engine.run(stream)]
        assert answers[0] == pytest.approx(3.0)
        assert answers[1] == pytest.approx(9.0)
