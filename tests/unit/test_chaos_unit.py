"""Unit tests: fault-injection building blocks.

Covers the pieces the chaos integration suite composes: the seeded
:class:`FaultInjector` schedule (determinism, at-most-once firing, the
event log), :class:`PoisonValue` semantics (raises inside the operator,
travels through pickle), :class:`WorkerFaultPlan` picklability, the
:class:`DeadLetterSink`, and the bounded :class:`Reservoir` that
replaced the unbounded latency list.
"""

from __future__ import annotations

import pickle

import pytest

from repro.metrics import Reservoir
from repro.service.chaos import (
    ChaosEvent,
    FaultInjector,
    PoisonValue,
    WorkerFaultPlan,
    poison,
)
from repro.service.shard import ShardConfig
from repro.stream.sink import DeadLetter, DeadLetterSink
from repro.windows.query import Query


class FakeProcess:
    """Records ``kill()`` calls in place of a real worker process."""

    def __init__(self):
        self.killed = 0

    def kill(self):
        """Count the kill instead of signalling anything."""
        self.killed += 1


def _config(shard_id=0):
    import repro

    return ShardConfig(
        shard_id=shard_id,
        num_shards=2,
        queries=(Query(8, 4),),
        operator=repro.get_operator("sum"),
        technique="pairs",
        mode="global",
    )


# -- PoisonValue ----------------------------------------------------


def test_poison_value_raises_on_any_operator_touch():
    bad = poison("p1")
    for operation in (
        lambda: bad + 1,
        lambda: 1 + bad,
        lambda: bad - 1,
        lambda: bad * 2,
        lambda: bad < 5,
        lambda: bad > 5,
        lambda: -bad,
        lambda: abs(bad),
        lambda: float(bad),
        lambda: int(bad),
    ):
        with pytest.raises(RuntimeError, match="poison value 'p1'"):
            operation()


def test_poison_value_survives_pickling():
    clone = pickle.loads(pickle.dumps(poison("labelled")))
    assert isinstance(clone, PoisonValue)
    assert clone.label == "labelled"
    with pytest.raises(RuntimeError):
        clone + 0


def test_poison_value_is_inert_until_touched():
    # Routing/batching only repr() and move the value around — none of
    # which may raise, or the failure would surface outside the worker.
    bad = poison()
    assert "PoisonValue" in repr(bad)
    assert len([bad, bad]) == 2


# -- WorkerFaultPlan ------------------------------------------------


def test_empty_fault_plan_is_falsy_and_apply_is_a_noop():
    plan = WorkerFaultPlan()
    assert not plan
    plan.apply(1)  # no sleep, no error


def test_fault_plan_travels_through_pickle():
    plan = WorkerFaultPlan(stall_at=((3, 0.1),), wedge_at=(5,))
    clone = pickle.loads(pickle.dumps(plan))
    assert clone == plan
    assert bool(clone)


def test_stall_plan_sleeps_only_at_its_sequence(monkeypatch):
    import repro.service.chaos as chaos

    slept = []
    monkeypatch.setattr(chaos.time, "sleep", slept.append)
    plan = WorkerFaultPlan(stall_at=((3, 0.25),))
    plan.apply(2)
    assert slept == []
    plan.apply(3)
    assert slept == [0.25]


# -- FaultInjector schedule -----------------------------------------


def test_kill_after_ship_fires_once_at_the_scheduled_seq():
    injector = FaultInjector().kill_worker(0, after_seq=3)
    process = FakeProcess()
    injector.on_shipped(process, 0, 2)
    assert process.killed == 0
    injector.on_shipped(process, 0, 3)
    assert process.killed == 1
    injector.on_shipped(process, 0, 3)  # replayed seq: fault is spent
    assert process.killed == 1
    assert injector.fired("kill") == [ChaosEvent("kill", 0, 3)]


def test_crash_loop_kills_the_declared_number_of_spawns():
    injector = FaultInjector().crash_loop(1, times=2)
    process = FakeProcess()
    assert injector.on_spawned(process, 1) is True
    assert injector.on_spawned(process, 1) is True
    assert injector.on_spawned(process, 1) is False
    assert injector.on_spawned(process, 0) is False  # other shard
    assert process.killed == 2
    assert len(injector.fired("spawn-kill")) == 2


def test_checkpoint_corruption_hits_the_nth_snapshot_only():
    from repro.stream.checkpoint import CheckpointError, snapshot, verify

    injector = FaultInjector(seed=7).corrupt_checkpoint(0, nth=2)
    data = snapshot([1, 2, 3])
    assert injector.on_checkpoint(0, data) == data  # 1st: untouched
    corrupted = injector.on_checkpoint(0, data)  # 2nd: bit-flipped
    assert corrupted != data
    assert len(corrupted) == len(data)
    with pytest.raises(CheckpointError):
        verify(corrupted)
    assert injector.on_checkpoint(0, data) == data  # 3rd: untouched
    assert injector.fired("corrupt-checkpoint") == [
        ChaosEvent("corrupt-checkpoint", 0, 2)
    ]


def test_same_seed_corrupts_the_same_bit():
    from repro.stream.checkpoint import snapshot

    data = snapshot(list(range(50)))
    first = FaultInjector(seed=3).corrupt_checkpoint(0).on_checkpoint(0, data)
    second = FaultInjector(seed=3).corrupt_checkpoint(0).on_checkpoint(0, data)
    assert first == second
    assert first != data


def test_worker_config_carries_the_fault_plan_and_clears_fired_wedges():
    injector = FaultInjector().wedge_shard(0, 4).stall_shard(0, 2, 0.1)
    config = injector.worker_config(_config(0))
    assert config.chaos == WorkerFaultPlan(
        stall_at=((2, 0.1),), wedge_at=(4,)
    )
    # A stall kill clears the wedge; the respawn config must not
    # carry it again or the shard would wedge forever.
    injector.on_stall_killed(0)
    respawn = injector.worker_config(_config(0))
    assert respawn.chaos == WorkerFaultPlan(stall_at=((2, 0.1),))
    assert injector.fired("wedge-cleared") == [
        ChaosEvent("wedge-cleared", 0)
    ]


def test_worker_config_without_faults_is_untouched():
    config = _config(1)
    assert FaultInjector().worker_config(config) is config


def test_put_delay_defaults_to_zero():
    injector = FaultInjector().delay_puts(2, 0.5)
    assert injector.put_delay(2) == 0.5
    assert injector.put_delay(0) == 0.0


def test_random_schedule_is_seed_deterministic():
    first = FaultInjector.random(seed=11, num_shards=4, max_seq=20)
    second = FaultInjector.random(seed=11, num_shards=4, max_seq=20)
    assert first._kill_after_ship == second._kill_after_ship
    assert first._stalls == second._stalls
    assert first._corrupt_nth == second._corrupt_nth
    different = FaultInjector.random(seed=12, num_shards=4, max_seq=20)
    assert (
        first._kill_after_ship != different._kill_after_ship
        or first._stalls != different._stalls
        or first._corrupt_nth != different._corrupt_nth
    )


# -- DeadLetterSink -------------------------------------------------


def test_dead_letter_sink_groups_by_shard_and_collects_keys():
    sink = DeadLetterSink()
    sink.quarantine(DeadLetter("a", 1, position=3, shard_id=0, error="E1"))
    sink.quarantine(DeadLetter("b", 2, position=7, shard_id=1, error="E2"))
    sink.quarantine(DeadLetter("a", 9, position=8, shard_id=0, error="E3"))
    assert len(sink) == 3
    assert sorted(sink.by_shard()) == [0, 1]
    assert [l.position for l in sink.by_shard()[0]] == [3, 8]
    assert sink.keys() == ["a", "b"]  # first-seen order
    assert sink.letters[1].error == "E2"


# -- Reservoir ------------------------------------------------------


def test_reservoir_is_exact_below_capacity():
    reservoir = Reservoir(capacity=10)
    reservoir.extend(range(7))
    assert list(reservoir) == list(range(7))
    assert len(reservoir) == 7
    assert reservoir.seen == 7


def test_reservoir_stays_bounded_and_samples_the_whole_stream():
    reservoir = Reservoir(capacity=16, seed=5)
    reservoir.extend(range(10_000))
    assert len(reservoir) == 16
    assert reservoir.seen == 10_000
    values = reservoir.values
    assert all(0 <= v < 10_000 for v in values)
    # Algorithm R keeps a uniform sample: with 16 draws from 10k items
    # the odds that every kept value sits in the first 20% are ~3e-12,
    # so a prefix-only "sample" (the bug this replaced) would fail here.
    assert max(values) > 2_000


def test_reservoir_is_seed_deterministic():
    first = Reservoir(capacity=8, seed=3)
    second = Reservoir(capacity=8, seed=3)
    first.extend(range(1000))
    second.extend(range(1000))
    assert first.values == second.values
