"""Unit tests for the wire-protocol frame and value codec."""

from __future__ import annotations

import math

import pytest

from repro.errors import ProtocolError
from repro.net.protocol import (
    EVENT_TIME_PROTOCOL_VERSION,
    HEADER,
    LEGACY_PROTOCOL_VERSION,
    MAGIC,
    MAX_PAYLOAD_BYTES,
    MAX_TRACE_ID,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    FrameDecoder,
    FrameType,
    decode_answers,
    decode_value,
    encode_answers,
    encode_frame,
    encode_value,
    try_decode_frame,
    try_decode_frame_traced,
)
from repro.windows.query import Query


class TestValueCodec:
    """encode_value / decode_value round trips and rejections."""

    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**63 - 1,
            -(2**63),
            2**63,  # bigint fallback
            -(2**200),
            10**50,
            0.0,
            -2.5,
            1e300,
            "",
            "héllo wörld",
            "☃" * 100,
            b"",
            b"\x00\xff" * 10,
            [],
            [1, 2, 3],
            (),
            ("a", 1),
            {},
            {"k": [1, (2, None)], 5: b"x", None: True},
            [[[("deep",)]]],
        ],
    )
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_round_trip_preserves_types(self):
        assert isinstance(decode_value(encode_value((1, 2))), tuple)
        assert isinstance(decode_value(encode_value([1, 2])), list)
        assert isinstance(decode_value(encode_value(True)), bool)
        assert isinstance(decode_value(encode_value(1)), int)
        assert isinstance(decode_value(encode_value(1.0)), float)

    def test_nan_and_infinities_round_trip(self):
        assert decode_value(encode_value(math.inf)) == math.inf
        assert decode_value(encode_value(-math.inf)) == -math.inf
        assert math.isnan(decode_value(encode_value(math.nan)))

    def test_unsupported_type_is_rejected(self):
        with pytest.raises(ProtocolError, match="cannot encode"):
            encode_value(object())
        with pytest.raises(ProtocolError):
            encode_value({1, 2, 3})

    def test_unknown_tag_is_rejected(self):
        with pytest.raises(ProtocolError, match="unknown value tag"):
            decode_value(b"\x7f")

    def test_trailing_bytes_are_rejected(self):
        with pytest.raises(ProtocolError, match="trailing"):
            decode_value(encode_value(1) + b"\x00")

    def test_truncated_bodies_are_rejected(self):
        for value in (12345, "hello", b"bytes", [1, 2, 3], 2**100):
            encoded = encode_value(value)
            for cut in range(1, len(encoded)):
                with pytest.raises(ProtocolError):
                    decode_value(encoded[:cut])

    def test_invalid_utf8_in_string_body_is_rejected(self):
        encoded = bytearray(encode_value("ab"))
        encoded[-1] = 0xFF  # break the UTF-8 body
        with pytest.raises(ProtocolError, match="UTF-8"):
            decode_value(bytes(encoded))


class TestFrameCodec:
    """Framing: header validation, length limits, streaming decode."""

    def test_round_trip_every_frame_type(self):
        for frame_type in FrameType:
            frame = encode_frame(frame_type, {"n": 1})
            decoded = try_decode_frame(frame)
            assert decoded == (frame_type, {"n": 1}, len(frame))

    def test_incomplete_frames_return_none(self):
        frame = encode_frame(FrameType.SUBMIT, ("key", 42))
        for cut in range(len(frame)):
            assert try_decode_frame(frame[:cut]) is None

    def test_bad_magic_is_rejected(self):
        frame = bytearray(encode_frame(FrameType.POLL))
        frame[0] = ord("X")
        with pytest.raises(ProtocolError, match="magic"):
            try_decode_frame(bytes(frame))

    def test_unsupported_version_is_rejected(self):
        frame = bytearray(encode_frame(FrameType.POLL))
        frame[2] = max(SUPPORTED_VERSIONS) + 1
        with pytest.raises(ProtocolError, match="version"):
            try_decode_frame(bytes(frame))

    def test_unknown_frame_type_is_rejected(self):
        frame = bytearray(encode_frame(FrameType.POLL))
        frame[3] = 0x7F
        with pytest.raises(ProtocolError, match="frame type"):
            try_decode_frame(bytes(frame))

    def test_oversized_declared_length_is_rejected(self):
        header = HEADER.pack(
            MAGIC, PROTOCOL_VERSION, int(FrameType.POLL),
            MAX_PAYLOAD_BYTES + 1,
        )
        with pytest.raises(ProtocolError, match="frame limit"):
            try_decode_frame(header)

    def test_decoder_streams_split_frames(self):
        frames = [
            encode_frame(FrameType.SUBMIT, ("k", 1)),
            encode_frame(FrameType.POLL),
            encode_frame(FrameType.SUBMIT_BATCH, [("k", 2)]),
        ]
        stream = b"".join(frames)
        decoder = FrameDecoder()
        seen = []
        # Feed one byte at a time: worst-case fragmentation.
        for index in range(len(stream)):
            decoder.feed(stream[index : index + 1])
            seen.extend(decoder.frames())
        assert seen == [
            (FrameType.SUBMIT, ("k", 1)),
            (FrameType.POLL, None),
            (FrameType.SUBMIT_BATCH, [("k", 2)]),
        ]
        assert decoder.pending_bytes == 0

    def test_decoder_poisons_after_framing_error(self):
        decoder = FrameDecoder()
        decoder.feed(b"XX" + b"\x00" * 10)
        with pytest.raises(ProtocolError):
            list(decoder.frames())
        with pytest.raises(ProtocolError, match="must be closed"):
            decoder.feed(b"more")

    def test_multiple_frames_in_one_buffer(self):
        buffer = encode_frame(FrameType.POLL) + encode_frame(
            FrameType.STATS
        )
        first = try_decode_frame(buffer)
        assert first[0] is FrameType.POLL
        second = try_decode_frame(buffer, first[2])
        assert second[0] is FrameType.STATS
        assert second[2] == len(buffer)


class TestTracedFrames:
    """The v2 trace-id field: minimal-version emission, back-compat."""

    def test_version_constants_are_consistent(self):
        assert PROTOCOL_VERSION == 2
        assert LEGACY_PROTOCOL_VERSION == 1
        assert EVENT_TIME_PROTOCOL_VERSION == 3
        assert SUPPORTED_VERSIONS == frozenset({1, 2, 3})

    def test_untraced_frame_is_byte_identical_v1(self):
        frame = encode_frame(FrameType.POLL, None)
        assert frame[2] == LEGACY_PROTOCOL_VERSION
        assert len(frame) == HEADER.size + len(encode_value(None))

    def test_traced_round_trip(self):
        trace = 0x1234_5678_9ABC_DEF0
        frame = encode_frame(FrameType.SUBMIT, ("k", 1), trace_id=trace)
        assert frame[2] == PROTOCOL_VERSION
        decoded, consumed = try_decode_frame_traced(frame)
        assert consumed == len(frame)
        assert decoded.frame_type is FrameType.SUBMIT
        assert decoded.payload == ("k", 1)
        assert decoded.trace_id == trace

    def test_traced_frame_is_header_plus_eight_bytes_larger(self):
        untraced = encode_frame(FrameType.POLL, None)
        traced = encode_frame(FrameType.POLL, None, trace_id=1)
        assert len(traced) == len(untraced) + 8

    def test_v1_frame_decodes_with_no_trace(self):
        frame = encode_frame(FrameType.STATS, None)
        decoded, consumed = try_decode_frame_traced(frame)
        assert consumed == len(frame)
        assert decoded.trace_id is None

    def test_zero_trace_field_on_the_wire_decodes_as_none(self):
        """A v2 peer may send an explicit 'no trace' zero field."""
        body = encode_value(None)
        frame = (
            HEADER.pack(
                MAGIC, PROTOCOL_VERSION, int(FrameType.POLL), len(body)
            )
            + (0).to_bytes(8, "big")
            + body
        )
        decoded, consumed = try_decode_frame_traced(frame)
        assert consumed == len(frame)
        assert decoded.trace_id is None

    def test_trace_id_bounds_are_enforced_at_encode_time(self):
        encode_frame(FrameType.POLL, None, trace_id=1)
        encode_frame(FrameType.POLL, None, trace_id=MAX_TRACE_ID)
        for bad in (0, -1, MAX_TRACE_ID + 1):
            with pytest.raises(ProtocolError, match="trace id"):
                encode_frame(FrameType.POLL, None, trace_id=bad)

    def test_truncated_v2_header_waits_for_more_bytes(self):
        frame = encode_frame(FrameType.SUBMIT, ("k", 1), trace_id=7)
        for cut in range(len(frame)):
            assert try_decode_frame_traced(frame[:cut]) is None

    def test_legacy_api_discards_the_trace(self):
        frame = encode_frame(FrameType.SUBMIT, ("k", 1), trace_id=7)
        assert try_decode_frame(frame) == (
            FrameType.SUBMIT, ("k", 1), len(frame),
        )

    def test_decoder_streams_mixed_version_frames(self):
        frames = [
            encode_frame(FrameType.SUBMIT, ("a", 1)),
            encode_frame(FrameType.SUBMIT, ("b", 2), trace_id=42),
            encode_frame(FrameType.POLL, None),
        ]
        blob = b"".join(frames)
        decoder = FrameDecoder()
        collected = []
        for cut in range(0, len(blob), 3):
            decoder.feed(blob[cut : cut + 3])
            collected.extend(decoder.frames_traced())
        assert [frame.trace_id for frame in collected] == [None, 42, None]
        assert [frame.payload for frame in collected] == [
            ("a", 1), ("b", 2), None,
        ]

    def test_oversized_traced_length_is_rejected(self):
        header = HEADER.pack(
            MAGIC, PROTOCOL_VERSION, int(FrameType.POLL),
            MAX_PAYLOAD_BYTES + 1,
        )
        with pytest.raises(ProtocolError, match="frame limit"):
            try_decode_frame_traced(header + (1).to_bytes(8, "big"))


class TestAnswerMarshalling:
    """Queries travel as (range, slide, name) specs, not objects."""

    def test_global_answers_round_trip(self):
        answers = [
            (4, Query(8, 4), 10),
            (8, Query(8, 4, name="custom"), -3),
        ]
        rows = encode_answers(answers)
        assert decode_answers(rows) == answers
        # The marshalled form itself must be wire-encodable.
        assert decode_value(encode_value(rows)) == rows

    def test_per_key_answers_keep_their_key(self):
        answers = [("sensor-1", 4, Query(6, 2), 7.5)]
        assert decode_answers(encode_answers(answers)) == answers

    def test_malformed_query_spec_is_rejected(self):
        with pytest.raises(ProtocolError, match="query spec"):
            decode_answers([(4, "not-a-spec", 10)])
