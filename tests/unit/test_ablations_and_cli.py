"""Unit tests for the ablation studies and the extended CLI."""

from __future__ import annotations

import pytest

from repro.experiments import ablations
from repro.experiments.cli import main as cli_main


class TestChunkSizeStudy:
    def test_sqrt_row_is_the_minimum(self):
        table = ablations.chunk_size_study(window=64)
        by_chunk = {
            int(row[0]): float(row[1].replace(",", ""))
            for row in table.rows
        }
        assert by_chunk[8] == min(by_chunk.values())  # √64 = 8

    def test_every_row_at_least_2n(self):
        table = ablations.chunk_size_study(window=64)
        for row in table.rows:
            assert float(row[1].replace(",", "")) >= 2 * 64


class TestSlicingStudy:
    def test_orders_partial_counts(self):
        table = ablations.slicing_study()
        by_technique = {row[0]: row for row in table.rows}
        panes = int(by_technique["panes"][2])
        pairs = int(by_technique["pairs"][2])
        cutty = int(by_technique["cutty"][2])
        assert panes >= pairs >= cutty

    def test_only_cutty_pays_punctuations(self):
        table = ablations.slicing_study()
        for row in table.rows:
            markers = int(row[3])
            if row[0] == "cutty":
                assert markers > 0
            else:
                assert markers == 0


class TestAdversarialStudy:
    def test_shapes_and_bounds(self):
        table = ablations.adversarial_study(window=32)
        by_shape = {row[0]: row for row in table.rows}
        assert float(by_shape["random"][1]) < 2.0
        assert int(by_shape["deque-filler"][2]) >= 31
        assert int(by_shape["descending"][3]) == 32
        assert int(by_shape["ascending"][3]) == 1


class TestSharingStudy:
    def test_study_reports_both_configurations(self):
        table = ablations.sharing_study(tuples=400)
        rows = {row[0]: row for row in table.rows}
        shared = rows["max x5 ACQs, shared"]
        independent = rows["max x5 ACQs, independent"]
        assert shared[2] == independent[2]  # identical answer counts
        # Wall-clock belongs to the report; a sub-millisecond run can
        # format to "0.000", so only non-negativity is stable.
        assert float(shared[1]) >= 0

    def test_sharing_saves_aggregate_operations(self):
        """The deterministic core of §2.3: shared plans do less ⊕ work.

        Wall-clock speedups (≈3.6x idle, see EXPERIMENTS.md) flake
        under CPU contention; operation counts never do.
        """
        from repro.operators.instrumented import CountingOperator
        from repro.operators.registry import get_operator
        from repro.stream.engine import StreamEngine
        from repro.windows.query import Query
        from tests.conftest import int_stream

        stream = int_stream(400, seed=3)
        queries = [Query(r, 4) for r in (8, 16, 32, 64, 128)]
        ops = {}
        for mode in ("shared", "independent"):
            counting = CountingOperator(get_operator("max"))
            engine = StreamEngine(queries, counting, mode=mode)
            engine.run(stream)
            ops[mode] = counting.ops
        assert ops["shared"] < ops["independent"]


class TestCli:
    def test_exp5_subcommand(self, capsys, monkeypatch):
        from repro.experiments import exp5_query_scaling

        monkeypatch.setattr(
            exp5_query_scaling,
            "main",
            lambda config: "EXP5-STUB",
        )
        assert cli_main(["exp5", "--scale", "quick"]) == 0
        assert "EXP5-STUB" in capsys.readouterr().out

    def test_validate_subcommand(self, capsys, monkeypatch):
        from repro.experiments import validate

        monkeypatch.setattr(
            validate, "main", lambda quick: f"VALIDATE(quick={quick})"
        )
        assert cli_main(["validate", "--scale", "quick"]) == 0
        assert "VALIDATE(quick=True)" in capsys.readouterr().out

    def test_chart_flag(self, capsys, monkeypatch):
        from repro.experiments import exp1_throughput

        captured = {}

        def fake_main(config, chart=False):
            captured["chart"] = chart
            return "EXP1-STUB"

        monkeypatch.setattr(exp1_throughput, "main", fake_main)
        assert cli_main(["exp1", "--chart"]) == 0
        assert captured["chart"] is True

    def test_ablations_subcommand(self, capsys, monkeypatch):
        monkeypatch.setattr(ablations, "main", lambda: "ABL-STUB")
        assert cli_main(["ablations"]) == 0
        assert "ABL-STUB" in capsys.readouterr().out


def test_main_returns_report_sections():
    report = ablations.slicing_study().render()
    assert "Ablation: slicing technique" in report
