"""Unit tests for table export formats (CSV / JSON)."""

from __future__ import annotations

import csv
import io
import json

from repro.experiments.report import Table


def _sample_table() -> Table:
    table = Table("Fig. X", ["window", "naive", "slickdeque"])
    table.add_row([1, 1000.5, 2000.123])
    table.add_row([2, None, 4000.0])
    return table


def test_to_csv_round_trips():
    text = _sample_table().to_csv()
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["window", "naive", "slickdeque"]
    assert rows[1][0] == "1"
    assert len(rows) == 3


def test_to_csv_preserves_placeholder_for_missing():
    text = _sample_table().to_csv()
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[2][1] == "-"


def test_to_json_structure():
    payload = json.loads(_sample_table().to_json())
    assert payload["title"] == "Fig. X"
    assert payload["headers"] == ["window", "naive", "slickdeque"]
    assert len(payload["rows"]) == 2
    assert payload["rows"][0][0] == "1"


def test_exports_agree_with_render():
    table = _sample_table()
    rendered = table.render()
    payload = json.loads(table.to_json())
    for row in payload["rows"]:
        for cell in row:
            assert cell in rendered
