"""Unit tests for FlatFAT (flat binary tree aggregator)."""

from __future__ import annotations

from repro.baselines.flatfat import (
    FlatFATAggregator,
    FlatFATMultiAggregator,
    _next_power_of_two,
)
from repro.baselines.recalc import RecalcAggregator
from repro.operators.instrumented import CountingOperator
from repro.operators.invertible import SumOperator
from repro.operators.noninvertible import MaxOperator
from tests.conftest import int_stream


def test_next_power_of_two():
    assert _next_power_of_two(1) == 1
    assert _next_power_of_two(2) == 2
    assert _next_power_of_two(3) == 4
    assert _next_power_of_two(1024) == 1024
    assert _next_power_of_two(1025) == 2048


def test_matches_recalc_on_non_power_window():
    stream = int_stream(200, seed=3)
    for window in (3, 5, 12, 100):
        assert (
            FlatFATAggregator(SumOperator(), window).run(stream)
            == RecalcAggregator(SumOperator(), window).run(stream)
        )


def test_update_costs_log_n():
    op = CountingOperator(SumOperator())
    agg = FlatFATAggregator(op, 64)
    for value in range(200):
        agg.push(value)
    op.reset()
    agg.push(0)
    assert op.ops == 6  # log2(64) bottom-up updates


def test_root_shortcut_for_commutative_full_window():
    op = CountingOperator(SumOperator())
    agg = FlatFATAggregator(op, 64)
    for value in range(100):
        agg.push(value)
    op.reset()
    agg.query()
    # Full-window commutative query returns the root: 1 final combine
    # at most (the combine of the empty prefix/suffix path is skipped).
    assert op.ops == 0


class _Concat(SumOperator):
    """Non-commutative stand-in: string concatenation."""

    name = "concat"
    commutative = False

    @property
    def identity(self):
        return ""

    def lift(self, value):
        return str(value)

    def combine(self, older, newer):
        return older + newer

    def inverse(self, agg, removed):  # pragma: no cover - unused
        raise NotImplementedError


def test_non_commutative_order_preserved_across_wrap():
    # After wrapping, leaf order differs from time order; the two-
    # segment range query must still concatenate in stream order.
    agg = FlatFATAggregator(_Concat(), 4)
    expected = RecalcAggregator(_Concat(), 4)
    for value in "abcdefghij":
        assert agg.step(value) == expected.step(value)


def test_memory_rounds_up_to_power_of_two():
    # Section 4.2: 2^ceil(log n) * 2 words, worst case 3n.
    assert FlatFATAggregator(SumOperator(), 64).memory_words() == 128
    assert FlatFATAggregator(SumOperator(), 65).memory_words() == 256


def test_multi_query_all_ranges():
    stream = int_stream(80, seed=4)
    agg = FlatFATMultiAggregator(MaxOperator(), list(range(1, 9)))
    reference = {
        r: RecalcAggregator(MaxOperator(), r) for r in range(1, 9)
    }
    for value in stream:
        answers = agg.step(value)
        for r, ref in reference.items():
            assert answers[r] == ref.step(value)
