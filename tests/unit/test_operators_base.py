"""Unit tests for the aggregate-operator protocol."""

from __future__ import annotations

import pytest

from repro.errors import InvalidOperatorError
from repro.operators.base import (
    AggregateOperator,
    require_invertible,
    require_selection,
)
from repro.operators.invertible import SumOperator
from repro.operators.noninvertible import MaxOperator


class _Concat(AggregateOperator):
    """A deliberately non-commutative operator used by order tests."""

    name = "concat"

    @property
    def identity(self):
        return ""

    def lift(self, value):
        return str(value)

    def combine(self, older, newer):
        return older + newer


def test_fold_is_left_to_right_for_non_commutative_ops():
    assert _Concat().fold([1, 2, 3]) == "123"


def test_fold_empty_yields_identity():
    assert _Concat().fold([]) == ""
    assert SumOperator().fold([]) == 0


def test_fold_aggs_skips_lift():
    op = _Concat()
    assert op.fold_aggs(["ab", "cd"]) == "abcd"


def test_default_lift_and_lower_are_identity():
    op = SumOperator()
    assert op.lift(41) == 41
    assert op.lower(41) == 41


def test_dominates_follows_combine_semantics():
    op = MaxOperator()
    assert op.dominates(3, 5)  # 3 ⊕ 5 == 5: 3 is dominated
    assert op.dominates(5, 5)  # ties dominate (newer value wins)
    assert not op.dominates(5, 3)


def test_dominates_default_implementation_matches_override():
    op = MaxOperator()
    base = AggregateOperator.dominates
    for incumbent in (-2, 0, 7):
        for challenger in (-2, 0, 7):
            assert op.dominates(incumbent, challenger) == base(
                op, incumbent, challenger
            )


def test_require_invertible_accepts_sum():
    op = SumOperator()
    assert require_invertible(op) is op


def test_require_invertible_rejects_max():
    with pytest.raises(InvalidOperatorError, match="not invertible"):
        require_invertible(MaxOperator())


def test_require_selection_accepts_max():
    op = MaxOperator()
    assert require_selection(op) is op


def test_require_selection_rejects_sum():
    with pytest.raises(InvalidOperatorError, match="selection"):
        require_selection(SumOperator())


def test_repr_contains_name():
    assert "sum" in repr(SumOperator())
