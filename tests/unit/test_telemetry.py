"""Unit tests pinning the semantics of :mod:`repro.telemetry`.

Instrument behaviour (counter monotonicity, gauge levels, histogram
bucketing/quantiles/merge), registry get-or-create and exposition
format, tracer span/record/finish and the slow-op log, the Telemetry
hub, and the process-global install/active/uninstall hook.
"""

from __future__ import annotations

import math
import threading
import time

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Telemetry,
    Tracer,
    active,
    install,
    mint_trace_id,
    uninstall,
)


@pytest.fixture(autouse=True)
def _no_global_hub():
    """Keep the process-global hook clean around every test."""
    uninstall()
    yield
    uninstall()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("events_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        assert counter.snapshot() == {"value": 42}

    def test_zero_increment_is_allowed(self):
        counter = Counter("events_total")
        counter.inc(0)
        assert counter.value == 0

    def test_negative_increment_is_rejected(self):
        counter = Counter("events_total")
        with pytest.raises(TelemetryError):
            counter.inc(-1)
        assert counter.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("level")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12
        gauge.inc(-12)
        assert gauge.value == 0

    def test_snapshot(self):
        gauge = Gauge("level")
        gauge.set(2.5)
        assert gauge.snapshot() == {"value": 2.5}


class TestHistogram:
    def test_default_buckets_cover_latency_range(self):
        histogram = Histogram("latency")
        assert histogram.bounds == DEFAULT_LATENCY_BUCKETS
        assert histogram.bounds[0] == pytest.approx(5e-5)
        assert histogram.bounds[-1] == 10.0

    def test_observe_places_values_in_buckets(self):
        histogram = Histogram("h", buckets=[1.0, 2.0, 4.0])
        for value in [0.5, 1.0, 1.5, 3.0, 100.0]:
            histogram.observe(value)
        # counts: <=1: {0.5, 1.0}; <=2: {1.5}; <=4: {3.0}; +Inf: {100}
        assert histogram.bucket_counts() == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(106.0)
        assert histogram.minimum == 0.5
        assert histogram.maximum == 100.0

    def test_boundary_value_lands_in_its_bucket(self):
        histogram = Histogram("h", buckets=[1.0, 2.0])
        histogram.observe(1.0)  # le="1" is inclusive
        assert histogram.bucket_counts() == [1, 0, 0]

    def test_bucket_of_maps_values_to_indices(self):
        histogram = Histogram("h", buckets=[1.0, 2.0])
        assert histogram.bucket_of(0.5) == 0
        assert histogram.bucket_of(1.0) == 0
        assert histogram.bucket_of(1.5) == 1
        assert histogram.bucket_of(99.0) == 2  # overflow bucket

    def test_empty_histogram_reports_none(self):
        histogram = Histogram("h", buckets=[1.0])
        assert histogram.quantile(0.5) is None
        assert histogram.minimum is None
        assert histogram.maximum is None

    def test_quantile_returns_bucket_upper_bound(self):
        histogram = Histogram("h", buckets=[1.0, 2.0, 4.0])
        for value in [0.1, 0.2, 1.5, 3.0]:
            histogram.observe(value)
        # ranks: q=0.5 -> rank 2 -> first bucket (upper 1.0)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(0.75) == 2.0
        assert histogram.quantile(1.0) == 4.0
        assert histogram.quantile(0.0) == 1.0  # rank clamps to 1

    def test_quantile_in_overflow_bucket_reports_observed_max(self):
        histogram = Histogram("h", buckets=[1.0])
        histogram.observe(50.0)
        histogram.observe(75.0)
        assert histogram.quantile(0.99) == 75.0

    def test_quantile_fraction_out_of_range(self):
        histogram = Histogram("h", buckets=[1.0])
        with pytest.raises(TelemetryError):
            histogram.quantile(1.5)
        with pytest.raises(TelemetryError):
            histogram.quantile(-0.1)

    def test_bounds_must_be_ascending_finite_nonempty(self):
        with pytest.raises(TelemetryError):
            Histogram("h", buckets=[])
        with pytest.raises(TelemetryError):
            Histogram("h", buckets=[2.0, 1.0])
        with pytest.raises(TelemetryError):
            Histogram("h", buckets=[1.0, 1.0])
        with pytest.raises(TelemetryError):
            Histogram("h", buckets=[1.0, math.inf])

    def test_merge_requires_identical_bounds(self):
        left = Histogram("h", buckets=[1.0, 2.0])
        right = Histogram("h", buckets=[1.0, 3.0])
        with pytest.raises(TelemetryError):
            left.merge(right)

    def test_merge_equals_concatenation(self):
        bounds = [1.0, 2.0, 4.0]
        left, right, both = (
            Histogram("l", buckets=bounds),
            Histogram("r", buckets=bounds),
            Histogram("b", buckets=bounds),
        )
        first, second = [0.5, 3.0, 9.0], [1.5, 0.25]
        for value in first:
            left.observe(value)
            both.observe(value)
        for value in second:
            right.observe(value)
            both.observe(value)
        left.merge(right)
        assert left.bucket_counts() == both.bucket_counts()
        assert left.count == both.count
        assert left.sum == pytest.approx(both.sum)
        assert left.minimum == both.minimum
        assert left.maximum == both.maximum

    def test_merged_classmethod(self):
        bounds = [1.0]
        parts = []
        for start in range(3):
            histogram = Histogram("p", buckets=bounds)
            histogram.observe(start * 1.0)
            parts.append(histogram)
        merged = Histogram.merged(parts)
        assert merged.count == 3
        with pytest.raises(TelemetryError):
            Histogram.merged([])

    def test_snapshot_buckets_are_cumulative_and_end_at_count(self):
        histogram = Histogram("h", buckets=[1.0, 2.0])
        for value in [0.5, 1.5, 5.0, 7.0]:
            histogram.observe(value)
        state = histogram.snapshot()
        uppers = [upper for upper, _ in state["buckets"]]
        cumulative = [count for _, count in state["buckets"]]
        assert uppers == [1.0, 2.0, math.inf]
        assert cumulative == [1, 2, 4]
        assert cumulative[-1] == state["count"]
        assert state["p50"] == 2.0
        assert state["max"] == 7.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total", "Hits")
        second = registry.counter("hits_total")
        assert first is second
        first.inc()
        assert second.value == 1

    def test_label_sets_are_distinct_series(self):
        registry = MetricsRegistry()
        ok = registry.counter("replies", labels={"code": "ok"})
        err = registry.counter("replies", labels={"code": "err"})
        assert ok is not err
        ok.inc(3)
        assert err.value == 0
        assert registry.get("replies", {"code": "ok"}) is ok
        assert registry.get("replies", {"code": "missing"}) is None

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        one = registry.counter("c", labels={"a": "1", "b": "2"})
        two = registry.counter("c", labels={"b": "2", "a": "1"})
        assert one is two

    def test_kind_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TelemetryError):
            registry.gauge("thing")
        with pytest.raises(TelemetryError):
            registry.histogram("thing", labels={"x": "y"})

    def test_invalid_names_are_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.counter("bad name")
        with pytest.raises(TelemetryError):
            registry.counter("1starts_with_digit")
        with pytest.raises(TelemetryError):
            registry.counter("ok_name", labels={"bad-label": "v"})

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", "help here").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=[1.0]).observe(0.5)
        snap = registry.snapshot()
        assert snap["c"]["type"] == "counter"
        assert snap["c"]["help"] == "help here"
        assert snap["c"]["series"][0]["value"] == 2
        assert snap["g"]["series"][0]["value"] == 1.5
        assert snap["h"]["series"][0]["count"] == 1

    def test_render_text_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter(
            "requests_total", "Requests", labels={"kind": "submit"}
        ).inc(7)
        registry.gauge("inflight").set(3)
        registry.histogram(
            "latency_seconds", "Latency", buckets=[0.1, 1.0]
        ).observe(0.5)
        text = registry.render_text()
        assert "# HELP requests_total Requests\n" in text
        assert "# TYPE requests_total counter\n" in text
        assert 'requests_total{kind="submit"} 7\n' in text
        assert "inflight 3\n" in text
        assert "# TYPE latency_seconds histogram\n" in text
        assert 'latency_seconds_bucket{le="0.1"} 0\n' in text
        assert 'latency_seconds_bucket{le="1"} 1\n' in text
        assert 'latency_seconds_bucket{le="+Inf"} 1\n' in text
        assert "latency_seconds_sum 0.5\n" in text
        assert "latency_seconds_count 1\n" in text
        assert text.endswith("\n")

    def test_render_text_formats_infinities_and_integral_floats(self):
        registry = MetricsRegistry()
        registry.gauge("low").set(-math.inf)
        registry.gauge("high").set(math.inf)
        registry.gauge("level").set(3.0)
        text = registry.render_text()
        assert "low -Inf\n" in text
        assert "high +Inf\n" in text
        assert "level 3\n" in text  # integral floats render bare

    def test_render_text_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter(
            "c", labels={"path": 'a"b\\c\nd'}
        ).inc()
        text = registry.render_text()
        assert r'c{path="a\"b\\c\nd"} 1' in text

    def test_histogram_labels_render_before_le(self):
        registry = MetricsRegistry()
        registry.histogram(
            "h", labels={"stage": "fold"}, buckets=[1.0]
        ).observe(0.5)
        text = registry.render_text()
        assert 'h_bucket{stage="fold",le="1"} 1' in text
        assert 'h_sum{stage="fold"} 0.5' in text


class TestTracer:
    def test_mint_trace_id_is_nonzero_and_wire_sized(self):
        seen = {mint_trace_id() for _ in range(100)}
        assert 0 not in seen
        assert all(1 <= trace < 2**63 for trace in seen)
        assert len(seen) == 100  # collisions astronomically unlikely

    def test_span_and_record_accumulate_stages(self):
        tracer = Tracer(slow_threshold=1e9)
        trace = mint_trace_id()
        with tracer.span(trace, "decode"):
            pass
        tracer.record(trace, "fold", 0.25)
        summary = tracer.finish(trace)
        stages = dict(
            (stage, seconds) for stage, seconds in summary["stages"]
        )
        assert set(stages) == {"decode", "fold"}
        assert stages["fold"] == 0.25
        assert summary["trace_id"] == trace
        assert summary["total_seconds"] >= 0.0

    def test_none_trace_is_a_noop(self):
        tracer = Tracer()
        tracer.record(None, "stage", 1.0)
        with tracer.span(None, "stage"):
            pass
        assert tracer.finish(None) is None
        assert tracer.live_count() == 0

    def test_finish_unknown_trace_returns_none(self):
        tracer = Tracer()
        assert tracer.finish(12345) is None

    def test_slow_ops_capture_threshold_exceeders(self):
        tracer = Tracer(slow_threshold=0.0)
        trace = mint_trace_id()
        tracer.record(trace, "fold", 0.5)
        tracer.finish(trace)
        ops = tracer.slow_ops()
        assert len(ops) == 1
        assert ops[0]["trace_id"] == trace
        snap = tracer.snapshot()
        assert snap["finished"] == 1
        assert snap["slow_total"] == 1
        assert snap["live"] == 0

    def test_fast_traces_stay_out_of_slow_log(self):
        tracer = Tracer(slow_threshold=1e9)
        trace = mint_trace_id()
        tracer.record(trace, "fold", 0.0)
        tracer.finish(trace)
        assert tracer.slow_ops() == []
        assert tracer.snapshot()["slow_total"] == 0

    def test_slow_log_is_bounded(self):
        tracer = Tracer(slow_threshold=0.0, max_slow_ops=3)
        traces = [mint_trace_id() for _ in range(5)]
        for trace in traces:
            tracer.record(trace, "s", 0.0)
            tracer.finish(trace)
        ops = tracer.slow_ops()
        assert len(ops) == 3
        assert [op["trace_id"] for op in ops] == traces[-3:]
        assert tracer.snapshot()["slow_total"] == 5

    def test_live_traces_are_bounded(self):
        tracer = Tracer(max_live_traces=2)
        oldest = mint_trace_id()
        tracer.record(oldest, "s", 0.0)
        for _ in range(2):
            tracer.record(mint_trace_id(), "s", 0.0)
        assert tracer.live_count() == 2
        assert tracer.finish(oldest) is None  # evicted, never finished

    def test_total_reflects_wall_clock_not_stage_sum(self):
        tracer = Tracer(slow_threshold=1e9)
        trace = mint_trace_id()
        tracer.record(trace, "first", 0.0)
        time.sleep(0.02)
        summary = tracer.finish(trace)
        assert summary["total_seconds"] >= 0.015


class TestTelemetryHub:
    def test_bundles_registry_and_tracer(self):
        hub = Telemetry(slow_threshold=0.0, max_slow_ops=7)
        hub.registry.counter("c").inc()
        trace = mint_trace_id()
        hub.tracer.record(trace, "s", 1.0)
        hub.tracer.finish(trace)
        snap = hub.snapshot()
        assert snap["metrics"]["c"]["series"][0]["value"] == 1
        assert snap["traces"]["slow_total"] == 1
        assert "# TYPE c counter" in hub.render_text()

    def test_install_active_uninstall(self):
        assert active() is None
        hub = install()
        assert active() is hub
        mine = Telemetry()
        assert install(mine) is mine
        assert active() is mine
        uninstall()
        assert active() is None


class TestThreadSafety:
    def test_concurrent_counter_increments_are_exact(self):
        counter = Counter("c")
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000

    def test_concurrent_histogram_observes_are_exact(self):
        histogram = Histogram("h", buckets=[0.5])
        threads = [
            threading.Thread(
                target=lambda: [
                    histogram.observe(0.25) for _ in range(500)
                ]
            )
            for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == 3000
        assert histogram.bucket_counts() == [3000, 0]
        assert histogram.sum == pytest.approx(750.0)
