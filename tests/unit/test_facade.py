"""Unit tests for the invertibility-dispatch facade."""

from __future__ import annotations

import pytest

from repro.baselines.recalc import RecalcAggregator, RecalcMultiAggregator
from repro.core.facade import (
    ComponentwiseAggregator,
    ComponentwiseMultiAggregator,
    make_slickdeque,
    make_slickdeque_multi,
)
from repro.core.slickdeque_inv import SlickDequeInv, SlickDequeInvMulti
from repro.core.slickdeque_noninv import (
    SlickDequeNonInv,
    SlickDequeNonInvMulti,
)
from repro.errors import InvalidOperatorError
from repro.operators.algebraic import mean_operator, range_operator
from repro.operators.base import AggregateOperator
from repro.operators.invertible import SumOperator
from repro.operators.noninvertible import MaxOperator
from tests.conftest import int_stream


def test_invertible_routes_to_inv():
    assert isinstance(make_slickdeque(SumOperator(), 8), SlickDequeInv)
    assert isinstance(
        make_slickdeque(mean_operator(), 8), SlickDequeInv
    )


def test_selection_routes_to_noninv():
    assert isinstance(
        make_slickdeque(MaxOperator(), 8), SlickDequeNonInv
    )


def test_algebraic_noninvertible_routes_componentwise():
    agg = make_slickdeque(range_operator(), 8)
    assert isinstance(agg, ComponentwiseAggregator)


def test_multi_dispatch():
    assert isinstance(
        make_slickdeque_multi(SumOperator(), [4]), SlickDequeInvMulti
    )
    assert isinstance(
        make_slickdeque_multi(MaxOperator(), [4]),
        SlickDequeNonInvMulti,
    )
    assert isinstance(
        make_slickdeque_multi(range_operator(), [4]),
        ComponentwiseMultiAggregator,
    )


class _Holistic(AggregateOperator):
    """Neither invertible nor selection-type nor composed."""

    name = "pseudo_median"

    @property
    def identity(self):
        return ()

    def combine(self, older, newer):  # pragma: no cover - unused
        return older + (newer,)


def test_unsupported_operator_raises():
    with pytest.raises(InvalidOperatorError, match="Section 3.1"):
        make_slickdeque(_Holistic(), 8)
    with pytest.raises(InvalidOperatorError, match="Section 3.1"):
        make_slickdeque_multi(_Holistic(), [8])


def test_componentwise_range_matches_recalc():
    stream = int_stream(150, seed=71)
    for window in (1, 4, 9):
        assert (
            make_slickdeque(range_operator(), window).run(stream)
            == RecalcAggregator(range_operator(), window).run(stream)
        )


def test_componentwise_multi_range_matches_recalc():
    stream = int_stream(120, seed=72)
    ranges = [1, 3, 7]
    got = make_slickdeque_multi(range_operator(), ranges).run(stream)
    expected = RecalcMultiAggregator(range_operator(), ranges).run(stream)
    assert got == expected


def test_componentwise_memory_is_sum_of_parts():
    agg = make_slickdeque(range_operator(), 16)
    assert isinstance(agg, ComponentwiseAggregator)
    assert agg.memory_words() == sum(
        part.memory_words() for part in agg._parts
    )
