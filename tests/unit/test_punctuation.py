"""Unit tests for Cutty stream punctuations (§2.1)."""

from __future__ import annotations

import pytest

from repro.errors import PlanError
from repro.operators.registry import get_operator
from repro.stream.punctuation import (
    PunctuatedCuttyPipeline,
    Punctuation,
    bandwidth_overhead,
    punctuate,
)
from repro.windows.query import Query
from tests.conftest import int_stream


class TestPunctuate:
    def test_markers_at_window_starts(self):
        # Range 7, slide 3: windows start after positions ≡ 2 (mod 3).
        stream = list(punctuate(range(9), [Query(7, 3)]))
        markers = [e.position for e in stream
                   if isinstance(e, Punctuation)]
        assert markers == [2, 5, 8]

    def test_markers_deduplicated_across_queries(self):
        queries = [Query(4, 2), Query(8, 2)]  # same start phase
        stream = list(punctuate(range(8), queries))
        markers = [e for e in stream if isinstance(e, Punctuation)]
        assert len(markers) == 4

    def test_values_pass_through_in_order(self):
        stream = list(punctuate([10, 20, 30], [Query(2, 1)]))
        values = [e for e in stream if not isinstance(e, Punctuation)]
        assert values == [10, 20, 30]

    def test_requires_queries(self):
        with pytest.raises(PlanError):
            list(punctuate([1], []))


class TestBandwidthOverhead:
    def test_counts(self):
        stream = punctuate(range(12), [Query(6, 3)])
        tuples, markers, overhead = bandwidth_overhead(stream)
        assert tuples == 12
        assert markers == 4
        assert overhead == pytest.approx(4 / 16)

    def test_small_windows_cost_more(self):
        """§2.1: punctuations hurt most with many small windows."""
        def overhead_for(slide):
            stream = punctuate(range(60), [Query(slide, slide)])
            return bandwidth_overhead(stream)[2]

        assert overhead_for(1) > overhead_for(4) > overhead_for(10)

    def test_empty_stream(self):
        assert bandwidth_overhead([]) == (0, 0, 0.0)


class TestPunctuatedCuttyPipeline:
    def brute(self, query, operator_name, stream):
        op = get_operator(operator_name)
        return [
            (t, op.lower(op.fold(stream[max(0, t - query.range_size):t])))
            for t in range(1, len(stream) + 1)
            if query.reports_at(t)
        ]

    @pytest.mark.parametrize("operator_name", ["sum", "max", "mean"])
    @pytest.mark.parametrize(
        "range_size,slide", [(6, 2), (7, 3), (3, 5), (5, 1), (4, 4)]
    )
    def test_matches_brute_force(self, operator_name, range_size, slide):
        stream = int_stream(90, seed=range_size * 10 + slide)
        query = Query(range_size, slide)
        pipeline = PunctuatedCuttyPipeline(
            query, get_operator(operator_name)
        )
        got = pipeline.run(punctuate(stream, [query]))
        assert got == self.brute(query, operator_name, stream)

    def test_consumes_only_markers_it_receives(self):
        query = Query(6, 2)
        stream = int_stream(30, seed=9)
        pipeline = PunctuatedCuttyPipeline(query, get_operator("sum"))
        pipeline.run(punctuate(stream, [query]))
        assert pipeline.punctuations == 15

    def test_agrees_with_locally_computed_cutty(self):
        from repro.stream.engine import CuttyPipeline

        query = Query(9, 4)
        stream = int_stream(80, seed=10)
        local = CuttyPipeline(query, get_operator("max")).run(stream)
        remote = PunctuatedCuttyPipeline(
            query, get_operator("max")
        ).run(punctuate(stream, [query]))
        assert remote == local
