"""Unit tests for the ASCII figure renderer."""

from __future__ import annotations

from repro.experiments.figures import (
    _assign_glyphs,
    ascii_chart,
    chart_for_exp1,
    chart_for_exp2,
)


class TestGlyphAssignment:
    def test_prefers_initials(self):
        glyphs = _assign_glyphs(["slickdeque", "naive", "daba"])
        assert glyphs == {
            "slickdeque": "S", "naive": "N", "daba": "D"
        }

    def test_collisions_fall_back_deterministically(self):
        glyphs = _assign_glyphs(["flatfat", "flatfit"])
        assert glyphs["flatfat"] == "F"
        assert glyphs["flatfit"] != "F"
        assert len(set(glyphs.values())) == 2

    def test_exhausted_letters_use_pool(self):
        names = [f"aaaa{i}" for i in range(10)]
        glyphs = _assign_glyphs(names)
        assert len(set(glyphs.values())) == len(names)


class TestAsciiChart:
    SERIES = {
        "flat": {1: 100.0, 16: 100.0, 256: 100.0},
        "fading": {1: 100.0, 16: 10.0, 256: 1.0},
    }

    def test_contains_title_axes_and_legend(self):
        text = ascii_chart(self.SERIES, "my title")
        assert "my title" in text
        assert "F=flat" in text and "=fading" in text
        assert "10^0.0" in text  # x axis start (log10 of window 1)
        assert "window (log)" in text

    def test_flat_series_stays_on_one_row(self):
        text = ascii_chart({"flat": self.SERIES["flat"]}, "t")
        rows_with_f = [
            line for line in text.splitlines() if "F" in line
            and "|" in line
        ]
        assert len(rows_with_f) == 1

    def test_fading_series_spans_rows(self):
        text = ascii_chart({"fading": self.SERIES["fading"]}, "t")
        rows = [
            line for line in text.splitlines()
            if "|" in line and "F" in line.split("|", 1)[1]
        ]
        assert len(rows) >= 3

    def test_collision_marker(self):
        series = {"a": {4: 50.0}, "b": {4: 50.0}, "c": {1: 1.0}}
        text = ascii_chart(series, "t")
        assert "*" in text

    def test_none_and_empty_handled(self):
        text = ascii_chart({"x": {1: None}}, "empty")
        assert "(no data)" in text

    def test_deterministic(self):
        assert ascii_chart(self.SERIES, "t") == ascii_chart(
            self.SERIES, "t"
        )


class TestResultAdapters:
    def test_exp1_and_exp2_titles(self):
        from repro.experiments.exp1_throughput import Exp1Result
        from repro.experiments.exp2_multiquery import Exp2Result

        series = {"slickdeque": {1: 10.0, 4: 10.0}}
        fig10 = chart_for_exp1(Exp1Result("sum", series, (1, 4)))
        assert "Fig. 10" in fig10
        fig13 = chart_for_exp2(Exp2Result("max", series, (1, 4)))
        assert "Fig. 13" in fig13
